file(REMOVE_RECURSE
  "../bench/bench_ntcp"
  "../bench/bench_ntcp.pdb"
  "CMakeFiles/bench_ntcp.dir/bench_ntcp.cpp.o"
  "CMakeFiles/bench_ntcp.dir/bench_ntcp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
