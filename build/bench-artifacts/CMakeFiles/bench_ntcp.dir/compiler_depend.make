# Empty compiler generated dependencies file for bench_ntcp.
# This may be replaced when dependencies are built.
