
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_security.cpp" "bench-artifacts/CMakeFiles/bench_security.dir/bench_security.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_security.dir/bench_security.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/security/CMakeFiles/nees_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
