file(REMOVE_RECURSE
  "../bench/bench_security"
  "../bench/bench_security.pdb"
  "CMakeFiles/bench_security.dir/bench_security.cpp.o"
  "CMakeFiles/bench_security.dir/bench_security.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
