# Empty dependencies file for bench_minimost.
# This may be replaced when dependencies are built.
