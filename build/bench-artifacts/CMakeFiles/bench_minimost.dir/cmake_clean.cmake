file(REMOVE_RECURSE
  "../bench/bench_minimost"
  "../bench/bench_minimost.pdb"
  "CMakeFiles/bench_minimost.dir/bench_minimost.cpp.o"
  "CMakeFiles/bench_minimost.dir/bench_minimost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
