# Empty compiler generated dependencies file for bench_structural.
# This may be replaced when dependencies are built.
