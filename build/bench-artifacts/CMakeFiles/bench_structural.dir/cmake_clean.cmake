file(REMOVE_RECURSE
  "../bench/bench_structural"
  "../bench/bench_structural.pdb"
  "CMakeFiles/bench_structural.dir/bench_structural.cpp.o"
  "CMakeFiles/bench_structural.dir/bench_structural.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
