# Empty dependencies file for bench_most.
# This may be replaced when dependencies are built.
