file(REMOVE_RECURSE
  "../bench/bench_most"
  "../bench/bench_most.pdb"
  "CMakeFiles/bench_most.dir/bench_most.cpp.o"
  "CMakeFiles/bench_most.dir/bench_most.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_most.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
