
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_faults.cpp" "bench-artifacts/CMakeFiles/bench_faults.dir/bench_faults.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_faults.dir/bench_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/most/CMakeFiles/nees_most.dir/DependInfo.cmake"
  "/root/repo/build/src/psd/CMakeFiles/nees_psd.dir/DependInfo.cmake"
  "/root/repo/build/src/plugins/CMakeFiles/nees_plugins.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/nees_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/repo/CMakeFiles/nees_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/nees_security.dir/DependInfo.cmake"
  "/root/repo/build/src/daq/CMakeFiles/nees_daq.dir/DependInfo.cmake"
  "/root/repo/build/src/nsds/CMakeFiles/nees_nsds.dir/DependInfo.cmake"
  "/root/repo/build/src/ntcp/CMakeFiles/nees_ntcp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/nees_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/structural/CMakeFiles/nees_structural.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
