# Empty compiler generated dependencies file for bench_chef.
# This may be replaced when dependencies are built.
