file(REMOVE_RECURSE
  "../bench/bench_chef"
  "../bench/bench_chef.pdb"
  "CMakeFiles/bench_chef.dir/bench_chef.cpp.o"
  "CMakeFiles/bench_chef.dir/bench_chef.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
