# Empty compiler generated dependencies file for bench_repo.
# This may be replaced when dependencies are built.
