file(REMOVE_RECURSE
  "../bench/bench_repo"
  "../bench/bench_repo.pdb"
  "CMakeFiles/bench_repo.dir/bench_repo.cpp.o"
  "CMakeFiles/bench_repo.dir/bench_repo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
