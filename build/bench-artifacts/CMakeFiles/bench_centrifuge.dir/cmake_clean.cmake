file(REMOVE_RECURSE
  "../bench/bench_centrifuge"
  "../bench/bench_centrifuge.pdb"
  "CMakeFiles/bench_centrifuge.dir/bench_centrifuge.cpp.o"
  "CMakeFiles/bench_centrifuge.dir/bench_centrifuge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_centrifuge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
