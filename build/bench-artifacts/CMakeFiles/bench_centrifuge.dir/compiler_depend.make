# Empty compiler generated dependencies file for bench_centrifuge.
# This may be replaced when dependencies are built.
