# Empty compiler generated dependencies file for bench_ntcp_latency.
# This may be replaced when dependencies are built.
