file(REMOVE_RECURSE
  "../bench/bench_ntcp_latency"
  "../bench/bench_ntcp_latency.pdb"
  "CMakeFiles/bench_ntcp_latency.dir/bench_ntcp_latency.cpp.o"
  "CMakeFiles/bench_ntcp_latency.dir/bench_ntcp_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntcp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
