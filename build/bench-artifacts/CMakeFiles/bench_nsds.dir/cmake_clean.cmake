file(REMOVE_RECURSE
  "../bench/bench_nsds"
  "../bench/bench_nsds.pdb"
  "CMakeFiles/bench_nsds.dir/bench_nsds.cpp.o"
  "CMakeFiles/bench_nsds.dir/bench_nsds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nsds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
