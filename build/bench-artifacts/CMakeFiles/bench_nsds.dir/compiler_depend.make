# Empty compiler generated dependencies file for bench_nsds.
# This may be replaced when dependencies are built.
