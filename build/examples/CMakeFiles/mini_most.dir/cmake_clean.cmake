file(REMOVE_RECURSE
  "CMakeFiles/mini_most.dir/mini_most.cpp.o"
  "CMakeFiles/mini_most.dir/mini_most.cpp.o.d"
  "mini_most"
  "mini_most.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_most.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
