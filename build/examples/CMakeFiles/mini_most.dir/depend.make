# Empty dependencies file for mini_most.
# This may be replaced when dependencies are built.
