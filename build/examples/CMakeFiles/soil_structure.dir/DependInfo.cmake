
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/soil_structure.cpp" "examples/CMakeFiles/soil_structure.dir/soil_structure.cpp.o" "gcc" "examples/CMakeFiles/soil_structure.dir/soil_structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psd/CMakeFiles/nees_psd.dir/DependInfo.cmake"
  "/root/repo/build/src/plugins/CMakeFiles/nees_plugins.dir/DependInfo.cmake"
  "/root/repo/build/src/ntcp/CMakeFiles/nees_ntcp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/nees_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/nees_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/structural/CMakeFiles/nees_structural.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
