# Empty dependencies file for soil_structure.
# This may be replaced when dependencies are built.
