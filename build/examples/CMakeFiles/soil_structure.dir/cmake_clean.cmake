file(REMOVE_RECURSE
  "CMakeFiles/soil_structure.dir/soil_structure.cpp.o"
  "CMakeFiles/soil_structure.dir/soil_structure.cpp.o.d"
  "soil_structure"
  "soil_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soil_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
