# Empty dependencies file for most_experiment.
# This may be replaced when dependencies are built.
