file(REMOVE_RECURSE
  "CMakeFiles/most_experiment.dir/most_experiment.cpp.o"
  "CMakeFiles/most_experiment.dir/most_experiment.cpp.o.d"
  "most_experiment"
  "most_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
