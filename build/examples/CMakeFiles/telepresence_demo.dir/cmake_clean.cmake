file(REMOVE_RECURSE
  "CMakeFiles/telepresence_demo.dir/telepresence_demo.cpp.o"
  "CMakeFiles/telepresence_demo.dir/telepresence_demo.cpp.o.d"
  "telepresence_demo"
  "telepresence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telepresence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
