# Empty dependencies file for telepresence_demo.
# This may be replaced when dependencies are built.
