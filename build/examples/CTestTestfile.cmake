# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_most "/root/repo/build/examples/most_experiment" "150")
set_tests_properties(example_most PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mini_most "/root/repo/build/examples/mini_most" "100")
set_tests_properties(example_mini_most PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soil_structure "/root/repo/build/examples/soil_structure" "150")
set_tests_properties(example_soil_structure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_telepresence "/root/repo/build/examples/telepresence_demo" "80")
set_tests_properties(example_telepresence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_field_test "/root/repo/build/examples/field_test" "1")
set_tests_properties(example_field_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
