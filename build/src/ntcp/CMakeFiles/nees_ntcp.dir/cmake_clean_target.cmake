file(REMOVE_RECURSE
  "libnees_ntcp.a"
)
