
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ntcp/client.cpp" "src/ntcp/CMakeFiles/nees_ntcp.dir/client.cpp.o" "gcc" "src/ntcp/CMakeFiles/nees_ntcp.dir/client.cpp.o.d"
  "/root/repo/src/ntcp/server.cpp" "src/ntcp/CMakeFiles/nees_ntcp.dir/server.cpp.o" "gcc" "src/ntcp/CMakeFiles/nees_ntcp.dir/server.cpp.o.d"
  "/root/repo/src/ntcp/types.cpp" "src/ntcp/CMakeFiles/nees_ntcp.dir/types.cpp.o" "gcc" "src/ntcp/CMakeFiles/nees_ntcp.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/nees_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
