file(REMOVE_RECURSE
  "CMakeFiles/nees_ntcp.dir/client.cpp.o"
  "CMakeFiles/nees_ntcp.dir/client.cpp.o.d"
  "CMakeFiles/nees_ntcp.dir/server.cpp.o"
  "CMakeFiles/nees_ntcp.dir/server.cpp.o.d"
  "CMakeFiles/nees_ntcp.dir/types.cpp.o"
  "CMakeFiles/nees_ntcp.dir/types.cpp.o.d"
  "libnees_ntcp.a"
  "libnees_ntcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_ntcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
