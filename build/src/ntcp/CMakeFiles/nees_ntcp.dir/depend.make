# Empty dependencies file for nees_ntcp.
# This may be replaced when dependencies are built.
