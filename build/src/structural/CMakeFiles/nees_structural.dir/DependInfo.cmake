
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structural/element.cpp" "src/structural/CMakeFiles/nees_structural.dir/element.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/element.cpp.o.d"
  "/root/repo/src/structural/frame.cpp" "src/structural/CMakeFiles/nees_structural.dir/frame.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/frame.cpp.o.d"
  "/root/repo/src/structural/groundmotion.cpp" "src/structural/CMakeFiles/nees_structural.dir/groundmotion.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/groundmotion.cpp.o.d"
  "/root/repo/src/structural/integrator.cpp" "src/structural/CMakeFiles/nees_structural.dir/integrator.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/integrator.cpp.o.d"
  "/root/repo/src/structural/linalg.cpp" "src/structural/CMakeFiles/nees_structural.dir/linalg.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/linalg.cpp.o.d"
  "/root/repo/src/structural/substructure.cpp" "src/structural/CMakeFiles/nees_structural.dir/substructure.cpp.o" "gcc" "src/structural/CMakeFiles/nees_structural.dir/substructure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
