file(REMOVE_RECURSE
  "libnees_structural.a"
)
