file(REMOVE_RECURSE
  "CMakeFiles/nees_structural.dir/element.cpp.o"
  "CMakeFiles/nees_structural.dir/element.cpp.o.d"
  "CMakeFiles/nees_structural.dir/frame.cpp.o"
  "CMakeFiles/nees_structural.dir/frame.cpp.o.d"
  "CMakeFiles/nees_structural.dir/groundmotion.cpp.o"
  "CMakeFiles/nees_structural.dir/groundmotion.cpp.o.d"
  "CMakeFiles/nees_structural.dir/integrator.cpp.o"
  "CMakeFiles/nees_structural.dir/integrator.cpp.o.d"
  "CMakeFiles/nees_structural.dir/linalg.cpp.o"
  "CMakeFiles/nees_structural.dir/linalg.cpp.o.d"
  "CMakeFiles/nees_structural.dir/substructure.cpp.o"
  "CMakeFiles/nees_structural.dir/substructure.cpp.o.d"
  "libnees_structural.a"
  "libnees_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
