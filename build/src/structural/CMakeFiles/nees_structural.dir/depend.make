# Empty dependencies file for nees_structural.
# This may be replaced when dependencies are built.
