# Empty compiler generated dependencies file for nees_testbed.
# This may be replaced when dependencies are built.
