file(REMOVE_RECURSE
  "CMakeFiles/nees_testbed.dir/motion.cpp.o"
  "CMakeFiles/nees_testbed.dir/motion.cpp.o.d"
  "CMakeFiles/nees_testbed.dir/sensors.cpp.o"
  "CMakeFiles/nees_testbed.dir/sensors.cpp.o.d"
  "CMakeFiles/nees_testbed.dir/shorewestern.cpp.o"
  "CMakeFiles/nees_testbed.dir/shorewestern.cpp.o.d"
  "CMakeFiles/nees_testbed.dir/specimen.cpp.o"
  "CMakeFiles/nees_testbed.dir/specimen.cpp.o.d"
  "CMakeFiles/nees_testbed.dir/xpc.cpp.o"
  "CMakeFiles/nees_testbed.dir/xpc.cpp.o.d"
  "libnees_testbed.a"
  "libnees_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
