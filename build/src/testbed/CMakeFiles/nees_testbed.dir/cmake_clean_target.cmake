file(REMOVE_RECURSE
  "libnees_testbed.a"
)
