
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/motion.cpp" "src/testbed/CMakeFiles/nees_testbed.dir/motion.cpp.o" "gcc" "src/testbed/CMakeFiles/nees_testbed.dir/motion.cpp.o.d"
  "/root/repo/src/testbed/sensors.cpp" "src/testbed/CMakeFiles/nees_testbed.dir/sensors.cpp.o" "gcc" "src/testbed/CMakeFiles/nees_testbed.dir/sensors.cpp.o.d"
  "/root/repo/src/testbed/shorewestern.cpp" "src/testbed/CMakeFiles/nees_testbed.dir/shorewestern.cpp.o" "gcc" "src/testbed/CMakeFiles/nees_testbed.dir/shorewestern.cpp.o.d"
  "/root/repo/src/testbed/specimen.cpp" "src/testbed/CMakeFiles/nees_testbed.dir/specimen.cpp.o" "gcc" "src/testbed/CMakeFiles/nees_testbed.dir/specimen.cpp.o.d"
  "/root/repo/src/testbed/xpc.cpp" "src/testbed/CMakeFiles/nees_testbed.dir/xpc.cpp.o" "gcc" "src/testbed/CMakeFiles/nees_testbed.dir/xpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structural/CMakeFiles/nees_structural.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
