# Empty dependencies file for nees_util.
# This may be replaced when dependencies are built.
