file(REMOVE_RECURSE
  "CMakeFiles/nees_util.dir/bytes.cpp.o"
  "CMakeFiles/nees_util.dir/bytes.cpp.o.d"
  "CMakeFiles/nees_util.dir/clock.cpp.o"
  "CMakeFiles/nees_util.dir/clock.cpp.o.d"
  "CMakeFiles/nees_util.dir/logging.cpp.o"
  "CMakeFiles/nees_util.dir/logging.cpp.o.d"
  "CMakeFiles/nees_util.dir/result.cpp.o"
  "CMakeFiles/nees_util.dir/result.cpp.o.d"
  "CMakeFiles/nees_util.dir/rng.cpp.o"
  "CMakeFiles/nees_util.dir/rng.cpp.o.d"
  "CMakeFiles/nees_util.dir/sha256.cpp.o"
  "CMakeFiles/nees_util.dir/sha256.cpp.o.d"
  "CMakeFiles/nees_util.dir/stats.cpp.o"
  "CMakeFiles/nees_util.dir/stats.cpp.o.d"
  "CMakeFiles/nees_util.dir/strings.cpp.o"
  "CMakeFiles/nees_util.dir/strings.cpp.o.d"
  "CMakeFiles/nees_util.dir/uuid.cpp.o"
  "CMakeFiles/nees_util.dir/uuid.cpp.o.d"
  "libnees_util.a"
  "libnees_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
