file(REMOVE_RECURSE
  "libnees_util.a"
)
