
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repo/facade.cpp" "src/repo/CMakeFiles/nees_repo.dir/facade.cpp.o" "gcc" "src/repo/CMakeFiles/nees_repo.dir/facade.cpp.o.d"
  "/root/repo/src/repo/filestore.cpp" "src/repo/CMakeFiles/nees_repo.dir/filestore.cpp.o" "gcc" "src/repo/CMakeFiles/nees_repo.dir/filestore.cpp.o.d"
  "/root/repo/src/repo/gridftp.cpp" "src/repo/CMakeFiles/nees_repo.dir/gridftp.cpp.o" "gcc" "src/repo/CMakeFiles/nees_repo.dir/gridftp.cpp.o.d"
  "/root/repo/src/repo/nfms.cpp" "src/repo/CMakeFiles/nees_repo.dir/nfms.cpp.o" "gcc" "src/repo/CMakeFiles/nees_repo.dir/nfms.cpp.o.d"
  "/root/repo/src/repo/nmds.cpp" "src/repo/CMakeFiles/nees_repo.dir/nmds.cpp.o" "gcc" "src/repo/CMakeFiles/nees_repo.dir/nmds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/daq/CMakeFiles/nees_daq.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/nees_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nsds/CMakeFiles/nees_nsds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
