# Empty compiler generated dependencies file for nees_repo.
# This may be replaced when dependencies are built.
