file(REMOVE_RECURSE
  "CMakeFiles/nees_repo.dir/facade.cpp.o"
  "CMakeFiles/nees_repo.dir/facade.cpp.o.d"
  "CMakeFiles/nees_repo.dir/filestore.cpp.o"
  "CMakeFiles/nees_repo.dir/filestore.cpp.o.d"
  "CMakeFiles/nees_repo.dir/gridftp.cpp.o"
  "CMakeFiles/nees_repo.dir/gridftp.cpp.o.d"
  "CMakeFiles/nees_repo.dir/nfms.cpp.o"
  "CMakeFiles/nees_repo.dir/nfms.cpp.o.d"
  "CMakeFiles/nees_repo.dir/nmds.cpp.o"
  "CMakeFiles/nees_repo.dir/nmds.cpp.o.d"
  "libnees_repo.a"
  "libnees_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
