file(REMOVE_RECURSE
  "libnees_repo.a"
)
