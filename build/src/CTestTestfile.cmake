# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("grid")
subdirs("security")
subdirs("structural")
subdirs("testbed")
subdirs("ntcp")
subdirs("plugins")
subdirs("daq")
subdirs("nsds")
subdirs("repo")
subdirs("psd")
subdirs("telepresence")
subdirs("chef")
subdirs("centrifuge")
subdirs("most")
