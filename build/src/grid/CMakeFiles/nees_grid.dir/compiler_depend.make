# Empty compiler generated dependencies file for nees_grid.
# This may be replaced when dependencies are built.
