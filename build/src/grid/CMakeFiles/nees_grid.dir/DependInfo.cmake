
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/container.cpp" "src/grid/CMakeFiles/nees_grid.dir/container.cpp.o" "gcc" "src/grid/CMakeFiles/nees_grid.dir/container.cpp.o.d"
  "/root/repo/src/grid/registry.cpp" "src/grid/CMakeFiles/nees_grid.dir/registry.cpp.o" "gcc" "src/grid/CMakeFiles/nees_grid.dir/registry.cpp.o.d"
  "/root/repo/src/grid/service.cpp" "src/grid/CMakeFiles/nees_grid.dir/service.cpp.o" "gcc" "src/grid/CMakeFiles/nees_grid.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
