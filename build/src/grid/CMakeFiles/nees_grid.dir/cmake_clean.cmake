file(REMOVE_RECURSE
  "CMakeFiles/nees_grid.dir/container.cpp.o"
  "CMakeFiles/nees_grid.dir/container.cpp.o.d"
  "CMakeFiles/nees_grid.dir/registry.cpp.o"
  "CMakeFiles/nees_grid.dir/registry.cpp.o.d"
  "CMakeFiles/nees_grid.dir/service.cpp.o"
  "CMakeFiles/nees_grid.dir/service.cpp.o.d"
  "libnees_grid.a"
  "libnees_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
