file(REMOVE_RECURSE
  "libnees_grid.a"
)
