# CMake generated Testfile for 
# Source directory: /root/repo/src/centrifuge
# Build directory: /root/repo/build/src/centrifuge
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
