file(REMOVE_RECURSE
  "CMakeFiles/nees_centrifuge.dir/plugin.cpp.o"
  "CMakeFiles/nees_centrifuge.dir/plugin.cpp.o.d"
  "CMakeFiles/nees_centrifuge.dir/robot.cpp.o"
  "CMakeFiles/nees_centrifuge.dir/robot.cpp.o.d"
  "libnees_centrifuge.a"
  "libnees_centrifuge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_centrifuge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
