file(REMOVE_RECURSE
  "libnees_centrifuge.a"
)
