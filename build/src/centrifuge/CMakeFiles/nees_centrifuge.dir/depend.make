# Empty dependencies file for nees_centrifuge.
# This may be replaced when dependencies are built.
