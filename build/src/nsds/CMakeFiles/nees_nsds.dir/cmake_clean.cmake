file(REMOVE_RECURSE
  "CMakeFiles/nees_nsds.dir/nsds.cpp.o"
  "CMakeFiles/nees_nsds.dir/nsds.cpp.o.d"
  "CMakeFiles/nees_nsds.dir/referral.cpp.o"
  "CMakeFiles/nees_nsds.dir/referral.cpp.o.d"
  "libnees_nsds.a"
  "libnees_nsds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_nsds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
