file(REMOVE_RECURSE
  "libnees_nsds.a"
)
