# Empty compiler generated dependencies file for nees_nsds.
# This may be replaced when dependencies are built.
