
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nsds/nsds.cpp" "src/nsds/CMakeFiles/nees_nsds.dir/nsds.cpp.o" "gcc" "src/nsds/CMakeFiles/nees_nsds.dir/nsds.cpp.o.d"
  "/root/repo/src/nsds/referral.cpp" "src/nsds/CMakeFiles/nees_nsds.dir/referral.cpp.o" "gcc" "src/nsds/CMakeFiles/nees_nsds.dir/referral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
