# Empty compiler generated dependencies file for nees_daq.
# This may be replaced when dependencies are built.
