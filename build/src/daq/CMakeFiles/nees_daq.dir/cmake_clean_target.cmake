file(REMOVE_RECURSE
  "libnees_daq.a"
)
