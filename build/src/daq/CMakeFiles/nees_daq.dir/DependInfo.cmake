
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daq/daq.cpp" "src/daq/CMakeFiles/nees_daq.dir/daq.cpp.o" "gcc" "src/daq/CMakeFiles/nees_daq.dir/daq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nsds/CMakeFiles/nees_nsds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
