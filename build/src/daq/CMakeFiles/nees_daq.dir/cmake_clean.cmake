file(REMOVE_RECURSE
  "CMakeFiles/nees_daq.dir/daq.cpp.o"
  "CMakeFiles/nees_daq.dir/daq.cpp.o.d"
  "libnees_daq.a"
  "libnees_daq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_daq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
