# Empty compiler generated dependencies file for nees_plugins.
# This may be replaced when dependencies are built.
