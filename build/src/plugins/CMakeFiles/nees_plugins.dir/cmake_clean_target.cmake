file(REMOVE_RECURSE
  "libnees_plugins.a"
)
