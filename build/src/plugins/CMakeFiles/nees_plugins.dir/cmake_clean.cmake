file(REMOVE_RECURSE
  "CMakeFiles/nees_plugins.dir/labview_plugin.cpp.o"
  "CMakeFiles/nees_plugins.dir/labview_plugin.cpp.o.d"
  "CMakeFiles/nees_plugins.dir/mplugin.cpp.o"
  "CMakeFiles/nees_plugins.dir/mplugin.cpp.o.d"
  "CMakeFiles/nees_plugins.dir/policy_plugin.cpp.o"
  "CMakeFiles/nees_plugins.dir/policy_plugin.cpp.o.d"
  "CMakeFiles/nees_plugins.dir/shorewestern_plugin.cpp.o"
  "CMakeFiles/nees_plugins.dir/shorewestern_plugin.cpp.o.d"
  "CMakeFiles/nees_plugins.dir/simulation_plugin.cpp.o"
  "CMakeFiles/nees_plugins.dir/simulation_plugin.cpp.o.d"
  "libnees_plugins.a"
  "libnees_plugins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
