file(REMOVE_RECURSE
  "libnees_security.a"
)
