
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/auth.cpp" "src/security/CMakeFiles/nees_security.dir/auth.cpp.o" "gcc" "src/security/CMakeFiles/nees_security.dir/auth.cpp.o.d"
  "/root/repo/src/security/cas.cpp" "src/security/CMakeFiles/nees_security.dir/cas.cpp.o" "gcc" "src/security/CMakeFiles/nees_security.dir/cas.cpp.o.d"
  "/root/repo/src/security/certificate.cpp" "src/security/CMakeFiles/nees_security.dir/certificate.cpp.o" "gcc" "src/security/CMakeFiles/nees_security.dir/certificate.cpp.o.d"
  "/root/repo/src/security/schnorr.cpp" "src/security/CMakeFiles/nees_security.dir/schnorr.cpp.o" "gcc" "src/security/CMakeFiles/nees_security.dir/schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nees_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nees_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
