file(REMOVE_RECURSE
  "CMakeFiles/nees_security.dir/auth.cpp.o"
  "CMakeFiles/nees_security.dir/auth.cpp.o.d"
  "CMakeFiles/nees_security.dir/cas.cpp.o"
  "CMakeFiles/nees_security.dir/cas.cpp.o.d"
  "CMakeFiles/nees_security.dir/certificate.cpp.o"
  "CMakeFiles/nees_security.dir/certificate.cpp.o.d"
  "CMakeFiles/nees_security.dir/schnorr.cpp.o"
  "CMakeFiles/nees_security.dir/schnorr.cpp.o.d"
  "libnees_security.a"
  "libnees_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
