# Empty compiler generated dependencies file for nees_security.
# This may be replaced when dependencies are built.
