file(REMOVE_RECURSE
  "libnees_net.a"
)
