file(REMOVE_RECURSE
  "CMakeFiles/nees_net.dir/network.cpp.o"
  "CMakeFiles/nees_net.dir/network.cpp.o.d"
  "CMakeFiles/nees_net.dir/rpc.cpp.o"
  "CMakeFiles/nees_net.dir/rpc.cpp.o.d"
  "libnees_net.a"
  "libnees_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
