# Empty dependencies file for nees_net.
# This may be replaced when dependencies are built.
