file(REMOVE_RECURSE
  "libnees_most.a"
)
