file(REMOVE_RECURSE
  "CMakeFiles/nees_most.dir/mini_most.cpp.o"
  "CMakeFiles/nees_most.dir/mini_most.cpp.o.d"
  "CMakeFiles/nees_most.dir/most.cpp.o"
  "CMakeFiles/nees_most.dir/most.cpp.o.d"
  "libnees_most.a"
  "libnees_most.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_most.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
