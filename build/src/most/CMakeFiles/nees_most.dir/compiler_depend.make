# Empty compiler generated dependencies file for nees_most.
# This may be replaced when dependencies are built.
