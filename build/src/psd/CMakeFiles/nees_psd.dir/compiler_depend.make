# Empty compiler generated dependencies file for nees_psd.
# This may be replaced when dependencies are built.
