file(REMOVE_RECURSE
  "libnees_psd.a"
)
