file(REMOVE_RECURSE
  "CMakeFiles/nees_psd.dir/coordinator.cpp.o"
  "CMakeFiles/nees_psd.dir/coordinator.cpp.o.d"
  "libnees_psd.a"
  "libnees_psd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_psd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
