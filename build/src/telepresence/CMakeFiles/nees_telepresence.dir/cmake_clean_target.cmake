file(REMOVE_RECURSE
  "libnees_telepresence.a"
)
