# Empty compiler generated dependencies file for nees_telepresence.
# This may be replaced when dependencies are built.
