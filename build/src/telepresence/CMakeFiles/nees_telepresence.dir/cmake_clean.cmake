file(REMOVE_RECURSE
  "CMakeFiles/nees_telepresence.dir/telepresence.cpp.o"
  "CMakeFiles/nees_telepresence.dir/telepresence.cpp.o.d"
  "libnees_telepresence.a"
  "libnees_telepresence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_telepresence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
