# Empty dependencies file for nees_chef.
# This may be replaced when dependencies are built.
