file(REMOVE_RECURSE
  "CMakeFiles/nees_chef.dir/chef.cpp.o"
  "CMakeFiles/nees_chef.dir/chef.cpp.o.d"
  "libnees_chef.a"
  "libnees_chef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nees_chef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
