file(REMOVE_RECURSE
  "libnees_chef.a"
)
