# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/structural_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/ntcp_test[1]_include.cmake")
include("/root/repo/build/tests/plugins_test[1]_include.cmake")
include("/root/repo/build/tests/nsds_daq_test[1]_include.cmake")
include("/root/repo/build/tests/repo_test[1]_include.cmake")
include("/root/repo/build/tests/psd_test[1]_include.cmake")
include("/root/repo/build/tests/most_test[1]_include.cmake")
include("/root/repo/build/tests/tele_chef_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/centrifuge_test[1]_include.cmake")
