# Empty dependencies file for most_test.
# This may be replaced when dependencies are built.
