file(REMOVE_RECURSE
  "CMakeFiles/most_test.dir/most_test.cpp.o"
  "CMakeFiles/most_test.dir/most_test.cpp.o.d"
  "most_test"
  "most_test.pdb"
  "most_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
