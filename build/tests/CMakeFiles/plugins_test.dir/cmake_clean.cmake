file(REMOVE_RECURSE
  "CMakeFiles/plugins_test.dir/plugins_test.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins_test.cpp.o.d"
  "plugins_test"
  "plugins_test.pdb"
  "plugins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
