file(REMOVE_RECURSE
  "CMakeFiles/centrifuge_test.dir/centrifuge_test.cpp.o"
  "CMakeFiles/centrifuge_test.dir/centrifuge_test.cpp.o.d"
  "centrifuge_test"
  "centrifuge_test.pdb"
  "centrifuge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrifuge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
