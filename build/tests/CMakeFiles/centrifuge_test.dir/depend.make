# Empty dependencies file for centrifuge_test.
# This may be replaced when dependencies are built.
