file(REMOVE_RECURSE
  "CMakeFiles/tele_chef_test.dir/tele_chef_test.cpp.o"
  "CMakeFiles/tele_chef_test.dir/tele_chef_test.cpp.o.d"
  "tele_chef_test"
  "tele_chef_test.pdb"
  "tele_chef_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tele_chef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
