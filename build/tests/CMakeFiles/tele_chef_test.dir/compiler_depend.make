# Empty compiler generated dependencies file for tele_chef_test.
# This may be replaced when dependencies are built.
