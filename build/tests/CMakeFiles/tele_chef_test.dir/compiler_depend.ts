# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tele_chef_test.
