# Empty dependencies file for nsds_daq_test.
# This may be replaced when dependencies are built.
