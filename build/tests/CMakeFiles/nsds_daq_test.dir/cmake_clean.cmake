file(REMOVE_RECURSE
  "CMakeFiles/nsds_daq_test.dir/nsds_daq_test.cpp.o"
  "CMakeFiles/nsds_daq_test.dir/nsds_daq_test.cpp.o.d"
  "nsds_daq_test"
  "nsds_daq_test.pdb"
  "nsds_daq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsds_daq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
