# Empty dependencies file for repo_test.
# This may be replaced when dependencies are built.
