file(REMOVE_RECURSE
  "CMakeFiles/psd_test.dir/psd_test.cpp.o"
  "CMakeFiles/psd_test.dir/psd_test.cpp.o.d"
  "psd_test"
  "psd_test.pdb"
  "psd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
