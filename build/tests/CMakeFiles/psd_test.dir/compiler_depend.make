# Empty compiler generated dependencies file for psd_test.
# This may be replaced when dependencies are built.
