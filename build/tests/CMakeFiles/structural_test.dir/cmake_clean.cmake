file(REMOVE_RECURSE
  "CMakeFiles/structural_test.dir/structural_test.cpp.o"
  "CMakeFiles/structural_test.dir/structural_test.cpp.o.d"
  "structural_test"
  "structural_test.pdb"
  "structural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
