file(REMOVE_RECURSE
  "CMakeFiles/ntcp_test.dir/ntcp_test.cpp.o"
  "CMakeFiles/ntcp_test.dir/ntcp_test.cpp.o.d"
  "ntcp_test"
  "ntcp_test.pdb"
  "ntcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
