# Empty compiler generated dependencies file for ntcp_test.
# This may be replaced when dependencies are built.
