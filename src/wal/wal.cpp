#include "wal/wal.h"

#include <array>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>  // fsync / fileno
#endif

#include "util/crc32.h"
#include "util/strings.h"

namespace nees::wal {
namespace {

constexpr std::size_t kHeaderBytes = 8;  // u32 length + u32 crc32

std::uint32_t ReadLittleU32(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
}

void AppendLittleU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xFF));
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  return util::Crc32(data, size);
}

// --- MemoryStorage ----------------------------------------------------------

util::Status MemoryStorage::Append(const std::vector<std::uint8_t>& bytes) {
  if (crashed_) return util::OkStatus();  // dead processes write nothing
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return util::OkStatus();
}

util::Status MemoryStorage::Sync() {
  if (crashed_) return util::OkStatus();
  synced_size_ = bytes_.size();
  return util::OkStatus();
}

util::Result<std::vector<std::uint8_t>> MemoryStorage::Load() {
  return bytes_;
}

util::Status MemoryStorage::Truncate(std::size_t size) {
  if (crashed_) return util::OkStatus();
  if (size < bytes_.size()) bytes_.resize(size);
  if (synced_size_ > bytes_.size()) synced_size_ = bytes_.size();
  return util::OkStatus();
}

void MemoryStorage::Crash() {
  bytes_.resize(synced_size_);  // the kernel loses the unsynced tail
  crashed_ = true;
}

void MemoryStorage::Revive() { crashed_ = false; }

void MemoryStorage::CorruptByte(std::size_t offset) {
  if (offset < bytes_.size()) bytes_[offset] ^= 0x40;
  if (synced_size_ < bytes_.size()) synced_size_ = bytes_.size();
}

void MemoryStorage::ForceTruncate(std::size_t size) {
  if (size < bytes_.size()) bytes_.resize(size);
  if (synced_size_ > bytes_.size()) synced_size_ = bytes_.size();
}

// --- FileStorage ------------------------------------------------------------

FileStorage::FileStorage(std::string path) : path_(std::move(path)) {}

FileStorage::~FileStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status FileStorage::EnsureOpen() {
  if (file_ != nullptr) return util::OkStatus();
  // a+b: create if missing, never clobber an existing log, append-only.
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) {
    return util::Internal("cannot open WAL file: " + path_);
  }
  return util::OkStatus();
}

util::Status FileStorage::Append(const std::vector<std::uint8_t>& bytes) {
  NEES_RETURN_IF_ERROR(EnsureOpen());
  if (bytes.empty()) return util::OkStatus();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return util::DataLoss("short write to WAL file: " + path_);
  }
  return util::OkStatus();
}

util::Status FileStorage::Sync() {
  NEES_RETURN_IF_ERROR(EnsureOpen());
  if (std::fflush(file_) != 0) {
    return util::DataLoss("fflush failed on WAL file: " + path_);
  }
#if defined(_WIN32)
  // No fsync on this toolchain; fflush is the best available barrier.
#else
  if (fsync(fileno(file_)) != 0) {
    return util::DataLoss("fsync failed on WAL file: " + path_);
  }
#endif
  return util::OkStatus();
}

util::Result<std::vector<std::uint8_t>> FileStorage::Load() {
  NEES_RETURN_IF_ERROR(EnsureOpen());
  if (std::fflush(file_) != 0) {
    return util::DataLoss("fflush failed on WAL file: " + path_);
  }
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    return util::Internal("cannot re-open WAL file for read: " + path_);
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 4096> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), in)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
  }
  const bool failed = std::ferror(in) != 0;
  std::fclose(in);
  if (failed) return util::DataLoss("error reading WAL file: " + path_);
  return bytes;
}

util::Status FileStorage::Truncate(std::size_t size) {
  // Rewrite-in-place: load the prefix, close, recreate. Torn tails are
  // small and truncation happens once, at open.
  NEES_ASSIGN_OR_RETURN(std::vector<std::uint8_t> bytes, Load());
  if (size >= bytes.size()) return util::OkStatus();
  bytes.resize(size);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    return util::Internal("cannot rewrite WAL file: " + path_);
  }
  const bool ok =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
  std::fclose(out);
  if (!ok) return util::DataLoss("short rewrite of WAL file: " + path_);
  return util::OkStatus();
}

// --- Log --------------------------------------------------------------------

util::Result<std::vector<Record>> Log::Open() {
  open_stats_ = {};
  NEES_ASSIGN_OR_RETURN(std::vector<std::uint8_t> bytes, storage_->Load());

  std::vector<Record> records;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kHeaderBytes) break;  // torn header
    const std::uint32_t length = ReadLittleU32(&bytes[offset]);
    const std::uint32_t crc = ReadLittleU32(&bytes[offset + 4]);
    if (length == 0) {
      return util::DataLoss(util::Format(
          "WAL record at byte %zu has zero length (header corrupt)", offset));
    }
    if (remaining - kHeaderBytes < length) break;  // torn body
    const std::uint8_t* body = &bytes[offset + kHeaderBytes];
    const std::uint32_t actual = Crc32(body, length);
    if (actual != crc) {
      return util::DataLoss(util::Format(
          "WAL record at byte %zu fails its CRC check (stored 0x%08x, "
          "computed 0x%08x over %u bytes): log is corrupt, refusing to "
          "recover past it",
          offset, crc, actual, length));
    }
    Record record;
    record.type = body[0];
    record.payload.assign(body + 1, body + length);
    records.push_back(std::move(record));
    offset += kHeaderBytes + length;
  }

  if (offset < bytes.size()) {
    // Torn tail: the crash landed between append and sync. Drop it.
    open_stats_.truncated_bytes = bytes.size() - offset;
    NEES_RETURN_IF_ERROR(storage_->Truncate(offset));
  }
  open_stats_.records = records.size();
  open_stats_.bytes = offset;
  return records;
}

util::Status Log::Append(std::uint8_t type,
                         const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + 1 + payload.size());
  std::vector<std::uint8_t> body;
  body.reserve(1 + payload.size());
  body.push_back(type);
  body.insert(body.end(), payload.begin(), payload.end());
  AppendLittleU32(frame, static_cast<std::uint32_t>(body.size()));
  AppendLittleU32(frame, Crc32(body.data(), body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  NEES_RETURN_IF_ERROR(storage_->Append(frame));
  ++appended_;
  return util::OkStatus();
}

util::Status Log::Sync() { return storage_->Sync(); }

}  // namespace nees::wal
