// Write-ahead log used by the NTCP servers and the MOST coordinator to
// survive process crashes (the transaction-replay discipline of Krafft's
// ad-hoc-grid simulation work, applied to the paper's Fig. 1 state
// machine): every durable state transition is appended and synced *before*
// the reply that discloses it leaves the process, so a restarted process
// can reconstruct exactly what it had promised.
//
// Framing: each record is [u32 length][u32 crc32][u8 type][payload...],
// little-endian, where `length` counts the type byte plus the payload and
// the CRC covers the same bytes. Open() walks the frames and distinguishes
// the two corruption cases a crash can leave behind:
//
//   * torn tail  — the final frame has fewer bytes than its header (or the
//                  header itself is cut short): the process died mid-append
//                  before the sync point. Open() truncates the tail and
//                  recovers everything before it; this is NOT an error.
//   * bad CRC    — a *complete* frame whose checksum does not match: the
//                  storage itself is damaged (bit rot, overwrite). Open()
//                  aborts with kDataLoss and a byte offset; recovery must
//                  not guess past silent corruption.
//
// The Storage interface is the fsync-point abstraction: Append() buffers,
// Sync() makes everything appended so far durable. MemoryStorage models a
// process crash for the deterministic fuzzer — Crash() discards the
// unsynced tail (exactly what the kernel would lose) and swallows all
// further writes (a dead process cannot write); Revive() re-admits writes
// for the next incarnation. FileStorage maps Sync() to fflush+fsync.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace nees::wal {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `size` bytes.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

/// Append-only durable byte store with an explicit sync point.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Appends bytes to the (possibly volatile) write buffer.
  virtual util::Status Append(const std::vector<std::uint8_t>& bytes) = 0;
  /// Makes every byte appended so far durable (the fsync point).
  virtual util::Status Sync() = 0;
  /// Reads the full current contents (durable + buffered tail).
  virtual util::Result<std::vector<std::uint8_t>> Load() = 0;
  /// Discards everything at and after byte `size` (torn-tail cleanup).
  virtual util::Status Truncate(std::size_t size) = 0;
};

/// In-memory storage with an explicit durability line, for tests and the
/// deterministic fuzzer's crash/restart fault class.
class MemoryStorage final : public Storage {
 public:
  util::Status Append(const std::vector<std::uint8_t>& bytes) override;
  util::Status Sync() override;
  util::Result<std::vector<std::uint8_t>> Load() override;
  util::Status Truncate(std::size_t size) override;

  /// Process death: the unsynced tail is lost and, until Revive(), every
  /// further Append/Sync is silently swallowed (a dead process cannot
  /// write, and its zombie stack frames must not observe errors either).
  void Crash();
  /// Re-admits writes for the next process incarnation.
  void Revive();

  bool crashed() const { return crashed_; }
  std::size_t size() const { return bytes_.size(); }
  std::size_t synced_size() const { return synced_size_; }

  /// Test hook: flips one bit so CRC validation has something to catch.
  void CorruptByte(std::size_t offset);
  /// Test hook: drops every byte at and after `size` regardless of sync
  /// state (models a filesystem that lost part of a synced file).
  void ForceTruncate(std::size_t size);

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t synced_size_ = 0;
  bool crashed_ = false;
};

/// File-backed storage; Sync() is fflush + fsync. The file is created on
/// first Append/Sync and re-read in full by Load().
class FileStorage final : public Storage {
 public:
  explicit FileStorage(std::string path);
  ~FileStorage() override;

  util::Status Append(const std::vector<std::uint8_t>& bytes) override;
  util::Status Sync() override;
  util::Result<std::vector<std::uint8_t>> Load() override;
  util::Status Truncate(std::size_t size) override;

  const std::string& path() const { return path_; }

 private:
  util::Status EnsureOpen();

  std::string path_;
  std::FILE* file_ = nullptr;
};

/// One decoded log record. `type` is owned by the layer above (the NTCP
/// server and the coordinator each define their own record vocabulary).
struct Record {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

struct OpenStats {
  std::size_t records = 0;
  std::size_t bytes = 0;            // valid log bytes after tail cleanup
  std::size_t truncated_bytes = 0;  // torn tail discarded by Open()
};

/// Framed record log over a Storage. Open() first, then Append()/Sync().
class Log {
 public:
  explicit Log(Storage* storage) : storage_(storage) {}

  /// Scans the storage, truncating a torn final record (a crash between
  /// append and sync) and returning every intact record in order. A
  /// complete record with a CRC mismatch aborts with kDataLoss — the log
  /// is damaged, not merely torn, and replaying past silent corruption
  /// would resurrect arbitrary state.
  util::Result<std::vector<Record>> Open();

  /// Appends one framed record (not yet durable).
  util::Status Append(std::uint8_t type,
                      const std::vector<std::uint8_t>& payload);
  /// Durability point: everything appended so far survives a crash.
  util::Status Sync();

  const OpenStats& open_stats() const { return open_stats_; }
  std::size_t appended() const { return appended_; }

 private:
  Storage* storage_;
  OpenStats open_stats_;
  std::size_t appended_ = 0;
};

}  // namespace nees::wal
