// SimulationPlugin: an NTCP control plugin whose backend is a numerical
// substructure model — the "computational simulations that model the
// actions of servo-hydraulic systems on experiment specimens" of §2.1.
// Because physical and numerical substructures share the NTCP interface,
// swapping this for a rig plugin is invisible to the coordinator (the
// MOST development methodology, §3).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ntcp/plugin.h"
#include "structural/substructure.h"

namespace nees::plugins {

class SimulationPlugin final : public ntcp::ControlPlugin {
 public:
  /// Adds a named control point backed by a (1-DOF or N-DOF) model.
  void AddControlPoint(const std::string& name,
                       std::unique_ptr<structural::SubstructureModel> model);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "simulation"; }

  /// Number of Execute() calls (for transparency/bookkeeping tests).
  std::uint64_t executions() const { return executions_; }

 private:
  std::map<std::string, std::unique_ptr<structural::SubstructureModel>>
      models_;
  std::uint64_t executions_ = 0;
};

}  // namespace nees::plugins
