#include "plugins/labview_plugin.h"

#include <cmath>

#include "obs/trace.h"

namespace nees::plugins {

LabViewPlugin::LabViewPlugin(
    Config config, std::unique_ptr<testbed::PhysicalSpecimen> specimen)
    : config_(config), specimen_(std::move(specimen)) {}

util::Status LabViewPlugin::Validate(const ntcp::Proposal& proposal) {
  if (proposal.actions.size() != 1 ||
      proposal.actions[0].control_point != config_.control_point) {
    return util::InvalidArgument("this rig controls only '" +
                                 config_.control_point + "'");
  }
  const auto& action = proposal.actions[0];
  if (action.target_displacement.size() != 1) {
    return util::InvalidArgument("control point has exactly one DOF");
  }
  if (std::fabs(action.target_displacement[0]) >
      config_.max_abs_displacement_m) {
    return util::PolicyViolation("target exceeds Mini-MOST travel limit");
  }
  if (specimen_->interlock_tripped()) {
    return util::SafetyInterlock("rig interlock is tripped");
  }
  return util::OkStatus();
}

util::Result<ntcp::TransactionResult> LabViewPlugin::Execute(
    const ntcp::Proposal& proposal) {
  const double target = proposal.actions[0].target_displacement[0];
  NEES_ASSIGN_OR_RETURN(testbed::Measurement measurement,
                        specimen_->ApplyDisplacement(target));
  if (tracer_ != nullptr) {
    tracer_->RecordEvent(
        "actuator.settle", "settle",
        static_cast<std::int64_t>(measurement.motion_seconds * 1e6),
        {{"rig", std::string(specimen_->name())}});
    tracer_->metrics().Observe("actuator.settle_micros",
                               measurement.motion_seconds * 1e6);
  }
  ntcp::TransactionResult result;
  ntcp::ControlPointResult cp;
  cp.control_point = config_.control_point;
  cp.measured_displacement = {measurement.displacement_m};
  cp.measured_force = {measurement.force_n};
  result.results.push_back(std::move(cp));
  return result;
}

}  // namespace nees::plugins
