// LimitPolicyPlugin: decorator that enforces site policy at proposal time
// (§2.1: "facility managers want to retain some control over what commands
// are acceptable, e.g. to set limits on the amount of force that can be
// applied"). Wraps any plugin; rejects proposals whose targets exceed the
// site's displacement/force limits BEFORE anything moves — this is what
// makes the propose/execute negotiation useful.
//
// HumanApprovalPlugin: decorator that requires an operator decision per
// execution (the paper: "a plugin/backend system that required a human to
// approve each action (used only during initial testing at UIUC)").
#pragma once

#include <functional>
#include <memory>

#include "ntcp/plugin.h"

namespace nees::plugins {

struct SitePolicy {
  double max_abs_displacement_m = 0.15;
  double max_abs_force_n = 4e5;
  /// If true, proposals naming control points with force targets are
  /// rejected (a displacement-controlled site).
  bool reject_force_control = false;
};

class LimitPolicyPlugin final : public ntcp::ControlPlugin {
 public:
  LimitPolicyPlugin(SitePolicy policy,
                    std::unique_ptr<ntcp::ControlPlugin> inner);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  void OnCancel(const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "limit-policy"; }
  void set_tracer(obs::Tracer* tracer) override {
    ControlPlugin::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  std::uint64_t rejections() const { return rejections_; }

 private:
  SitePolicy policy_;
  std::unique_ptr<ntcp::ControlPlugin> inner_;
  std::uint64_t rejections_ = 0;
};

class HumanApprovalPlugin final : public ntcp::ControlPlugin {
 public:
  /// The approver sees the proposal and returns true to allow execution.
  using Approver = std::function<bool(const ntcp::Proposal&)>;

  HumanApprovalPlugin(Approver approver,
                      std::unique_ptr<ntcp::ControlPlugin> inner);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "human-approval"; }
  void set_tracer(obs::Tracer* tracer) override {
    ControlPlugin::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  std::uint64_t denials() const { return denials_; }

 private:
  Approver approver_;
  std::unique_ptr<ntcp::ControlPlugin> inner_;
  std::uint64_t denials_ = 0;
};

}  // namespace nees::plugins
