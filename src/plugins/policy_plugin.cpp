#include "plugins/policy_plugin.h"

#include <cmath>

#include "util/strings.h"

namespace nees::plugins {

LimitPolicyPlugin::LimitPolicyPlugin(SitePolicy policy,
                                     std::unique_ptr<ntcp::ControlPlugin> inner)
    : policy_(policy), inner_(std::move(inner)) {}

util::Status LimitPolicyPlugin::Validate(const ntcp::Proposal& proposal) {
  for (const ntcp::ControlPointRequest& action : proposal.actions) {
    for (double d : action.target_displacement) {
      if (std::fabs(d) > policy_.max_abs_displacement_m) {
        ++rejections_;
        return util::PolicyViolation(util::Format(
            "site policy: |displacement| %.4g exceeds limit %.4g", d,
            policy_.max_abs_displacement_m));
      }
    }
    if (policy_.reject_force_control && !action.target_force.empty()) {
      ++rejections_;
      return util::PolicyViolation(
          "site policy: force-controlled actions not accepted here");
    }
    for (double f : action.target_force) {
      if (std::fabs(f) > policy_.max_abs_force_n) {
        ++rejections_;
        return util::PolicyViolation(util::Format(
            "site policy: |force| %.4g exceeds limit %.4g", f,
            policy_.max_abs_force_n));
      }
    }
  }
  return inner_->Validate(proposal);
}

util::Result<ntcp::TransactionResult> LimitPolicyPlugin::Execute(
    const ntcp::Proposal& proposal) {
  return inner_->Execute(proposal);
}

void LimitPolicyPlugin::OnCancel(const ntcp::Proposal& proposal) {
  inner_->OnCancel(proposal);
}

HumanApprovalPlugin::HumanApprovalPlugin(
    Approver approver, std::unique_ptr<ntcp::ControlPlugin> inner)
    : approver_(std::move(approver)), inner_(std::move(inner)) {}

util::Status HumanApprovalPlugin::Validate(const ntcp::Proposal& proposal) {
  return inner_->Validate(proposal);
}

util::Result<ntcp::TransactionResult> HumanApprovalPlugin::Execute(
    const ntcp::Proposal& proposal) {
  if (!approver_(proposal)) {
    ++denials_;
    return util::Aborted("operator denied execution of " +
                         proposal.transaction_id);
  }
  return inner_->Execute(proposal);
}

}  // namespace nees::plugins
