#include "plugins/simulation_plugin.h"

#include "obs/trace.h"

namespace nees::plugins {

void SimulationPlugin::AddControlPoint(
    const std::string& name,
    std::unique_ptr<structural::SubstructureModel> model) {
  models_[name] = std::move(model);
}

util::Status SimulationPlugin::Validate(const ntcp::Proposal& proposal) {
  if (proposal.actions.empty()) {
    return util::InvalidArgument("proposal has no actions");
  }
  for (const ntcp::ControlPointRequest& action : proposal.actions) {
    auto it = models_.find(action.control_point);
    if (it == models_.end()) {
      return util::NotFound("unknown control point: " + action.control_point);
    }
    if (action.target_displacement.size() != it->second->dof_count()) {
      return util::InvalidArgument(
          "DOF count mismatch for control point " + action.control_point);
    }
  }
  return util::OkStatus();
}

util::Result<ntcp::TransactionResult> SimulationPlugin::Execute(
    const ntcp::Proposal& proposal) {
  ++executions_;
  ntcp::TransactionResult result;
  for (const ntcp::ControlPointRequest& action : proposal.actions) {
    auto it = models_.find(action.control_point);
    if (it == models_.end()) {
      return util::NotFound("unknown control point: " + action.control_point);
    }
    NEES_ASSIGN_OR_RETURN(structural::Vector force,
                          it->second->Restore(action.target_displacement));
    ntcp::ControlPointResult cp;
    cp.control_point = action.control_point;
    cp.measured_displacement = action.target_displacement;  // ideal tracking
    cp.measured_force = std::move(force);
    result.results.push_back(std::move(cp));
  }
  if (tracer_ != nullptr) {
    tracer_->RecordEvent("sim.compute", "simulation", 0,
                         {{"actions", std::to_string(result.results.size())}});
  }
  return result;
}

}  // namespace nees::plugins
