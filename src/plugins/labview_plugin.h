// LabViewPlugin: the Mini-MOST configuration (§3.5) — "the main software
// change was a new NTCP plugin to communicate with LabVIEW". The LabVIEW
// daemon owns the stepper-motor rig; this plugin drives it directly (the
// control and DAQ run on a single Windows PC, so there is no vendor
// controller hop like at UIUC).
#pragma once

#include <memory>
#include <string>

#include "ntcp/plugin.h"
#include "testbed/specimen.h"

namespace nees::plugins {

class LabViewPlugin final : public ntcp::ControlPlugin {
 public:
  struct Config {
    std::string control_point = "beam-tip";
    double max_abs_displacement_m = 0.025;
  };

  LabViewPlugin(Config config,
                std::unique_ptr<testbed::PhysicalSpecimen> specimen);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "labview"; }

  testbed::PhysicalSpecimen& specimen() { return *specimen_; }

 private:
  Config config_;
  std::unique_ptr<testbed::PhysicalSpecimen> specimen_;
};

}  // namespace nees::plugins
