#include "plugins/mplugin.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace nees::plugins {

MPlugin::MPlugin(Config config) : config_(config) {}

MPlugin::~MPlugin() { Shutdown(); }

void MPlugin::Shutdown() {
  util::MutexLock lock(mu_);
  shutting_down_ = true;
  work_cv_.NotifyAll();
  for (auto& [id, pending] : pending_) pending->cv.NotifyAll();
}

util::Status MPlugin::Validate(const ntcp::Proposal& proposal) {
  if (proposal.actions.empty()) {
    return util::InvalidArgument("proposal has no actions");
  }
  for (const auto& action : proposal.actions) {
    for (double d : action.target_displacement) {
      if (std::fabs(d) > config_.max_abs_displacement_m) {
        return util::PolicyViolation("target exceeds Mplugin site limit");
      }
    }
  }
  return util::OkStatus();
}

util::Result<ntcp::TransactionResult> MPlugin::Execute(
    const ntcp::Proposal& proposal) {
  auto pending = std::make_shared<Pending>();
  if (tracer_ != nullptr) {
    // The backend thread has no implicit span context; remember ours so the
    // queue/compute records attach under the server.execute span.
    pending->parent_span_id = tracer_->CurrentSpanId();
    pending->enqueued_micros = tracer_->NowMicros();
  }
  std::function<void()> notify;
  {
    util::MutexLock lock(mu_);
    pending_[proposal.transaction_id] = pending;
    queue_.push_back(proposal);
    work_cv_.NotifyOne();
    notify = work_notifier_;
  }
  // Push-style wakeup for remote backends. Outside the lock: the notifier
  // typically issues a network send, and the woken backend's first poll
  // must not contend with us still holding mu_.
  if (notify) notify();
  {
    util::MutexLock lock(mu_);
    bool completed;
    if (virtual_net_ != nullptr) {
      // Virtual time: drive the event loop instead of parking. Each pump
      // runs outside mu_ (it delivers the wake, the backend's poll, the
      // compute, and the notify — possibly recursively) until PostResult
      // marks us done or the timeout's virtual deadline passes.
      const std::int64_t give_up = virtual_net_->clock()->NowMicros() +
                                   config_.execute_timeout_micros;
      while (!pending->done && !shutting_down_ &&
             virtual_net_->clock()->NowMicros() < give_up) {
        lock.Unlock();
        virtual_net_->PumpOneUntil(give_up);
        lock.Lock();
      }
      completed = pending->done || shutting_down_;
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.execute_timeout_micros);
      while (!pending->done && !shutting_down_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        pending->cv.WaitFor(
            mu_, std::chrono::duration_cast<std::chrono::microseconds>(
                     deadline - now)
                     .count());
      }
      completed = pending->done || shutting_down_;
    }
    pending_.erase(proposal.transaction_id);
    if (!completed || !pending->done) {
      // Remove the unclaimed request so a late backend can't act on it.
      std::erase_if(queue_, [&](const ntcp::Proposal& queued) {
        return queued.transaction_id == proposal.transaction_id;
      });
      return util::TimeoutError("backend did not service request " +
                                proposal.transaction_id);
    }
  }
  if (!pending->status.ok()) return pending->status;
  return pending->result;
}

std::optional<ntcp::Proposal> MPlugin::PollRequest(
    std::int64_t max_wait_micros) {
  util::MutexLock lock(mu_);
  ++polls_;
  const std::uint64_t epoch = poll_epoch_;
  if (virtual_net_ != nullptr) {
    // Long polls in virtual time pump the event loop between queue checks.
    const std::int64_t deadline =
        virtual_net_->clock()->NowMicros() + max_wait_micros;
    while (queue_.empty() && !shutting_down_ && poll_epoch_ == epoch &&
           virtual_net_->clock()->NowMicros() < deadline) {
      lock.Unlock();
      virtual_net_->PumpOneUntil(deadline);
      lock.Lock();
    }
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(max_wait_micros);
    while (queue_.empty() && !shutting_down_ && poll_epoch_ == epoch) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      work_cv_.WaitFor(
          mu_,
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
              .count());
    }
  }
  if (queue_.empty()) return std::nullopt;
  ntcp::Proposal proposal = std::move(queue_.front());
  queue_.pop_front();
  if (tracer_ != nullptr) {
    // Idle polls record nothing (their count depends on host scheduling);
    // only a successful dequeue leaves a trace.
    auto it = pending_.find(proposal.transaction_id);
    if (it != pending_.end()) {
      const std::int64_t now = tracer_->NowMicros();
      tracer_->RecordInterval(it->second->parent_span_id, "mplugin.queue",
                              "queue", it->second->enqueued_micros, now,
                              {{"txn", proposal.transaction_id}});
      tracer_->metrics().Observe(
          "mplugin.queue_micros",
          static_cast<double>(now - it->second->enqueued_micros));
      it->second->compute_span_id = tracer_->BeginSpanId(
          "backend.compute", "simulation", it->second->parent_span_id);
    }
  }
  return proposal;
}

util::Status MPlugin::PostResult(
    const std::string& transaction_id,
    util::Result<ntcp::TransactionResult> outcome) {
  util::MutexLock lock(mu_);
  auto it = pending_.find(transaction_id);
  if (it == pending_.end()) {
    return util::NotFound("no pending execution named " + transaction_id);
  }
  if (tracer_ != nullptr && it->second->compute_span_id != 0) {
    tracer_->EndSpanId(it->second->compute_span_id);
    it->second->compute_span_id = 0;
  }
  it->second->done = true;
  if (outcome.ok()) {
    it->second->result = std::move(outcome).value();
  } else {
    it->second->status = outcome.status();
  }
  it->second->cv.NotifyOne();  // wake exactly the Execute that is waiting
  return util::OkStatus();
}

void MPlugin::SetWorkNotifier(std::function<void()> notifier) {
  util::MutexLock lock(mu_);
  work_notifier_ = std::move(notifier);
}

void MPlugin::AttachVirtualNetwork(net::Network* network) {
  util::MutexLock lock(mu_);
  virtual_net_ =
      (network != nullptr && network->mode() == net::DeliveryMode::kVirtual)
          ? network
          : nullptr;
}

void MPlugin::InterruptPolls() {
  util::MutexLock lock(mu_);
  ++poll_epoch_;
  work_cv_.NotifyAll();
}

void MPlugin::BindBackendRpc(net::RpcServer& server) {
  server.RegisterMethod(
      "mplugin.poll",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::int64_t max_wait, reader.ReadI64());
        auto proposal = PollRequest(max_wait);
        util::ByteWriter writer;
        writer.WriteBool(proposal.has_value());
        if (proposal) ntcp::EncodeProposal(*proposal, writer);
        return writer.Take();
      });
  server.RegisterMethod(
      "mplugin.notify",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(bool ok, reader.ReadBool());
        if (ok) {
          NEES_ASSIGN_OR_RETURN(ntcp::TransactionResult result,
                                ntcp::DecodeTransactionResult(reader));
          NEES_RETURN_IF_ERROR(PostResult(id, std::move(result)));
        } else {
          NEES_ASSIGN_OR_RETURN(std::string error, reader.ReadString());
          NEES_RETURN_IF_ERROR(PostResult(id, util::Internal(error)));
        }
        return net::Bytes{};
      });
}

std::uint64_t MPlugin::polls() const {
  util::MutexLock lock(mu_);
  return polls_;
}

std::size_t MPlugin::buffered() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// PollingBackend

PollingBackend::PollingBackend(MPlugin* plugin, Compute compute,
                               std::int64_t poll_wait_micros)
    : plugin_(plugin),
      compute_(std::move(compute)),
      poll_wait_micros_(poll_wait_micros) {}

PollingBackend::~PollingBackend() { Stop(); }

void PollingBackend::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void PollingBackend::Stop() {
  if (!running_.exchange(false)) return;
  // Break the in-flight long poll; without this, Stop() blocks for up to
  // a full poll_wait_micros_ of idle waiting.
  plugin_->InterruptPolls();
  if (thread_.joinable()) thread_.join();
}

void PollingBackend::Loop() {
  while (running_) {
    auto proposal = plugin_->PollRequest(poll_wait_micros_);
    if (!proposal) continue;
    auto outcome = compute_(*proposal);
    const util::Status posted =
        plugin_->PostResult(proposal->transaction_id, std::move(outcome));
    if (!posted.ok()) {
      NEES_LOG_WARN("plugins.backend")
          << "late notify dropped: " << posted.ToString();
    }
    ++processed_;
  }
}

// ---------------------------------------------------------------------------
// RemotePollingBackend

namespace {

// One poll+compute+notify cycle against the plugin's RPC surface; returns
// true if work was done. Shared by the threaded RemotePollingBackend and
// the event-driven VirtualPollingBackend.
util::Result<bool> RunPollCycle(net::RpcClient* rpc,
                                const std::string& plugin_endpoint,
                                const PollingBackend::Compute& compute,
                                std::int64_t max_wait_micros) {
  util::ByteWriter poll_writer;
  poll_writer.WriteI64(max_wait_micros);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes response,
      rpc->Call(plugin_endpoint, "mplugin.poll", poll_writer.Take()));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(bool has_work, reader.ReadBool());
  if (!has_work) return false;
  NEES_ASSIGN_OR_RETURN(ntcp::Proposal proposal,
                        ntcp::DecodeProposal(reader));

  auto outcome = compute(proposal);
  util::ByteWriter notify_writer;
  notify_writer.WriteString(proposal.transaction_id);
  notify_writer.WriteBool(outcome.ok());
  if (outcome.ok()) {
    ntcp::EncodeTransactionResult(*outcome, notify_writer);
  } else {
    notify_writer.WriteString(outcome.status().ToString());
  }
  NEES_RETURN_IF_ERROR(
      rpc->Call(plugin_endpoint, "mplugin.notify", notify_writer.Take())
          .status());
  return true;
}

}  // namespace

RemotePollingBackend::RemotePollingBackend(net::RpcClient* rpc,
                                           std::string plugin_endpoint,
                                           Compute compute,
                                           std::int64_t heartbeat_micros)
    : rpc_(rpc),
      plugin_endpoint_(std::move(plugin_endpoint)),
      compute_(std::move(compute)),
      heartbeat_micros_(heartbeat_micros) {}

RemotePollingBackend::~RemotePollingBackend() { Stop(); }

void RemotePollingBackend::BindWakeRpc(net::RpcServer& server) {
  server.RegisterOneWay(
      "mplugin.wake",
      [this](const net::CallContext&, const net::Bytes&) { Wake(); });
}

void RemotePollingBackend::Wake() {
  ++wakes_;
  {
    util::MutexLock lock(mu_);
    wake_pending_ = true;
  }
  wake_cv_.NotifyOne();
}

void RemotePollingBackend::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void RemotePollingBackend::Stop() {
  if (!running_.exchange(false)) return;
  wake_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void RemotePollingBackend::Loop() {
  while (running_) {
    {
      // Park until a wake arrives. The heartbeat bounds how stale we can
      // get if a wake message is dropped by the (lossy) network.
      util::MutexLock lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(heartbeat_micros_);
      while (!wake_pending_ && running_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        wake_cv_.WaitFor(
            mu_, std::chrono::duration_cast<std::chrono::microseconds>(
                     deadline - now)
                     .count());
      }
      wake_pending_ = false;
    }
    if (!running_) break;
    // Drain: one wake may cover several enqueued proposals.
    for (;;) {
      auto worked = PollOnce(/*max_wait_micros=*/0);
      if (!worked.ok()) {
        NEES_LOG_WARN("plugins.backend")
            << "remote poll cycle failed: " << worked.status().ToString();
        break;
      }
      if (!*worked) break;
      ++processed_;
    }
  }
}

util::Result<bool> RemotePollingBackend::PollOnce(
    std::int64_t max_wait_micros) {
  return RunPollCycle(rpc_, plugin_endpoint_, compute_, max_wait_micros);
}

// ---------------------------------------------------------------------------
// VirtualPollingBackend

VirtualPollingBackend::VirtualPollingBackend(net::Network* network,
                                             net::RpcClient* rpc,
                                             std::string plugin_endpoint,
                                             Compute compute,
                                             std::int64_t heartbeat_micros)
    : network_(network),
      rpc_(rpc),
      plugin_endpoint_(std::move(plugin_endpoint)),
      compute_(std::move(compute)),
      heartbeat_micros_(heartbeat_micros) {}

VirtualPollingBackend::~VirtualPollingBackend() { Stop(); }

void VirtualPollingBackend::BindWakeRpc(net::RpcServer& server) {
  std::shared_ptr<bool> running = running_;
  server.RegisterOneWay(
      "mplugin.wake",
      [this, running](const net::CallContext&, const net::Bytes&) {
        if (!*running) return;
        ++wakes_;
        // Activity: the next fallback firing should come promptly again.
        heartbeat_interval_ = heartbeat_micros_;
        Drain();
      });
}

void VirtualPollingBackend::Start() {
  if (*running_) return;
  *running_ = true;
  heartbeat_interval_ = heartbeat_micros_;
  ArmHeartbeat();
}

void VirtualPollingBackend::Stop() { *running_ = false; }

void VirtualPollingBackend::ArmHeartbeat() {
  std::shared_ptr<bool> running = running_;
  network_->ScheduleAfter(heartbeat_interval_, [this, running] {
    if (!*running) return;
    ++heartbeats_;
    const std::uint64_t before = processed_;
    Drain();
    // Adaptive backoff: idle firings double the interval up to 8x base;
    // any firing that found work snaps back to the base interval.
    if (processed_ == before) {
      heartbeat_interval_ =
          std::min<std::int64_t>(heartbeat_interval_ * 2,
                                 heartbeat_micros_ * 8);
    } else {
      heartbeat_interval_ = heartbeat_micros_;
    }
    ArmHeartbeat();
  });
}

void VirtualPollingBackend::Drain() {
  if (draining_) {
    // A wake delivered while a poll cycle's RPCs were pumping the loop:
    // remember it so the outer drain re-checks the queue instead of
    // dropping the signal on the floor.
    rewake_ = true;
    return;
  }
  draining_ = true;
  do {
    rewake_ = false;
    for (;;) {
      auto worked = RunPollCycle(rpc_, plugin_endpoint_, compute_, 0);
      if (!worked.ok()) {
        NEES_LOG_WARN("plugins.backend")
            << "virtual poll cycle failed: " << worked.status().ToString();
        break;
      }
      if (!*worked) break;
      ++processed_;
    }
  } while (rewake_ && *running_);
  draining_ = false;
}

PollingBackend::Compute MakeSimulationCompute(
    std::shared_ptr<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>
        models) {
  return [models](const ntcp::Proposal& proposal)
             -> util::Result<ntcp::TransactionResult> {
    ntcp::TransactionResult result;
    for (const auto& action : proposal.actions) {
      auto it = models->find(action.control_point);
      if (it == models->end()) {
        return util::NotFound("unknown control point: " +
                              action.control_point);
      }
      NEES_ASSIGN_OR_RETURN(structural::Vector force,
                            it->second->Restore(action.target_displacement));
      ntcp::ControlPointResult cp;
      cp.control_point = action.control_point;
      cp.measured_displacement = action.target_displacement;
      cp.measured_force = force;
      result.results.push_back(std::move(cp));
    }
    return result;
  };
}

}  // namespace nees::plugins
