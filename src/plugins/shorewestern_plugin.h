// ShoreWesternPlugin: the UIUC configuration of Fig. 9 — "a plugin that
// communicated, via a simple TCP/IP protocol, with a Shore-Western control
// system, which in turn controlled the UIUC servo-hydraulics". One control
// point (the column top), displacement-controlled.
#pragma once

#include <string>

#include "ntcp/plugin.h"
#include "testbed/shorewestern.h"

namespace nees::plugins {

class ShoreWesternPlugin final : public ntcp::ControlPlugin {
 public:
  struct Config {
    std::string control_point = "column-top";
    double max_abs_displacement_m = 0.15;
  };

  ShoreWesternPlugin(Config config, net::RpcClient* rpc,
                     std::string controller_endpoint);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "shore-western"; }

 private:
  Config config_;
  testbed::ShoreWesternClient controller_;
};

}  // namespace nees::plugins
