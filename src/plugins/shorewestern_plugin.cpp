#include "plugins/shorewestern_plugin.h"

#include <cmath>

#include "obs/trace.h"
#include "util/strings.h"

namespace nees::plugins {

ShoreWesternPlugin::ShoreWesternPlugin(Config config, net::RpcClient* rpc,
                                       std::string controller_endpoint)
    : config_(config), controller_(rpc, std::move(controller_endpoint)) {}

util::Status ShoreWesternPlugin::Validate(const ntcp::Proposal& proposal) {
  if (proposal.actions.size() != 1 ||
      proposal.actions[0].control_point != config_.control_point) {
    return util::InvalidArgument("this site controls only '" +
                                 config_.control_point + "'");
  }
  const auto& action = proposal.actions[0];
  if (action.target_displacement.size() != 1) {
    return util::InvalidArgument("control point has exactly one DOF");
  }
  if (std::fabs(action.target_displacement[0]) >
      config_.max_abs_displacement_m) {
    return util::PolicyViolation("target exceeds site displacement limit");
  }
  if (!action.target_force.empty()) {
    return util::PolicyViolation("site is displacement-controlled");
  }
  return util::OkStatus();
}

util::Result<ntcp::TransactionResult> ShoreWesternPlugin::Execute(
    const ntcp::Proposal& proposal) {
  const double target = proposal.actions[0].target_displacement[0];
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan("actuator.move", "settle");
    span.AddTag("target", util::Format("%.6g", target));
  }
  NEES_ASSIGN_OR_RETURN(auto move, controller_.Move(target));
  if (tracer_ != nullptr) {
    // The settle time is modeled by the rig, not slept; charge it to the
    // span so the trace shows where a real hybrid step's seconds go.
    span.AddModeledMicros(
        static_cast<std::int64_t>(move.motion_seconds * 1e6));
    tracer_->metrics().Observe("actuator.settle_micros",
                               move.motion_seconds * 1e6);
  }
  ntcp::TransactionResult result;
  ntcp::ControlPointResult cp;
  cp.control_point = config_.control_point;
  cp.measured_displacement = {move.position_m};
  cp.measured_force = {move.force_n};
  result.results.push_back(std::move(cp));
  return result;
}

}  // namespace nees::plugins
