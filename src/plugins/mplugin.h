// The "Mplugin" (Fig. 9, §3.1): instead of pushing requests to the backend,
// it buffers them and implements a separate service that the backend —
// originally a Matlab process — polls for work. When the backend finishes a
// computation it notifies the plugin, which completes the pending NTCP
// execution. NCSA ran this against a pure simulation; CU ran the same
// plugin code against Matlab xPC driving real servo-hydraulics.
//
// Backend-facing surface, both in-process and over RPC:
//   mplugin.poll    {max_wait} -> {has_work, Proposal}
//   mplugin.notify  {txn_id, ok, TransactionResult|error} -> {}
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "net/rpc.h"
#include "ntcp/plugin.h"
#include "structural/substructure.h"

namespace nees::plugins {

struct MPluginConfig {
  /// How long Execute() waits for the backend to poll + notify.
  std::int64_t execute_timeout_micros = 10'000'000;
  double max_abs_displacement_m = 1.0;
};

class MPlugin final : public ntcp::ControlPlugin {
 public:
  using Config = MPluginConfig;

  explicit MPlugin(Config config = Config());
  ~MPlugin() override;

  // --- ControlPlugin ---------------------------------------------------------
  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "mplugin"; }

  // --- backend-facing service -------------------------------------------------
  /// Blocks up to `max_wait_micros` for buffered work.
  std::optional<ntcp::Proposal> PollRequest(std::int64_t max_wait_micros);
  /// Completes a pending execution with a result or an error.
  util::Status PostResult(const std::string& transaction_id,
                          util::Result<ntcp::TransactionResult> outcome);

  /// Binds mplugin.poll / mplugin.notify on an RpcServer for remote backends.
  void BindBackendRpc(net::RpcServer& server);

  std::uint64_t polls() const;
  std::size_t buffered() const;

 private:
  struct Pending {
    bool done = false;
    util::Status status;
    ntcp::TransactionResult result;
    // Tracing context carried across the Execute -> poll -> notify hop.
    std::uint64_t parent_span_id = 0;
    std::int64_t enqueued_micros = 0;
    std::uint64_t compute_span_id = 0;
  };

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // backend waits for work
  std::condition_variable done_cv_;    // Execute waits for completion
  std::deque<ntcp::Proposal> queue_;
  std::map<std::string, std::shared_ptr<Pending>> pending_;
  std::uint64_t polls_ = 0;
  bool shutting_down_ = false;
};

/// In-process "Matlab" backend: a thread that polls the MPlugin, runs a
/// compute function on each proposal, and notifies the result — the NCSA
/// deployment in miniature.
class PollingBackend {
 public:
  using Compute = std::function<util::Result<ntcp::TransactionResult>(
      const ntcp::Proposal&)>;

  PollingBackend(MPlugin* plugin, Compute compute);
  ~PollingBackend();

  void Start();
  void Stop();

  std::uint64_t processed() const { return processed_; }

 private:
  void Loop();

  MPlugin* plugin_;
  Compute compute_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> processed_{0};
};

/// Remote backend speaking the RPC surface — used to demonstrate that the
/// poll service works across the (simulated) network like Matlab at NCSA.
class RemotePollingBackend {
 public:
  using Compute = PollingBackend::Compute;

  RemotePollingBackend(net::RpcClient* rpc, std::string plugin_endpoint,
                       Compute compute);

  /// Performs one poll+compute+notify cycle; returns true if work was done.
  util::Result<bool> PollOnce(std::int64_t max_wait_micros = 0);

 private:
  net::RpcClient* rpc_;
  std::string plugin_endpoint_;
  Compute compute_;
};

/// Builds the standard "Matlab simulation" compute function from a set of
/// control-point substructure models.
PollingBackend::Compute MakeSimulationCompute(
    std::shared_ptr<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>
        models);

}  // namespace nees::plugins
