// The "Mplugin" (Fig. 9, §3.1): instead of pushing requests to the backend,
// it buffers them and implements a separate service that the backend —
// originally a Matlab process — polls for work. When the backend finishes a
// computation it notifies the plugin, which completes the pending NTCP
// execution. NCSA ran this against a pure simulation; CU ran the same
// plugin code against Matlab xPC driving real servo-hydraulics.
//
// Backend-facing surface, both in-process and over RPC:
//   mplugin.poll    {max_wait} -> {has_work, Proposal}
//   mplugin.notify  {txn_id, ok, TransactionResult|error} -> {}
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "net/rpc.h"
#include "util/mutex.h"
#include "ntcp/plugin.h"
#include "structural/substructure.h"

namespace nees::plugins {

struct MPluginConfig {
  /// How long Execute() waits for the backend to poll + notify.
  std::int64_t execute_timeout_micros = 10'000'000;
  double max_abs_displacement_m = 1.0;
};

class MPlugin final : public ntcp::ControlPlugin {
 public:
  using Config = MPluginConfig;

  explicit MPlugin(Config config = Config());
  ~MPlugin() override;

  /// Kills the plugin: in-flight Execute() waits unwind as timeouts and
  /// every later poll/execute returns immediately. Idempotent; the
  /// destructor calls it. Crash simulation calls it on the dead
  /// incarnation so zombie stack frames (an Execute that was on the stack
  /// when the crash fired) fail out instead of waiting on a backend that
  /// will never answer.
  void Shutdown();

  // --- ControlPlugin ---------------------------------------------------------
  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "mplugin"; }

  // --- backend-facing service -------------------------------------------------
  /// Blocks up to `max_wait_micros` for buffered work (a long poll: enqueued
  /// work or InterruptPolls() wakes it early, so large waits cost nothing in
  /// latency). Returns nullopt when the wait lapses with an empty queue.
  std::optional<ntcp::Proposal> PollRequest(std::int64_t max_wait_micros);
  /// Completes a pending execution with a result or an error.
  util::Status PostResult(const std::string& transaction_id,
                          util::Result<ntcp::TransactionResult> outcome);

  /// Hook invoked (outside the plugin lock) whenever work is enqueued.
  /// Lets a *remote* backend be woken push-style — e.g. a one-way
  /// "mplugin.wake" RPC — instead of discovering work on its next poll.
  /// In-process backends don't need it; PollRequest wakes on its own.
  void SetWorkNotifier(std::function<void()> notifier);

  /// Wakes every in-flight PollRequest so it re-checks the queue and
  /// returns. Used by backends to make Stop() prompt under long polls.
  void InterruptPolls();

  /// Binds mplugin.poll / mplugin.notify on an RpcServer for remote backends.
  void BindBackendRpc(net::RpcServer& server);

  /// DeliveryMode::kVirtual: blocking waits (Execute's completion wait and
  /// PollRequest long polls) pump `network`'s event loop instead of parking
  /// on condition variables, keeping the whole propose/poll/notify exchange
  /// single-threaded and seed-deterministic. Attach before the run starts.
  void AttachVirtualNetwork(net::Network* network);

  std::uint64_t polls() const;
  std::size_t buffered() const;

 private:
  struct Pending {
    bool done = false;
    util::Status status;
    ntcp::TransactionResult result;
    // Each waiter gets its own signal so completing one transaction never
    // wakes the others (several Executes can be pending at once under the
    // coordinator's async fan-out).
    util::CondVar cv;
    // Tracing context carried across the Execute -> poll -> notify hop.
    std::uint64_t parent_span_id = 0;
    std::int64_t enqueued_micros = 0;
    std::uint64_t compute_span_id = 0;
  };

  Config config_;
  // Set once via AttachVirtualNetwork before the run starts; the pump loops
  // read it with mu_ released, so it is deliberately not guarded.
  net::Network* virtual_net_ = nullptr;  // set iff DeliveryMode::kVirtual
  mutable util::Mutex mu_{"plugins.MPlugin"};
  util::CondVar work_cv_;  // backend waits for work
  std::deque<ntcp::Proposal> queue_ NEES_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Pending>> pending_
      NEES_GUARDED_BY(mu_);
  std::function<void()> work_notifier_ NEES_GUARDED_BY(mu_);
  std::uint64_t polls_ NEES_GUARDED_BY(mu_) = 0;
  // Bumped by InterruptPolls().
  std::uint64_t poll_epoch_ NEES_GUARDED_BY(mu_) = 0;
  bool shutting_down_ NEES_GUARDED_BY(mu_) = false;
};

/// In-process "Matlab" backend: a thread that long-polls the MPlugin, runs
/// a compute function on each proposal, and notifies the result — the NCSA
/// deployment in miniature. Each poll parks on the plugin's work signal for
/// up to `poll_wait_micros`, so an idle backend wakes only when work
/// arrives (or on Stop()) instead of spinning at a fixed interval.
class PollingBackend {
 public:
  using Compute = std::function<util::Result<ntcp::TransactionResult>(
      const ntcp::Proposal&)>;

  PollingBackend(MPlugin* plugin, Compute compute,
                 std::int64_t poll_wait_micros = 1'000'000);
  ~PollingBackend();

  void Start();
  void Stop();

  std::uint64_t processed() const { return processed_; }

 private:
  void Loop();

  MPlugin* plugin_;
  Compute compute_;
  std::int64_t poll_wait_micros_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> processed_{0};
};

/// Remote backend speaking the RPC surface — used to demonstrate that the
/// poll service works across the (simulated) network like Matlab at NCSA.
///
/// Two modes:
///   * PollOnce() — caller-driven single poll cycle (tests, custom loops);
///   * Start()/Stop() — a worker thread that sits idle until Wake() (bound
///     to a one-way "mplugin.wake" RPC via BindWakeRpc and driven by the
///     plugin's work notifier), then drains the queue. A heartbeat re-polls
///     every `heartbeat_micros` in case a wake message was lost, so the
///     notifier is an optimization, never a correctness requirement.
///
/// Wake() only sets a flag — it never blocks or issues RPCs — so it is safe
/// to invoke from the network's single delivery thread in kScheduled mode.
class RemotePollingBackend {
 public:
  using Compute = PollingBackend::Compute;

  RemotePollingBackend(net::RpcClient* rpc, std::string plugin_endpoint,
                       Compute compute,
                       std::int64_t heartbeat_micros = 250'000);
  ~RemotePollingBackend();

  /// Performs one poll+compute+notify cycle; returns true if work was done.
  util::Result<bool> PollOnce(std::int64_t max_wait_micros = 0);

  /// Registers the one-way "mplugin.wake" method on `server` (the backend's
  /// own control endpoint, distinct from its RpcClient endpoint).
  void BindWakeRpc(net::RpcServer& server);

  /// Signals the worker thread that work is (probably) available.
  void Wake();

  void Start();
  void Stop();

  std::uint64_t processed() const { return processed_; }
  std::uint64_t wakes() const { return wakes_; }

 private:
  void Loop();

  net::RpcClient* rpc_;
  std::string plugin_endpoint_;
  Compute compute_;
  std::int64_t heartbeat_micros_;
  util::Mutex mu_{"plugins.RemoteBackend"};
  util::CondVar wake_cv_;
  bool wake_pending_ NEES_GUARDED_BY(mu_) = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> wakes_{0};
};

/// Event-driven backend for DeliveryMode::kVirtual: no thread at all. A
/// one-way "mplugin.wake" delivery drains the plugin's queue inline on the
/// network's event loop, and a self-rescheduling heartbeat timer re-polls
/// every `heartbeat_micros` of *virtual* time in case a wake was lost — the
/// same wake-or-heartbeat contract as RemotePollingBackend ("a lost wake
/// only delays, never stalls"), replayed deterministically per seed. Each
/// poll/compute/notify cycle issues blocking RPCs whose waits pump the
/// event loop recursively.
///
/// The heartbeat backs off adaptively: a firing that finds no work doubles
/// the interval (capped at 8x the base), and any wake or productive firing
/// snaps it back to the base. Wakes drive all steady-state progress, so the
/// fallback re-poll can afford to get lazy on an idle backend — this cuts
/// the empty poll RPC pairs (~92% of all messages in a fuzz run) by ~3x
/// without weakening the contract: the first firing after activity is
/// always at the base interval, so a wake lost during normal operation
/// still recovers within one base heartbeat.
class VirtualPollingBackend {
 public:
  using Compute = PollingBackend::Compute;

  VirtualPollingBackend(net::Network* network, net::RpcClient* rpc,
                        std::string plugin_endpoint, Compute compute,
                        std::int64_t heartbeat_micros = 250'000);
  ~VirtualPollingBackend();

  /// Registers the one-way "mplugin.wake" method on `server` (the backend's
  /// control endpoint; the plugin's work notifier targets it).
  void BindWakeRpc(net::RpcServer& server);

  /// Arms the heartbeat chain. Call once the endpoints exist.
  void Start();
  /// Disarms: queued heartbeat/wake firings become no-ops and do not
  /// re-arm, so RunUntilQuiescent() can drain to empty after a run.
  void Stop();

  std::uint64_t processed() const { return processed_; }
  std::uint64_t wakes() const { return wakes_; }
  std::uint64_t heartbeats() const { return heartbeats_; }

 private:
  void Drain();
  void ArmHeartbeat();

  net::Network* network_;
  net::RpcClient* rpc_;
  std::string plugin_endpoint_;
  Compute compute_;
  std::int64_t heartbeat_micros_;
  // Captured by armed timers and the wake binding; cleared on Stop() so a
  // late firing is a safe no-op even after this object is torn down.
  std::shared_ptr<bool> running_ = std::make_shared<bool>(false);
  bool draining_ = false;  // re-entrancy guard; nested wakes set rewake_
  bool rewake_ = false;
  std::int64_t heartbeat_interval_ = 0;  // current adaptive interval
  std::uint64_t processed_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t heartbeats_ = 0;
};

/// Builds the standard "Matlab simulation" compute function from a set of
/// control-point substructure models.
PollingBackend::Compute MakeSimulationCompute(
    std::shared_ptr<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>
        models);

}  // namespace nees::plugins
