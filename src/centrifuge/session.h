// A self-contained teleoperated centrifuge session: the E12 soil-
// characterization/pile-installation campaign packaged as a farm tenant.
// One NTCP server fronts the robot arm + bender array; a scripted operator
// drives the propose/execute ladder. Every endpoint is namespace-qualified
// (grid/tenant.h), so hundreds of sessions can share one network — the farm
// scheduler runs these beside MOST and Mini-MOST tenants to exercise the
// "wide range of devices" claim under multi-tenancy.
#pragma once

#include <memory>
#include <string>

#include "centrifuge/plugin.h"
#include "grid/container.h"
#include "grid/registry.h"
#include "grid/tenant.h"
#include "ntcp/server.h"
#include "obs/trace.h"

namespace nees::ntcp {
class NtcpClient;
}  // namespace nees::ntcp

namespace nees::centrifuge {

struct SessionOptions {
  /// Piles to install after the initial soil characterization pass; each
  /// pile adds a grip/move/drive/re-characterize cycle (7 transactions).
  std::size_t piles = 2;
  std::uint64_t seed = 77;
  double water_table_fraction = 0.3;

  /// Experiment namespace (grid/tenant.h). Empty keeps the canonical
  /// "ntcp.centrifuge"/"operator.centrifuge" names.
  std::string experiment_ns;

  /// Shared farm fabric (optional, must outlive the session).
  grid::ServiceContainer* shared_container = nullptr;
  grid::RegistryService* shared_registry = nullptr;
  std::int64_t registry_lease_micros = 0;

  /// Optional observability; must outlive the session. Left null, a
  /// farm-installed network tracer is preserved untouched.
  obs::Tracer* tracer = nullptr;
};

struct SessionReport {
  bool completed = false;
  std::size_t piles_installed = 0;
  std::size_t transactions = 0;
  /// FNV-1a digest over every measured control point (name + displacement +
  /// force vectors) — the determinism "history" for a shape with no
  /// integrator. Same seed + same fault-free network => same digest.
  std::uint64_t measured_digest = 0;
};

class TeleoperationSession {
 public:
  // Canonical *base* names; deployed names are namespace-qualified.
  static constexpr const char* kNtcp = "ntcp.centrifuge";
  static constexpr const char* kOperator = "operator.centrifuge";

  TeleoperationSession(net::Network* network, util::Clock* clock,
                       SessionOptions options);
  ~TeleoperationSession();

  /// Assembles soil/arm/benders and starts the NTCP server; publishes to
  /// the shared container and registers in the shared registry when set.
  util::Status Start();
  /// Stops the server and reaps this tenant from the shared fabric.
  void Stop();

  /// Runs the scripted campaign: characterize (bender Vs + cone
  /// penetration), then `piles` grip/move/drive/re-characterize cycles.
  util::Result<SessionReport> Run();

  const SessionOptions& options() const { return options_; }
  ntcp::NtcpServerStats ServerStats() const;

  /// The deployed (namespace-qualified) name for a canonical base name.
  std::string Qualified(std::string_view base) const {
    return grid::QualifiedName(options_.experiment_ns, base);
  }

 private:
  bool RunTransaction(ntcp::NtcpClient& client,
                      std::vector<ntcp::ControlPointRequest> actions,
                      SessionReport& report, std::string& failure);

  net::Network* network_;
  util::Clock* clock_;
  SessionOptions options_;

  std::shared_ptr<SoilModel> soil_;
  std::shared_ptr<RobotArm> arm_;
  std::shared_ptr<BenderElementArray> benders_;
  std::unique_ptr<ntcp::NtcpServer> server_;
  std::unique_ptr<net::RpcClient> operator_rpc_;
  bool started_ = false;
};

}  // namespace nees::centrifuge
