#include "centrifuge/session.h"

#include "ntcp/client.h"
#include "util/strings.h"

namespace nees::centrifuge {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void FnvBytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void FnvString(std::uint64_t& h, std::string_view s) {
  const std::uint64_t size = s.size();
  FnvBytes(h, &size, sizeof(size));
  FnvBytes(h, s.data(), s.size());
}

void FnvDouble(std::uint64_t& h, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  FnvBytes(h, &bits, sizeof(bits));
}

}  // namespace

TeleoperationSession::TeleoperationSession(net::Network* network,
                                           util::Clock* clock,
                                           SessionOptions options)
    : network_(network), clock_(clock), options_(std::move(options)) {}

TeleoperationSession::~TeleoperationSession() { Stop(); }

util::Status TeleoperationSession::Start() {
  if (started_) return util::OkStatus();
  if (options_.tracer != nullptr) network_->set_tracer(options_.tracer);

  // The E12 rig: soil container, robot arm, embedded bender elements. All
  // sensor noise is seeded, so a session replays bit-identically.
  soil_ = std::make_shared<SoilModel>(
      SoilModel::DefaultProfile(options_.water_table_fraction));
  arm_ = std::make_shared<RobotArm>(RobotArm::Params{}, soil_.get(),
                                    options_.seed ^ 0x0a21);
  benders_ = std::make_shared<BenderElementArray>(soil_.get(),
                                                  options_.seed ^ 0x0be1);
  benders_->AddElement("be1", {0.10, 0.10, -0.05});
  benders_->AddElement("be2", {0.35, 0.10, -0.05});

  server_ = std::make_unique<ntcp::NtcpServer>(
      network_, Qualified(kNtcp),
      std::make_unique<RobotArmPlugin>(arm_, benders_), clock_);
  NEES_RETURN_IF_ERROR(server_->Start());
  server_->set_tracer(options_.tracer);

  if (options_.shared_container != nullptr) {
    NEES_RETURN_IF_ERROR(server_->PublishTo(*options_.shared_container));
  }
  if (options_.shared_registry != nullptr) {
    options_.shared_registry->Register(
        {Qualified(kNtcp), server_->endpoint(), "ntcp", "Centrifuge", 0},
        options_.registry_lease_micros);
  }

  operator_rpc_ =
      std::make_unique<net::RpcClient>(network_, Qualified(kOperator));
  started_ = true;
  return util::OkStatus();
}

void TeleoperationSession::Stop() {
  if (!started_) return;
  if (!options_.experiment_ns.empty()) {
    if (options_.shared_container != nullptr) {
      (void)options_.shared_container->DestroyTenant(options_.experiment_ns);
    }
    if (options_.shared_registry != nullptr) {
      (void)options_.shared_registry->UnregisterTenant(options_.experiment_ns);
    }
  }
  if (server_) server_->Stop();
  started_ = false;
}

bool TeleoperationSession::RunTransaction(
    ntcp::NtcpClient& client, std::vector<ntcp::ControlPointRequest> actions,
    SessionReport& report, std::string& failure) {
  const int step = static_cast<int>(report.transactions);
  ++report.transactions;
  // Same outer ladder as the MOST coordinator's step re-drive: each round
  // is a fresh transaction id (the arm and soil models are idempotent for
  // these actions), and the digest only folds in the round that returned.
  // Ids carry the namespace so concurrent tenants stay lint-distinct.
  const std::string id_prefix = Qualified("cam");
  for (int round = 0; round < 3; ++round) {
    ntcp::Proposal proposal;
    proposal.transaction_id =
        round == 0 ? util::Format("%s-%d", id_prefix.c_str(), step)
                   : util::Format("%s-%d-r%d", id_prefix.c_str(), step, round);
    proposal.step_index = step;
    proposal.actions = actions;
    proposal.timeout_micros = 20'000'000;
    const util::Status accepted = client.Propose(proposal);
    if (!accepted.ok()) {
      failure = util::Format("propose %s failed: %s",
                             proposal.transaction_id.c_str(),
                             accepted.ToString().c_str());
      continue;
    }
    const util::Result<ntcp::TransactionResult> result =
        client.Execute(proposal.transaction_id);
    if (!result.ok()) {
      failure = util::Format("execute %s failed: %s",
                             proposal.transaction_id.c_str(),
                             result.status().ToString().c_str());
      continue;
    }
    for (const auto& point : result->results) {
      FnvString(report.measured_digest, point.control_point);
      for (const double v : point.measured_displacement) {
        FnvDouble(report.measured_digest, v);
      }
      for (const double v : point.measured_force) {
        FnvDouble(report.measured_digest, v);
      }
    }
    return true;
  }
  return false;
}

util::Result<SessionReport> TeleoperationSession::Run() {
  NEES_RETURN_IF_ERROR(Start());

  net::RpcClient* rpc = operator_rpc_.get();
  ntcp::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.rpc_timeout_micros = 500'000;
  retry.initial_backoff_micros = 50'000;
  retry.max_backoff_micros = 1'000'000;
  const std::string server_endpoint =
      options_.shared_registry != nullptr
          ? options_.shared_registry->LookupEntry(Qualified(kNtcp))
                .value_or(grid::Registration{"", Qualified(kNtcp), "", "", 0})
                .endpoint
          : Qualified(kNtcp);
  ntcp::NtcpClient client(rpc, server_endpoint, retry, clock_);
  client.set_tracer(options_.tracer);

  SessionReport report;
  report.measured_digest = kFnvOffset;
  std::string failure;

  // One soil-characterization pass: shear-wave velocity between the bender
  // pair, then a cone penetration at -0.25m.
  auto characterize = [&]() -> bool {
    return RunTransaction(client, {{"bender:be1:be2", {}, {}}}, report,
                          failure) &&
           RunTransaction(client, {{"tool:cone-penetrometer", {}, {}}},
                          report, failure) &&
           RunTransaction(client, {{"penetrate", {-0.25}, {}}}, report,
                          failure);
  };

  report.completed = characterize();
  if (report.completed) {
    for (std::size_t pile = 1; pile <= options_.piles; ++pile) {
      // Pile grid stays inside the arm's 0.6m x 0.4m workspace for up to
      // 12 piles.
      const double x = 0.08 + 0.04 * static_cast<double>(pile);
      if (!RunTransaction(client, {{"tool:gripper", {}, {}}}, report,
                          failure) ||
          !RunTransaction(client, {{"arm", {x, 0.12, 0.0}, {}}}, report,
                          failure) ||
          !RunTransaction(client, {{"pile", {-0.22}, {}}}, report, failure) ||
          !characterize()) {
        report.completed = false;
        break;
      }
      ++report.piles_installed;
    }
  }
  if (!report.completed) {
    return util::Unavailable("centrifuge session incomplete: " + failure);
  }
  return report;
}

ntcp::NtcpServerStats TeleoperationSession::ServerStats() const {
  return server_ ? server_->stats() : ntcp::NtcpServerStats{};
}

}  // namespace nees::centrifuge
