#include "centrifuge/plugin.h"

#include "util/strings.h"

namespace nees::centrifuge {

RobotArmPlugin::RobotArmPlugin(std::shared_ptr<RobotArm> arm,
                               std::shared_ptr<BenderElementArray> benders)
    : arm_(std::move(arm)), benders_(std::move(benders)) {}

util::Status RobotArmPlugin::ValidateAction(
    const ntcp::ControlPointRequest& action) const {
  const std::string& cp = action.control_point;
  if (cp == "arm") {
    if (action.target_displacement.size() != 3) {
      return util::InvalidArgument("'arm' takes {x, y, z}");
    }
    return util::OkStatus();
  }
  if (util::StartsWith(cp, "tool:")) {
    if (!ToolFromName(cp.substr(5))) {
      return util::InvalidArgument("unknown tool: " + cp.substr(5));
    }
    return util::OkStatus();
  }
  if (cp == "penetrate" || cp == "probe" || cp == "pile") {
    if (action.target_displacement.size() != 1 ||
        action.target_displacement[0] >= 0) {
      return util::InvalidArgument("'" + cp + "' takes a negative depth");
    }
    return util::OkStatus();
  }
  if (util::StartsWith(cp, "bender:")) {
    const auto parts = util::Split(cp, ':');
    if (parts.size() != 3) {
      return util::InvalidArgument("bender control point is bender:<s>:<r>");
    }
    return util::OkStatus();
  }
  return util::NotFound("unknown control point: " + cp);
}

util::Status RobotArmPlugin::Validate(const ntcp::Proposal& proposal) {
  if (proposal.actions.empty()) {
    return util::InvalidArgument("proposal has no actions");
  }
  for (const auto& action : proposal.actions) {
    NEES_RETURN_IF_ERROR(ValidateAction(action));
  }
  return util::OkStatus();
}

util::Result<ntcp::ControlPointResult> RobotArmPlugin::ExecuteAction(
    const ntcp::ControlPointRequest& action) {
  const std::string& cp = action.control_point;
  ntcp::ControlPointResult result;
  result.control_point = cp;

  if (cp == "arm") {
    ArmPosition target{action.target_displacement[0],
                       action.target_displacement[1],
                       action.target_displacement[2]};
    NEES_ASSIGN_OR_RETURN(ArmPosition achieved, arm_->MoveTo(target));
    result.measured_displacement = {achieved.x, achieved.y, achieved.z};
    return result;
  }
  if (util::StartsWith(cp, "tool:")) {
    NEES_RETURN_IF_ERROR(arm_->ExchangeTool(*ToolFromName(cp.substr(5))));
    return result;
  }
  if (cp == "penetrate") {
    NEES_ASSIGN_OR_RETURN(
        auto profile, arm_->PenetrateTo(action.target_displacement[0], 10));
    result.measured_displacement = {profile.back().first};
    result.measured_force = {profile.back().second};  // tip resistance
    return result;
  }
  if (cp == "probe") {
    NEES_ASSIGN_OR_RETURN(double density,
                          arm_->ProbeDensity(action.target_displacement[0]));
    result.measured_displacement = {action.target_displacement[0]};
    result.measured_force = {density};
    return result;
  }
  if (cp == "pile") {
    NEES_RETURN_IF_ERROR(arm_->InstallPile(action.target_displacement[0]));
    result.measured_force = {static_cast<double>(arm_->piles_installed())};
    return result;
  }
  if (util::StartsWith(cp, "bender:")) {
    const auto parts = util::Split(cp, ':');
    NEES_ASSIGN_OR_RETURN(double velocity,
                          benders_->MeasureVelocity(parts[1], parts[2]));
    result.measured_force = {velocity};
    return result;
  }
  return util::NotFound("unknown control point: " + cp);
}

util::Result<ntcp::TransactionResult> RobotArmPlugin::Execute(
    const ntcp::Proposal& proposal) {
  ntcp::TransactionResult result;
  for (const auto& action : proposal.actions) {
    NEES_ASSIGN_OR_RETURN(ntcp::ControlPointResult cp_result,
                          ExecuteAction(action));
    result.results.push_back(std::move(cp_result));
  }
  return result;
}

}  // namespace nees::centrifuge
