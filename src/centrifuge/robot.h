// UC Davis centrifuge experiment substrate (§5): "remote operation of a
// robot arm that will be attached to their centrifuge and of piezo-electric
// bender element sources and receivers embedded within the centrifuge
// model. The robot arm has exchangeable tools: a stereo video camera tool
// for telepresence, an ultrasound tool for imaging, a cone penetrometer, a
// needle probe for high resolution imaging, and a gripper tool for
// installation of piles and manipulation/loading."
//
// This module models the devices; the NTCP-facing plugin lives in
// centrifuge/plugin.h. It demonstrates the paper's conclusion that "NTCP
// and NSDS can be used to control and observe a wide range of devices" —
// nothing here is a servo-hydraulic structural rig.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "util/result.h"
#include "util/rng.h"

namespace nees::centrifuge {

/// The exchangeable end-effector tools (§5 list, verbatim).
enum class Tool : std::uint8_t {
  kNone = 0,
  kStereoCamera = 1,
  kUltrasound = 2,
  kConePenetrometer = 3,
  kNeedleProbe = 4,
  kGripper = 5,
};

std::string_view ToolName(Tool tool);
std::optional<Tool> ToolFromName(std::string_view name);

/// Cartesian position over the soil model container, meters (model scale).
struct ArmPosition {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;  // depth below the soil surface is negative z

  bool operator==(const ArmPosition&) const = default;
};

/// Layered soil model inside the centrifuge container. Properties vary by
/// depth; penetration and probing read them out, and ground improvement
/// (e.g. pile installation) densifies layers.
class SoilModel {
 public:
  struct Layer {
    double top_z = 0.0;       // upper boundary (<= 0)
    double bottom_z = -0.1;   // lower boundary
    double shear_wave_velocity = 150.0;  // m/s (prototype scale)
    double cone_resistance = 2e6;        // Pa
    double density = 1600.0;             // kg/m^3
  };

  /// Builds a default 3-layer profile (loose over medium over dense sand).
  static SoilModel DefaultProfile(double container_depth_m = 0.3);

  explicit SoilModel(std::vector<Layer> layers);

  const Layer* LayerAt(double z) const;
  double container_depth() const { return container_depth_; }

  /// Shear-wave travel time between two embedded points (straight ray,
  /// piecewise-constant velocity by layer).
  util::Result<double> TravelTimeSeconds(const ArmPosition& source,
                                         const ArmPosition& receiver) const;

  /// Densifies every layer intersecting [z_low, z_high]: pile installation
  /// / ground improvement raises velocity, resistance, and density.
  void Densify(double z_low, double z_high, double factor);

  std::size_t layer_count() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return layers_[i]; }

 private:
  std::vector<Layer> layers_;
  double container_depth_;
};

/// The centrifuge-mounted robot arm. Moves are rate-limited; tools must be
/// exchanged at the tool rack (a fixed position) while the centrifuge is
/// spinning slowly; depth operations require the matching tool.
class RobotArm {
 public:
  struct Params {
    double workspace_x = 0.6;       // container plan dimensions, m
    double workspace_y = 0.4;
    double max_depth = 0.3;         // probe depth limit, m
    double travel_speed = 0.05;     // m/s
    double tool_change_seconds = 30.0;
    ArmPosition tool_rack{0.0, 0.0, 0.05};
  };

  RobotArm(Params params, SoilModel* soil, std::uint64_t sensor_seed);

  /// Moves the end effector; returns the achieved position and accumulates
  /// simulated motion time. Fails if the target leaves the workspace or
  /// would plunge a non-probing tool into the soil.
  util::Result<ArmPosition> MoveTo(const ArmPosition& target);

  /// Exchanges the tool (arm auto-returns to the rack).
  util::Status ExchangeTool(Tool tool);
  Tool current_tool() const;
  ArmPosition position() const;
  double elapsed_seconds() const;

  // --- tool operations -----------------------------------------------------
  /// Cone penetrometer: push to depth `z` (negative), returning the
  /// measured resistance profile at `samples` evenly spaced depths.
  util::Result<std::vector<std::pair<double, double>>> PenetrateTo(
      double z, int samples);

  /// Needle probe: high-resolution point measurement of density at the
  /// current (x, y) and given depth.
  util::Result<double> ProbeDensity(double z);

  /// Gripper: install a model pile at the current (x, y), densifying the
  /// soil column it crosses.
  util::Status InstallPile(double tip_z);
  int piles_installed() const;

  /// Stereo camera / ultrasound: a deterministic "image" of the current
  /// view (hashable bytes; changes with pose, tool, and soil state).
  util::Result<std::vector<std::uint8_t>> CaptureImage();

 private:
  Params params_;
  SoilModel* soil_;
  mutable util::Mutex mu_{"centrifuge.RobotArm"};
  ArmPosition position_;
  Tool tool_ = Tool::kNone;
  double elapsed_s_ = 0.0;
  int piles_ = 0;
  util::Rng noise_;
};

/// A source/receiver pair of piezo-electric bender elements embedded in the
/// model; firing the source measures the shear-wave arrival at the
/// receiver, the standard way to track soil stiffness during shaking or
/// ground improvement (§5).
class BenderElementArray {
 public:
  BenderElementArray(SoilModel* soil, std::uint64_t seed);

  void AddElement(const std::string& name, const ArmPosition& position);
  std::vector<std::string> ElementNames() const;

  /// Fires `source` and reads the arrival at `receiver`; returns inferred
  /// average shear-wave velocity (m/s) with measurement noise.
  util::Result<double> MeasureVelocity(const std::string& source,
                                       const std::string& receiver);

 private:
  SoilModel* soil_;
  std::map<std::string, ArmPosition> elements_;
  util::Rng noise_;
};

}  // namespace nees::centrifuge
