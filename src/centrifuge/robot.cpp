#include "centrifuge/robot.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"
#include "util/sha256.h"

namespace nees::centrifuge {

std::string_view ToolName(Tool tool) {
  switch (tool) {
    case Tool::kNone: return "none";
    case Tool::kStereoCamera: return "stereo-camera";
    case Tool::kUltrasound: return "ultrasound";
    case Tool::kConePenetrometer: return "cone-penetrometer";
    case Tool::kNeedleProbe: return "needle-probe";
    case Tool::kGripper: return "gripper";
  }
  return "unknown";
}

std::optional<Tool> ToolFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(Tool::kGripper); ++i) {
    if (ToolName(static_cast<Tool>(i)) == name) return static_cast<Tool>(i);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// SoilModel

SoilModel SoilModel::DefaultProfile(double container_depth_m) {
  const double third = container_depth_m / 3.0;
  std::vector<Layer> layers = {
      {0.0, -third, 120.0, 1.5e6, 1500.0},            // loose sand
      {-third, -2 * third, 180.0, 4.0e6, 1650.0},     // medium
      {-2 * third, -container_depth_m, 260.0, 9.0e6, 1800.0},  // dense
  };
  return SoilModel(std::move(layers));
}

SoilModel::SoilModel(std::vector<Layer> layers)
    : layers_(std::move(layers)),
      container_depth_(layers_.empty() ? 0.0 : -layers_.back().bottom_z) {}

const SoilModel::Layer* SoilModel::LayerAt(double z) const {
  for (const Layer& layer : layers_) {
    if (z <= layer.top_z && z >= layer.bottom_z) return &layer;
  }
  return nullptr;
}

util::Result<double> SoilModel::TravelTimeSeconds(
    const ArmPosition& source, const ArmPosition& receiver) const {
  if (!LayerAt(source.z) || !LayerAt(receiver.z)) {
    return util::OutOfRange("bender element outside the soil profile");
  }
  const double dx = receiver.x - source.x;
  const double dy = receiver.y - source.y;
  const double dz = receiver.z - source.z;
  const double length = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (length < 1e-9) return util::InvalidArgument("coincident elements");

  // Integrate 1/v along the straight ray, sampling finely in z.
  const int samples = 200;
  double time = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double fraction = (i + 0.5) / samples;
    const double z = source.z + fraction * dz;
    const Layer* layer = LayerAt(std::clamp(z, -container_depth_, 0.0));
    if (!layer) return util::Internal("ray left the profile");
    time += (length / samples) / layer->shear_wave_velocity;
  }
  return time;
}

void SoilModel::Densify(double z_low, double z_high, double factor) {
  for (Layer& layer : layers_) {
    const bool intersects = layer.top_z >= z_low && layer.bottom_z <= z_high;
    if (intersects) {
      layer.shear_wave_velocity *= factor;
      layer.cone_resistance *= factor * factor;  // resistance grows faster
      layer.density *= 1.0 + (factor - 1.0) * 0.2;
    }
  }
}

// ---------------------------------------------------------------------------
// RobotArm

RobotArm::RobotArm(Params params, SoilModel* soil, std::uint64_t sensor_seed)
    : params_(params), soil_(soil), noise_(sensor_seed) {
  position_ = params_.tool_rack;
}

Tool RobotArm::current_tool() const {
  util::MutexLock lock(mu_);
  return tool_;
}

ArmPosition RobotArm::position() const {
  util::MutexLock lock(mu_);
  return position_;
}

double RobotArm::elapsed_seconds() const {
  util::MutexLock lock(mu_);
  return elapsed_s_;
}

util::Result<ArmPosition> RobotArm::MoveTo(const ArmPosition& target) {
  util::MutexLock lock(mu_);
  if (target.x < 0 || target.x > params_.workspace_x || target.y < 0 ||
      target.y > params_.workspace_y) {
    return util::OutOfRange("target outside the arm workspace");
  }
  if (target.z < -params_.max_depth ||
      target.z > params_.tool_rack.z + 0.05) {
    return util::OutOfRange("target outside the vertical range");
  }
  // Only penetrating tools may go below the soil surface.
  if (target.z < 0 && tool_ != Tool::kConePenetrometer &&
      tool_ != Tool::kNeedleProbe && tool_ != Tool::kGripper) {
    return util::FailedPrecondition(
        std::string("tool '") + std::string(ToolName(tool_)) +
        "' cannot enter the soil");
  }
  const double dx = target.x - position_.x;
  const double dy = target.y - position_.y;
  const double dz = target.z - position_.z;
  elapsed_s_ +=
      std::sqrt(dx * dx + dy * dy + dz * dz) / params_.travel_speed;
  position_ = target;
  return position_;
}

util::Status RobotArm::ExchangeTool(Tool tool) {
  util::MutexLock lock(mu_);
  if (position_.z < 0) {
    return util::FailedPrecondition(
        "retract above the soil surface before a tool change");
  }
  // Auto-travel to the rack, swap, time accounted.
  const double dx = params_.tool_rack.x - position_.x;
  const double dy = params_.tool_rack.y - position_.y;
  const double dz = params_.tool_rack.z - position_.z;
  elapsed_s_ += std::sqrt(dx * dx + dy * dy + dz * dz) / params_.travel_speed;
  elapsed_s_ += params_.tool_change_seconds;
  position_ = params_.tool_rack;
  tool_ = tool;
  return util::OkStatus();
}

util::Result<std::vector<std::pair<double, double>>> RobotArm::PenetrateTo(
    double z, int samples) {
  util::MutexLock lock(mu_);
  if (tool_ != Tool::kConePenetrometer) {
    return util::FailedPrecondition("cone penetrometer not mounted");
  }
  if (z >= 0 || z < -params_.max_depth) {
    return util::OutOfRange("penetration depth out of range");
  }
  std::vector<std::pair<double, double>> profile;
  for (int i = 1; i <= samples; ++i) {
    const double depth = z * i / samples;
    const SoilModel::Layer* layer = soil_->LayerAt(depth);
    if (!layer) return util::OutOfRange("penetrated past the container");
    profile.emplace_back(
        depth, layer->cone_resistance * (1.0 + noise_.Gaussian(0, 0.02)));
  }
  // Push + retract time at 1/5 travel speed (soil resistance).
  elapsed_s_ += 2.0 * std::fabs(z) / (params_.travel_speed / 5.0);
  position_.z = 0.0;  // retracted
  return profile;
}

util::Result<double> RobotArm::ProbeDensity(double z) {
  util::MutexLock lock(mu_);
  if (tool_ != Tool::kNeedleProbe) {
    return util::FailedPrecondition("needle probe not mounted");
  }
  const SoilModel::Layer* layer = soil_->LayerAt(z);
  if (!layer) return util::OutOfRange("probe depth outside the profile");
  elapsed_s_ += 2.0 * std::fabs(z) / (params_.travel_speed / 2.0);
  return layer->density * (1.0 + noise_.Gaussian(0, 0.01));
}

util::Status RobotArm::InstallPile(double tip_z) {
  util::MutexLock lock(mu_);
  if (tool_ != Tool::kGripper) {
    return util::FailedPrecondition("gripper not mounted");
  }
  if (tip_z >= 0 || tip_z < -params_.max_depth) {
    return util::OutOfRange("pile tip depth out of range");
  }
  soil_->Densify(tip_z, 0.0, 1.15);  // installation densifies the column
  ++piles_;
  elapsed_s_ += 60.0;  // a pile takes a minute
  position_.z = 0.0;
  return util::OkStatus();
}

int RobotArm::piles_installed() const {
  util::MutexLock lock(mu_);
  return piles_;
}

util::Result<std::vector<std::uint8_t>> RobotArm::CaptureImage() {
  util::MutexLock lock(mu_);
  if (tool_ != Tool::kStereoCamera && tool_ != Tool::kUltrasound) {
    return util::FailedPrecondition("no imaging tool mounted");
  }
  util::ByteWriter writer;
  writer.WriteString(std::string(ToolName(tool_)));
  writer.WriteDouble(position_.x);
  writer.WriteDouble(position_.y);
  writer.WriteDouble(position_.z);
  // The "image" content depends on the soil state below the view point.
  const SoilModel::Layer* layer =
      soil_->LayerAt(std::max(position_.z, -soil_->container_depth()));
  writer.WriteDouble(layer ? layer->density : 0.0);
  const util::Sha256Digest pixels =
      util::Sha256::Hash(util::ToHex(writer.data().data(), writer.size()));
  std::vector<std::uint8_t> image = writer.Take();
  image.insert(image.end(), pixels.begin(), pixels.end());
  elapsed_s_ += 0.5;
  return image;
}

// ---------------------------------------------------------------------------
// BenderElementArray

BenderElementArray::BenderElementArray(SoilModel* soil, std::uint64_t seed)
    : soil_(soil), noise_(seed) {}

void BenderElementArray::AddElement(const std::string& name,
                                    const ArmPosition& position) {
  elements_[name] = position;
}

std::vector<std::string> BenderElementArray::ElementNames() const {
  std::vector<std::string> names;
  for (const auto& [name, position] : elements_) {
    (void)position;
    names.push_back(name);
  }
  return names;
}

util::Result<double> BenderElementArray::MeasureVelocity(
    const std::string& source, const std::string& receiver) {
  auto s = elements_.find(source);
  auto r = elements_.find(receiver);
  if (s == elements_.end() || r == elements_.end()) {
    return util::NotFound("unknown bender element");
  }
  NEES_ASSIGN_OR_RETURN(double travel_time,
                        soil_->TravelTimeSeconds(s->second, r->second));
  const double dx = r->second.x - s->second.x;
  const double dy = r->second.y - s->second.y;
  const double dz = r->second.z - s->second.z;
  const double length = std::sqrt(dx * dx + dy * dy + dz * dz);
  // Arrival-pick noise of ~2%.
  return (length / travel_time) * (1.0 + noise_.Gaussian(0, 0.02));
}

}  // namespace nees::centrifuge
