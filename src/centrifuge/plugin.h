// NTCP control plugin for the centrifuge robot arm and bender elements —
// the paper's conclusion made concrete: "NTCP and NSDS can be used to
// control and observe a wide range of devices". The generic NTCP action
// model (named control points + numeric targets) carries robot-arm
// teleoperation without any protocol change:
//
//   control point        target_displacement        result
//   -----------------    -----------------------    ------------------------
//   "arm"                {x, y, z}                  measured position
//   "tool:<name>"        {}                         {} (tool mounted)
//   "penetrate"          {depth_z}                  resistance at tip
//   "probe"              {depth_z}                  measured density
//   "pile"               {tip_z}                    piles installed so far
//   "bender:<src>:<rcv>" {}                         shear-wave velocity
//
// Validate() enforces workspace limits and tool prerequisites BEFORE the
// arm moves — the same negotiate-first safety property as the structural
// sites (§2.1), now protecting a robot over a spinning centrifuge.
#pragma once

#include <memory>

#include "centrifuge/robot.h"
#include "ntcp/plugin.h"

namespace nees::centrifuge {

class RobotArmPlugin final : public ntcp::ControlPlugin {
 public:
  RobotArmPlugin(std::shared_ptr<RobotArm> arm,
                 std::shared_ptr<BenderElementArray> benders);

  util::Status Validate(const ntcp::Proposal& proposal) override;
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override;
  std::string_view kind() const override { return "centrifuge-robot"; }

 private:
  util::Status ValidateAction(const ntcp::ControlPointRequest& action) const;
  util::Result<ntcp::ControlPointResult> ExecuteAction(
      const ntcp::ControlPointRequest& action);

  std::shared_ptr<RobotArm> arm_;
  std::shared_ptr<BenderElementArray> benders_;
};

}  // namespace nees::centrifuge
