#include "farm/farm.h"

#include <atomic>
#include <thread>

#include "centrifuge/session.h"
#include "most/mini_most.h"
#include "most/most.h"
#include "net/endpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nees::farm {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void FnvU64(std::uint64_t& h, std::uint64_t value) {
  for (std::size_t i = 0; i < sizeof(value); ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void FnvDouble(std::uint64_t& h, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  FnvU64(h, bits);
}

std::uint64_t HistoryDigest(const structural::TimeHistory& history) {
  std::uint64_t h = kFnvOffset;
  FnvDouble(h, history.dt_seconds);
  FnvU64(h, history.displacement.size());
  for (const structural::Vector& step : history.displacement) {
    for (const double v : step) FnvDouble(h, v);
  }
  return h;
}

}  // namespace

std::string_view SessionKindName(SessionKind kind) {
  switch (kind) {
    case SessionKind::kMiniMost:
      return "mini-most";
    case SessionKind::kMost:
      return "most";
    case SessionKind::kCentrifuge:
      return "centrifuge";
  }
  return "unknown";
}

// One admitted session: its spec, tenant namespace, the (kind-specific)
// live session object while placed, and the outcome.
struct ExperimentFarm::Tenant {
  SessionSpec spec;
  std::string name;
  std::string run_id;
  SessionResult result;

  std::unique_ptr<most::MiniMostExperiment> mini;
  std::unique_ptr<most::MostExperiment> most;
  std::unique_ptr<centrifuge::TeleoperationSession> rig;
};

ExperimentFarm::ExperimentFarm(net::Network* network, util::Clock* clock,
                               FarmOptions options)
    : network_(network), clock_(clock), options_(std::move(options)) {}

ExperimentFarm::~ExperimentFarm() { Stop(); }

util::Status ExperimentFarm::Start() {
  if (started_) return util::OkStatus();
  if (options_.tracer != nullptr) network_->set_tracer(options_.tracer);

  container_ =
      std::make_unique<grid::ServiceContainer>(network_, kContainer, clock_);
  NEES_RETURN_IF_ERROR(container_->Start());
  registry_ = std::make_shared<grid::RegistryService>(clock_);
  NEES_RETURN_IF_ERROR(container_->AddService(registry_).status());
  registry_->BindRpc(*container_);

  nsds_ = std::make_unique<nsds::NsdsServer>(network_, kNsds);
  NEES_RETURN_IF_ERROR(nsds_->Start());
  nsds_->set_tracer(options_.tracer);

  chef_ = std::make_unique<chef::ChefServer>(network_, kChef, clock_);
  NEES_RETURN_IF_ERROR(chef_->Start());
  // The shared viewer store watches every tenant's channels: namespaced
  // channel names keep them disjoint under the one subscription.
  viewer_sub_ = std::make_unique<nsds::NsdsSubscriber>(network_, kViewer);
  NEES_RETURN_IF_ERROR(viewer_sub_->SubscribeTo(kNsds, ""));
  chef_->ConnectStream(*viewer_sub_);

  registry_->Register({"nsds", nsds_->endpoint(), "nsds", "FARM", 0}, 0);
  registry_->Register({"chef", chef_->endpoint(), "chef", "FARM", 0}, 0);

  started_ = true;
  return util::OkStatus();
}

void ExperimentFarm::Stop() {
  if (!started_) return;
  if (nsds_) nsds_->Stop();
  if (container_) container_->Stop();
  started_ = false;
}

std::string ExperimentFarm::Admit(SessionSpec spec) {
  const std::string tenant = util::Format("t%04zu", next_tenant_);
  ++next_tenant_;
  specs_.push_back(spec);
  return tenant;
}

std::size_t ExperimentFarm::baseline_services() const {
  // registry only; NTCP/NSDS/CHEF host services live outside the container.
  return 1;
}

std::size_t ExperimentFarm::baseline_registrations() const {
  return 2;  // the host's nsds + chef entries
}

util::Status ExperimentFarm::PlaceSession(Tenant& tenant) {
  switch (tenant.spec.kind) {
    case SessionKind::kMiniMost: {
      most::MiniMostOptions opts;
      opts.steps =
          tenant.spec.steps != 0 ? tenant.spec.steps : options_.mini_steps;
      opts.seed = tenant.spec.seed;
      opts.real_hardware = false;  // kinetic sim: the density workhorse
      opts.experiment_ns = tenant.name;
      opts.shared_container = container_.get();
      opts.shared_registry = registry_.get();
      opts.registry_lease_micros = options_.registry_lease_micros;
      tenant.mini = std::make_unique<most::MiniMostExperiment>(
          network_, clock_, std::move(opts));
      return tenant.mini->Start();
    }
    case SessionKind::kMost: {
      most::MostOptions opts;
      opts.steps =
          tenant.spec.steps != 0 ? tenant.spec.steps : options_.most_steps;
      opts.seed = tenant.spec.seed != 0 ? tenant.spec.seed : opts.seed;
      opts.step_engine = options_.step_engine;
      // Farm tenants travel light: no per-tenant repository/DAQ drop dirs;
      // streaming rides the shared NSDS.
      opts.with_repository = false;
      opts.daq_flush_every_steps = 0;
      opts.experiment_ns = tenant.name;
      opts.shared_container = container_.get();
      opts.shared_registry = registry_.get();
      opts.shared_nsds = nsds_.get();
      tenant.most = std::make_unique<most::MostExperiment>(network_, clock_,
                                                           std::move(opts));
      return tenant.most->Start();
    }
    case SessionKind::kCentrifuge: {
      centrifuge::SessionOptions opts;
      opts.piles = tenant.spec.steps != 0 ? tenant.spec.steps
                                          : options_.centrifuge_piles;
      opts.seed = tenant.spec.seed != 0 ? tenant.spec.seed : opts.seed;
      opts.experiment_ns = tenant.name;
      opts.shared_container = container_.get();
      opts.shared_registry = registry_.get();
      opts.registry_lease_micros = options_.registry_lease_micros;
      tenant.rig = std::make_unique<centrifuge::TeleoperationSession>(
          network_, clock_, std::move(opts));
      return tenant.rig->Start();
    }
  }
  return util::InvalidArgument("unknown session kind");
}

void ExperimentFarm::RunSession(Tenant& tenant) {
  SessionResult& result = tenant.result;
  if (tenant.mini) {
    auto report = tenant.mini->Run(tenant.run_id);
    if (!report.ok()) {
      result.error = report.status().ToString();
      return;
    }
    result.ok = report->completed;
    if (!result.ok) result.error = report->failure.ToString();
    result.steps_completed = report->steps_completed;
    result.history_digest = HistoryDigest(report->history);
    if (options_.keep_histories) result.history = std::move(report->history);
  } else if (tenant.most) {
    auto report =
        tenant.most->Run(psd::FaultPolicy::kFaultTolerant, tenant.run_id);
    if (!report.ok()) {
      result.error = report.status().ToString();
      return;
    }
    result.ok = report->completed;
    if (!result.ok) result.error = report->failure.ToString();
    result.steps_completed = report->steps_completed;
    result.history_digest = HistoryDigest(report->history);
    if (options_.keep_histories) result.history = std::move(report->history);
  } else if (tenant.rig) {
    auto report = tenant.rig->Run();
    if (!report.ok()) {
      result.error = report.status().ToString();
      return;
    }
    result.ok = report->completed;
    result.steps_completed = report->transactions;
    result.history_digest = report->measured_digest;
  }
}

util::Result<FarmReport> ExperimentFarm::RunAll() {
  NEES_RETURN_IF_ERROR(Start());
  FarmReport report;
  report.admitted = specs_.size();

  std::vector<std::unique_ptr<Tenant>> tenants;
  tenants.reserve(specs_.size());
  const std::size_t first = next_tenant_ - specs_.size();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    auto tenant = std::make_unique<Tenant>();
    tenant->spec = specs_[i];
    tenant->name = util::Format("t%04zu", first + i);
    tenant->run_id = tenant->name + "-run";
    if (tenant->spec.seed == 0) {
      // Distinct default seeds keep tenant histories distinguishable while
      // staying reproducible run-to-run.
      tenant->spec.seed = 0x6e65'6573ULL + first + i;
    }
    tenant->result.tenant = tenant->name;
    tenant->result.kind = tenant->spec.kind;
    tenants.push_back(std::move(tenant));
  }
  specs_.clear();

  const std::int64_t t0 = util::SystemClock::Instance().NowMicros();

  // --- place: every tenant's services live on the shared fabric at once ---
  for (auto& tenant : tenants) {
    const util::Status placed = PlaceSession(*tenant);
    if (!placed.ok()) {
      tenant->result.error = "placement: " + placed.ToString();
    }
  }
  report.peak_services = container_->service_count();
  report.peak_registrations = registry_->entry_count();

  // --- run: a worker pool drives the sessions to completion ---------------
  std::atomic<std::size_t> next{0};
  const std::size_t worker_count =
      std::max<std::size_t>(1, std::min(options_.workers, tenants.size()));
  auto drain = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= tenants.size()) return;
      Tenant& tenant = *tenants[index];
      if (tenant.result.error.empty()) RunSession(tenant);
    }
  };
  if (worker_count <= 1) {
    drain();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers.emplace_back(drain);
    }
    for (std::thread& worker : workers) worker.join();
  }

  // --- reap: destroy each tenant's soft state; fabric returns to baseline -
  for (auto& tenant : tenants) {
    if (tenant->mini) tenant->mini->Stop();
    if (tenant->most) tenant->most->Stop();
    if (tenant->rig) tenant->rig->Stop();
    tenant->mini.reset();
    tenant->most.reset();
    tenant->rig.reset();
  }

  const std::int64_t t1 = util::SystemClock::Instance().NowMicros();
  report.wall_seconds = static_cast<double>(t1 - t0) / 1e6;

  for (auto& tenant : tenants) {
    if (tenant->result.ok) {
      ++report.completed;
    } else {
      ++report.failed;
      NEES_LOG_INFO("farm") << tenant->result.tenant << " ("
                            << SessionKindName(tenant->result.kind)
                            << ") failed: " << tenant->result.error;
    }
    report.sessions.push_back(std::move(tenant->result));
  }
  if (report.wall_seconds > 0.0) {
    report.experiments_per_sec =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  report.services_after_reap = container_->service_count();
  report.registrations_after_reap = registry_->entry_count();
  report.endpoints_interned = net::EndpointTable::Instance().size();
  return report;
}

chef::SwarmReport RunScaledSwarm(net::Network* network,
                                 const std::string& chef_server,
                                 const SwarmOptions& options) {
  chef::SwarmReport total;
  total.participants = options.participants;
  if (options.participants <= 0) return total;

  const std::size_t shard_count = std::max<std::size_t>(
      1, std::min<std::size_t>(options.shards,
                               static_cast<std::size_t>(options.participants)));
  std::vector<chef::SwarmReport> shard_reports(shard_count);
  auto run_shard = [&](std::size_t shard) {
    chef::SwarmReport& report = shard_reports[shard];
    // Participants stay logged in until the shard finishes (presence load),
    // like chef::RunParticipantSwarm — then log out so successive waves
    // don't accumulate sessions.
    std::vector<std::unique_ptr<chef::ChefClient>> clients;
    for (int i = static_cast<int>(shard); i < options.participants;
         i += static_cast<int>(shard_count)) {
      auto client = std::make_unique<chef::ChefClient>(
          network, "swarm." + std::to_string(i), chef_server);
      if (!client->Login("swarm-user" + std::to_string(i)).ok()) {
        ++report.failures;
        continue;
      }
      for (int action = 0; action < options.actions_per_user; ++action) {
        if (action % 3 == 0) {
          if (client->PostChat("farm", "observing step data").ok()) {
            ++report.chat_posts;
          } else {
            ++report.failures;
          }
        } else {
          if (client->ViewerSeries(options.channel, 100).ok()) {
            ++report.viewer_reads;
          } else {
            ++report.failures;
          }
        }
      }
      clients.push_back(std::move(client));
    }
    for (auto& client : clients) (void)client->Logout();
  };

  if (shard_count <= 1) {
    run_shard(0);
  } else {
    std::vector<std::thread> shards;
    shards.reserve(shard_count);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      shards.emplace_back(run_shard, shard);
    }
    for (std::thread& shard : shards) shard.join();
  }
  for (const chef::SwarmReport& report : shard_reports) {
    total.chat_posts += report.chat_posts;
    total.viewer_reads += report.viewer_reads;
    total.failures += report.failures;
  }
  return total;
}

}  // namespace nees::farm
