// The experiment farm: one grid host running hundreds of concurrent NEES
// experiments. The paper runs MOST as the lone tenant of the grid; the farm
// inverts that — a single process hosts shared fabric (one network, one
// OGSI container, one registry, one NSDS stream server, one CHEF
// collaboration server) and schedules many namespaced experiment sessions
// over it:
//
//   Admit(spec)  assign a tenant namespace ("t0042")
//   RunAll()     place every session's services on the shared fabric,
//                drive the sessions to completion on a worker pool,
//                then reap each tenant's soft state (container services,
//                registry leases) back to the host baseline
//
// Tenants never share names: every endpoint, registry entry, and data
// channel is "<tenant>/<base>" (grid/tenant.h), so one EndpointTable id
// space and one container table carry the whole farm. RunScaledSwarm fans
// thousands of scripted CHEF participants over the shared NSDS stream —
// the "over 130 remote participants" story at two orders of magnitude.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chef/chef.h"
#include "grid/container.h"
#include "grid/registry.h"
#include "nsds/nsds.h"
#include "obs/trace.h"
#include "psd/coordinator.h"
#include "structural/integrator.h"

namespace nees::farm {

enum class SessionKind : std::uint8_t {
  kMiniMost = 0,   // kinetic-sim Mini-MOST: the density workhorse
  kMost = 1,       // the full three-site MOST assembly
  kCentrifuge = 2, // teleoperated centrifuge campaign
};

std::string_view SessionKindName(SessionKind kind);

struct SessionSpec {
  SessionKind kind = SessionKind::kMiniMost;
  /// PSD steps (MOST/Mini-MOST) or piles (centrifuge); 0 = farm default.
  std::size_t steps = 0;
  std::uint64_t seed = 0;  // 0 = derived from the tenant index
};

struct SessionResult {
  std::string tenant;
  SessionKind kind = SessionKind::kMiniMost;
  bool ok = false;
  std::string error;
  std::size_t steps_completed = 0;
  /// FNV-1a digest of the session's history (displacement record for the
  /// PSD shapes, measured control points for the centrifuge) — the
  /// determinism handle for farm-vs-standalone comparisons.
  std::uint64_t history_digest = 0;
  /// Full displacement record, kept only when FarmOptions::keep_histories
  /// is set (bit-identity tests); empty otherwise.
  structural::TimeHistory history;
};

struct FarmOptions {
  /// Worker threads driving admitted sessions.
  std::size_t workers = 4;
  /// Defaults for SessionSpec::steps == 0.
  std::size_t mini_steps = 80;
  std::size_t most_steps = 200;
  std::size_t centrifuge_piles = 2;
  /// Step engine for farm-hosted PSD coordinators. kSequential keeps the
  /// thread count = workers; results are engine-invariant (E5/E6).
  psd::StepEngine step_engine = psd::StepEngine::kSequential;
  /// Registry lease for tenant registrations; 0 = no expiry.
  std::int64_t registry_lease_micros = 0;
  /// Keep each session's full TimeHistory in its result.
  bool keep_histories = false;
  /// Installed once on the shared network at Start(); tenants run with a
  /// null tracer so they cannot stomp it. Must outlive the farm.
  obs::Tracer* tracer = nullptr;
};

struct FarmReport {
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double experiments_per_sec = 0.0;
  /// Container services / registry entries with every tenant placed, and
  /// after the reap (the latter should equal the host baseline).
  std::size_t peak_services = 0;
  std::size_t peak_registrations = 0;
  std::size_t services_after_reap = 0;
  std::size_t registrations_after_reap = 0;
  /// Process-wide interned endpoint names after the run (endpoint-identity
  /// footprint of the tenancy level).
  std::size_t endpoints_interned = 0;
  std::vector<SessionResult> sessions;
};

class ExperimentFarm {
 public:
  // Host fabric endpoints (un-namespaced: the farm is the host, not a
  // tenant).
  static constexpr const char* kContainer = "container.farm";
  static constexpr const char* kNsds = "nsds.farm";
  static constexpr const char* kChef = "chef.farm";
  static constexpr const char* kViewer = "viewer.farm";

  ExperimentFarm(net::Network* network, util::Clock* clock,
                 FarmOptions options);
  ~ExperimentFarm();

  /// Brings up the shared fabric: container + registry, NSDS server, CHEF
  /// server with its viewer store wired to the shared stream.
  util::Status Start();
  void Stop();

  /// Admits a session and returns its tenant namespace ("t0042").
  std::string Admit(SessionSpec spec);
  std::size_t admitted() const { return specs_.size(); }

  /// Places, runs, and reaps every admitted session; clears the admission
  /// queue. Callable repeatedly for successive waves.
  util::Result<FarmReport> RunAll();

  grid::ServiceContainer* container() { return container_.get(); }
  grid::RegistryService* registry() { return registry_.get(); }
  nsds::NsdsServer* nsds() { return nsds_.get(); }
  chef::ChefServer* chef() { return chef_.get(); }
  net::Network* network() { return network_; }

  /// Host-fabric service/registration counts (the reap baseline).
  std::size_t baseline_services() const;
  std::size_t baseline_registrations() const;

 private:
  struct Tenant;

  util::Status PlaceSession(Tenant& tenant);
  void RunSession(Tenant& tenant);

  net::Network* network_;
  util::Clock* clock_;
  FarmOptions options_;

  std::unique_ptr<grid::ServiceContainer> container_;
  std::shared_ptr<grid::RegistryService> registry_;
  std::unique_ptr<nsds::NsdsServer> nsds_;
  std::unique_ptr<chef::ChefServer> chef_;
  std::unique_ptr<nsds::NsdsSubscriber> viewer_sub_;

  std::vector<SessionSpec> specs_;
  std::size_t next_tenant_ = 0;
  bool started_ = false;
};

/// Scaled CHEF participation: `participants` scripted viewers, each with a
/// unique endpoint ("swarm.<i>"), sharded over `shards` threads against one
/// CHEF server. The action mix matches chef::RunParticipantSwarm (chat
/// posts + viewer series reads); reports are summed across shards.
struct SwarmOptions {
  int participants = 1000;
  int actions_per_user = 3;
  std::size_t shards = 8;
  /// Channel the viewer reads target (under a farm, a tenant-qualified
  /// channel such as "t0000/most.displacement").
  std::string channel = "most.displacement";
};

chef::SwarmReport RunScaledSwarm(net::Network* network,
                                 const std::string& chef_server,
                                 const SwarmOptions& options);

}  // namespace nees::farm
