#include "daq/daq.h"

#include <fstream>

#include "obs/trace.h"
#include "util/strings.h"

namespace nees::daq {

DaqSystem::DaqSystem(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity) {}

void DaqSystem::AddChannel(const ChannelConfig& config) {
  util::MutexLock lock(mu_);
  channels_[config.name] = config;
  buffers_.try_emplace(config.name);
}

std::vector<std::string> DaqSystem::ChannelNames() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, config] : channels_) {
    (void)config;
    names.push_back(name);
  }
  return names;
}

util::Result<ChannelConfig> DaqSystem::GetChannel(
    const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = channels_.find(name);
  if (it == channels_.end()) return util::NotFound("no channel: " + name);
  return it->second;
}

util::Status DaqSystem::Record(const std::string& channel,
                               std::int64_t time_micros, double value) {
  util::MutexLock lock(mu_);
  auto it = buffers_.find(channel);
  if (it == buffers_.end()) return util::NotFound("no channel: " + channel);
  if (it->second.size() >= ring_capacity_) {
    it->second.pop_front();
    ++overwritten_;
  }
  it->second.push_back({channel, time_micros, value});
  ++recorded_;
  if (tracer_ != nullptr) tracer_->metrics().Increment("daq.samples");
  return util::OkStatus();
}

std::vector<nsds::DataSample> DaqSystem::Buffered(
    const std::string& channel) const {
  util::MutexLock lock(mu_);
  auto it = buffers_.find(channel);
  if (it == buffers_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::uint64_t DaqSystem::recorded() const {
  util::MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t DaqSystem::overwritten() const {
  util::MutexLock lock(mu_);
  return overwritten_;
}

util::Result<std::filesystem::path> DaqSystem::Flush(
    const std::filesystem::path& drop_dir, const std::string& prefix) {
  util::MutexLock lock(mu_);
  std::string content;
  std::size_t total = 0;
  for (auto& [channel, buffer] : buffers_) {
    for (const nsds::DataSample& sample : buffer) {
      content += util::Format("%s,%lld,%.12g\n", channel.c_str(),
                              static_cast<long long>(sample.time_micros),
                              sample.value);
      ++total;
    }
    buffer.clear();
  }
  if (total == 0) return util::NotFound("nothing to flush");

  std::error_code ec;
  std::filesystem::create_directories(drop_dir, ec);
  if (ec) return util::Internal("cannot create drop dir: " + ec.message());
  const std::filesystem::path file =
      drop_dir / util::Format("%s_%06llu.csv", prefix.c_str(),
                              static_cast<unsigned long long>(
                                  flush_counter_++));
  std::ofstream out(file);
  if (!out) return util::Internal("cannot open " + file.string());
  out << content;
  out.close();
  if (tracer_ != nullptr) {
    // filename() only: the drop dir is usually a throwaway temp path whose
    // name would break byte-identical traces across runs.
    tracer_->RecordEvent("daq.flush", "ingest", 0,
                         {{"file", file.filename().string()},
                          {"samples", std::to_string(total)}});
    tracer_->metrics().Increment("daq.flushes");
  }
  return file;
}

util::Result<std::vector<nsds::DataSample>> ParseDropCsv(
    std::string_view content) {
  std::vector<nsds::DataSample> samples;
  int line_number = 0;
  for (const std::string& line : util::Split(content, '\n')) {
    ++line_number;
    if (util::Trim(line).empty()) continue;
    const auto parts = util::Split(line, ',');
    long long time_micros = 0;
    double value = 0.0;
    if (parts.size() != 3 || !util::ParseInt(parts[1], &time_micros) ||
        !util::ParseDouble(parts[2], &value)) {
      return util::DataLoss(
          util::Format("malformed DAQ row at line %d", line_number));
    }
    samples.push_back({parts[0], time_micros, value});
  }
  return samples;
}

util::Result<std::vector<nsds::DataSample>> ParseDropFile(
    const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return util::NotFound("cannot open " + file.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  auto samples = ParseDropCsv(content);
  if (!samples.ok()) {
    return util::DataLoss(samples.status().message() + " in " +
                          file.string());
  }
  return samples;
}

Harvester::Harvester(std::filesystem::path drop_dir, FileSink sink)
    : drop_dir_(std::move(drop_dir)), sink_(std::move(sink)) {}

util::Result<int> Harvester::ScanOnce() {
  std::error_code ec;
  if (!std::filesystem::exists(drop_dir_, ec)) return 0;
  std::vector<std::filesystem::path> pending;
  for (const auto& entry :
       std::filesystem::directory_iterator(drop_dir_, ec)) {
    if (ec) return util::Internal("scan failed: " + ec.message());
    if (entry.path().extension() == ".csv") pending.push_back(entry.path());
  }
  std::sort(pending.begin(), pending.end());

  int processed = 0;
  for (const std::filesystem::path& file : pending) {
    auto samples = ParseDropFile(file);
    if (!samples.ok()) {
      ++files_failed_;
      continue;  // leave the bad file for operator inspection
    }
    const util::Status sunk = sink_(file, *samples);
    if (!sunk.ok()) {
      ++files_failed_;
      continue;  // retry on the next scan
    }
    std::filesystem::rename(file, file.string() + ".done", ec);
    if (ec) return util::Internal("rename failed: " + ec.message());
    ++files_processed_;
    samples_processed_ += samples->size();
    ++processed;
    if (tracer_ != nullptr) {
      tracer_->RecordEvent("daq.harvest", "ingest", 0,
                           {{"file", file.filename().string()},
                            {"samples", std::to_string(samples->size())}});
      tracer_->metrics().Increment("daq.files_harvested");
    }
  }
  return processed;
}

}  // namespace nees::daq
