// Data acquisition emulation (Fig. 10, §3.2). Both MOST sites ran LabVIEW
// DAQs that "periodically gathered data deposited by the DAQ in a
// network-mounted file system"; NFMS/GridFTP then uploaded it. We reproduce
// the same pipeline: sampled channels accumulate in ring buffers, a flusher
// drops CSV files into a directory, and a harvester picks files up for
// ingestion into the repository (and optional live NSDS publication).
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "nsds/nsds.h"
#include "util/result.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::daq {

struct ChannelConfig {
  std::string name;          // e.g. "uiuc.lvdt1"
  std::string units;         // "m", "N", "strain"
  double sample_rate_hz = 100.0;
};

/// Fixed-capacity ring buffer of (time, value) samples per channel.
class DaqSystem {
 public:
  explicit DaqSystem(std::size_t ring_capacity = 65536);

  void AddChannel(const ChannelConfig& config);
  std::vector<std::string> ChannelNames() const;
  util::Result<ChannelConfig> GetChannel(const std::string& name) const;

  /// Records one sample; unknown channels are rejected.
  util::Status Record(const std::string& channel, std::int64_t time_micros,
                      double value);

  /// Samples currently buffered for a channel (oldest first).
  std::vector<nsds::DataSample> Buffered(const std::string& channel) const;

  /// Total samples ever recorded / dropped to ring overflow.
  std::uint64_t recorded() const;
  std::uint64_t overwritten() const;

  /// Drains all buffers into one CSV file "<prefix>_<counter>.csv" in
  /// `drop_dir` (created if missing); returns the file path, or NotFound
  /// if there was nothing to flush. Format: channel,time_micros,value.
  util::Result<std::filesystem::path> Flush(
      const std::filesystem::path& drop_dir, const std::string& prefix);

  /// Optional: records sample counters and one "ingest" event per flush.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  std::size_t ring_capacity_;
  obs::Tracer* tracer_ = nullptr;
  mutable util::Mutex mu_{"daq.DaqSystem"};
  std::map<std::string, ChannelConfig> channels_;
  std::map<std::string, std::deque<nsds::DataSample>> buffers_;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t flush_counter_ = 0;
};

/// Parses a DAQ drop file back into samples (used by the harvester and by
/// the repository ingestion tool).
util::Result<std::vector<nsds::DataSample>> ParseDropFile(
    const std::filesystem::path& file);

/// Parses DAQ CSV content already in memory (e.g. fetched from the
/// repository by a viewer).
util::Result<std::vector<nsds::DataSample>> ParseDropCsv(
    std::string_view content);

/// Periodically scans the drop directory and hands each new file to a sink
/// (ingestion and/or streaming); processed files are renamed with a
/// ".done" suffix so a crash never ingests twice.
class Harvester {
 public:
  using FileSink = std::function<util::Status(
      const std::filesystem::path& file,
      const std::vector<nsds::DataSample>& samples)>;

  Harvester(std::filesystem::path drop_dir, FileSink sink);

  /// One scan pass; returns the number of files processed.
  util::Result<int> ScanOnce();

  std::uint64_t files_processed() const { return files_processed_; }
  std::uint64_t samples_processed() const { return samples_processed_; }
  std::uint64_t files_failed() const { return files_failed_; }

  /// Optional: records one "ingest" event per harvested file.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  std::filesystem::path drop_dir_;
  FileSink sink_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t files_processed_ = 0;
  std::uint64_t samples_processed_ = 0;
  std::uint64_t files_failed_ = 0;
};

}  // namespace nees::daq
