// Offline NTCP protocol conformance checker ("nees-lint").
//
// The paper's safety argument rests on the Fig. 1 transaction state machine
// and its at-most-once guarantee; the PR-1 tracer gives every run a
// byte-stable JSON-lines trace. This checker closes the loop: the NTCP
// server emits one structured "ntcp.txn" event per state transition (plus
// "ntcp.dup" events for retries served from the at-most-once cache), and
// the linter replays a trace against the protocol rule set:
//
//   * legal-path   — every transaction starts with a creation event, walks
//                    only Fig. 1 transitions, and ends in a terminal state;
//   * at-most-once — no transaction enters kExecuting twice; duplicate
//                    proposals/executes are served only from known,
//                    already-answered transactions;
//   * monotonicity — per NTCP endpoint, proposed PSD step indices never
//                    skip or reorder (repeats are fine: re-proposal);
//   * expiry       — a kExpired transition implies the proposal window had
//                    actually lapsed on the trace clock;
//   * nesting      — spans reference existing earlier parents, start inside
//                    them, and children of a "step"-category span (the PSD
//                    step) also end inside it;
//   * crash        — between a "site.crash" and the matching "site.restart"
//                    an endpoint emits nothing; "ntcp.recover" appears only
//                    after a crash; cause=crash-recovery transitions are
//                    exactly the executing -> failed crash-marks of
//                    docs/RECOVERY.md.
//
// Violations carry the transaction, step, and offending span (== trace
// line for tracer exports), so a failure is directly diffable against the
// trace text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/result.h"

namespace nees::check {

enum class Rule {
  kTraceShape = 0,     // ids not ascending, negative duration, bad event tags
  kIllegalTransition,  // path violates Fig. 1 (incl. missing creation)
  kDuplicateExecute,   // transaction entered kExecuting more than once
  kAtMostOnce,         // duplicate propose/execute outside the dedup rules
  kNonTerminal,        // transaction not terminal at end of trace
  kStepMonotonicity,   // per-endpoint PSD step skipped or reordered
  kBogusExpiry,        // kExpired before the proposal window lapsed
  kSpanNesting,        // orphan parent / child escaping its PSD-step span
  kCrashConsistency,   // crash/restart/recovery events violate the
                       // docs/RECOVERY.md restart state machine: protocol
                       // events from a dead endpoint, recovery without a
                       // crash, or a crash-recovery transition that is not
                       // executing -> failed
};

std::string_view RuleName(Rule rule);

struct Violation {
  Rule rule = Rule::kTraceShape;
  std::string transaction_id;  // empty when not transaction-scoped
  std::int64_t step = -1;      // PSD step, -1 when unknown / not applicable
  std::uint64_t span_id = 0;   // offending span (0 = whole trace)
  int line = 0;                // 1-based trace line (0 when linting spans)
  std::string message;

  std::string ToString() const;
};

struct LintStats {
  std::size_t spans = 0;
  std::size_t protocol_events = 0;  // ntcp.txn + ntcp.dup events
  std::size_t transactions = 0;
  std::size_t endpoints = 0;
};

struct LintReport {
  LintStats stats;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// Summary line plus one line per violation.
  std::string ToString() const;
};

/// Replays a span stream (tracer snapshot or parsed trace) against the
/// protocol rule set above.
LintReport LintSpans(const std::vector<obs::SpanRecord>& spans);

/// Parses a JSON-lines trace and lints it; violations carry the 1-based
/// line number of the offending trace line. Fails on malformed input.
util::Result<LintReport> LintTraceText(const std::string& text);

/// Reads `path` (the most_experiment / bench_obs trace dump format) and
/// lints it.
util::Result<LintReport> LintTraceFile(const std::string& path);

/// Fuzz oracle: run-completion => exactly-once-per-site-per-step. Counts
/// entries into kExecuting per (endpoint, PSD step) from the "ntcp.txn"
/// events of a span stream. When the run finished with zero step
/// re-proposals (`max_reattempts == 0`) every (endpoint, step) pair must
/// have executed exactly once; with re-proposals a step may legitimately
/// re-execute under a fresh transaction after a partial phase failure
/// (at-most-once is per-*transaction*, which LintSpans enforces), so the
/// count is bounded by 1 + max_reattempts. Returns one message per
/// violation; empty means the oracle holds.
std::vector<std::string> CheckExactlyOncePerStep(
    const std::vector<obs::SpanRecord>& spans,
    const std::vector<std::string>& endpoints, std::size_t steps,
    std::uint64_t max_reattempts);

}  // namespace nees::check
