// Runtime invariant checks for the protocol and coordinator hot paths.
//
// NEES_CHECK_INVARIANT states a condition that must hold at an NTCP state
// transition or a coordinator step boundary regardless of input: a failure
// means the *implementation* (not the experiment) is wrong, so the process
// aborts immediately rather than publishing a corrupt transaction record or
// integrating a bogus force.
//
// The checks are compiled in everywhere except Release builds (the CMake
// helper `nees_apply_build_flags` defines NEES_ENABLE_INVARIANTS for all
// non-Release configurations), so the default RelWithDebInfo developer
// build, the sanitizer CI matrix, and every test run all carry them, while
// the production configuration pays nothing — the condition expression is
// not evaluated at all.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(NEES_ENABLE_INVARIANTS)
#define NEES_CHECK_INVARIANT(condition, message)                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "NEES invariant violated at %s:%d: %s [%s]\n", \
                   __FILE__, __LINE__, message, #condition);              \
      std::abort();                                                       \
    }                                                                     \
  } while (false)
#else
#define NEES_CHECK_INVARIANT(condition, message) static_cast<void>(0)
#endif
