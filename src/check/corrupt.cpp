#include "check/corrupt.h"

#include <algorithm>
#include <map>
#include <string>

#include "util/strings.h"

namespace nees::check {
namespace {

const std::string* FindTag(const obs::SpanRecord& span, std::string_view key) {
  for (const auto& [tag_key, value] : span.tags) {
    if (tag_key == key) return &value;
  }
  return nullptr;
}

void SetTag(obs::SpanRecord* span, std::string_view key, std::string value) {
  for (auto& [tag_key, tag_value] : span->tags) {
    if (tag_key == key) {
      tag_value = std::move(value);
      return;
    }
  }
  span->tags.emplace_back(std::string(key), std::move(value));
}

bool TagEquals(const obs::SpanRecord& span, std::string_view key,
               std::string_view value) {
  const std::string* tag = FindTag(span, key);
  return tag != nullptr && *tag == value;
}

std::uint64_t NextId(const std::vector<obs::SpanRecord>& spans) {
  std::uint64_t max_id = 0;
  for (const obs::SpanRecord& span : spans) max_id = std::max(max_id, span.id);
  return max_id + 1;
}

obs::SpanRecord MakeTxnEvent(std::uint64_t id, const std::string& txn,
                             const std::string& endpoint,
                             const std::string& from, const std::string& to,
                             std::int64_t at, std::int64_t timeout) {
  obs::SpanRecord event;
  event.id = id;
  event.parent_id = 0;
  event.name = "ntcp.txn";
  event.category = "txn";
  event.start_micros = at;
  event.end_micros = at;
  event.tags = {{"txn", txn},   {"endpoint", endpoint},
                {"from", from}, {"to", to},
                {"step", "-1"}, {"at", std::to_string(at)},
                {"timeout", std::to_string(timeout)}};
  return event;
}

/// Appends a copy of the first ntcp.txn event matching from/to, with the
/// tags rewritten by `mutate`.
util::Result<std::vector<obs::SpanRecord>> AppendMutatedCopy(
    std::vector<obs::SpanRecord> spans, std::string_view from,
    std::string_view to, void (*mutate)(obs::SpanRecord*)) {
  for (const obs::SpanRecord& span : spans) {
    if (span.name != "ntcp.txn" || !TagEquals(span, "from", from) ||
        !TagEquals(span, "to", to)) {
      continue;
    }
    obs::SpanRecord copy = span;
    copy.id = NextId(spans);
    copy.parent_id = 0;
    // Re-date the copy to the end of the trace so span ids stay ascending
    // without the shape rule firing on the timestamps.
    const obs::SpanRecord& last = spans.back();
    copy.start_micros = std::max(last.start_micros, last.end_micros);
    copy.end_micros = copy.start_micros;
    SetTag(&copy, "at", std::to_string(copy.start_micros));
    mutate(&copy);
    spans.push_back(std::move(copy));
    return spans;
  }
  return util::FailedPrecondition(
      util::Format("trace has no %s->%s event to corrupt",
                   std::string(from).c_str(), std::string(to).c_str()));
}

}  // namespace

util::Result<std::vector<obs::SpanRecord>> SeedIllegalTransition(
    std::vector<obs::SpanRecord> spans) {
  return AppendMutatedCopy(std::move(spans), "executing", "completed",
                           [](obs::SpanRecord* span) {
                             SetTag(span, "from", "completed");
                             SetTag(span, "to", "accepted");
                           });
}

util::Result<std::vector<obs::SpanRecord>> SeedDuplicateExecute(
    std::vector<obs::SpanRecord> spans) {
  return AppendMutatedCopy(std::move(spans), "accepted", "executing",
                           [](obs::SpanRecord*) {});
}

util::Result<std::vector<obs::SpanRecord>> SeedSkippedStep(
    std::vector<obs::SpanRecord> spans) {
  // Pick the first endpoint's creation events and find a middle step whose
  // transaction was proposed exactly once (no re-proposal noise).
  std::string endpoint;
  struct Creation { std::int64_t step; std::string txn; };
  std::vector<Creation> creations;
  std::map<std::int64_t, int> step_count;
  for (const obs::SpanRecord& span : spans) {
    if (span.name != "ntcp.txn" || !TagEquals(span, "from", "none")) continue;
    const std::string* span_endpoint = FindTag(span, "endpoint");
    const std::string* txn = FindTag(span, "txn");
    const std::string* step_tag = FindTag(span, "step");
    long long step = -1;
    if (span_endpoint == nullptr || txn == nullptr || step_tag == nullptr ||
        !util::ParseInt(*step_tag, &step) || step < 0) {
      continue;
    }
    if (endpoint.empty()) endpoint = *span_endpoint;
    if (*span_endpoint != endpoint) continue;
    creations.push_back({step, *txn});
    ++step_count[step];
  }
  for (std::size_t i = 1; i + 1 < creations.size(); ++i) {
    if (step_count[creations[i].step] != 1) continue;
    const std::string& victim = creations[i].txn;
    spans.erase(std::remove_if(spans.begin(), spans.end(),
                               [&victim](const obs::SpanRecord& span) {
                                 return (span.name == "ntcp.txn" ||
                                         span.name == "ntcp.dup") &&
                                        TagEquals(span, "txn", victim);
                               }),
                spans.end());
    return spans;
  }
  return util::FailedPrecondition(
      "trace has no uniquely-proposed middle step to erase");
}

std::vector<obs::SpanRecord> SeedBogusExpiry(
    std::vector<obs::SpanRecord> spans) {
  const std::int64_t base =
      spans.empty() ? 0
                    : std::max(spans.back().start_micros,
                               spans.back().end_micros);
  std::uint64_t id = NextId(spans);
  const std::string txn = "seeded-expiry";
  const std::string endpoint = "ntcp.seeded";
  constexpr std::int64_t kWindow = 60'000'000;  // 60 s proposal window
  spans.push_back(
      MakeTxnEvent(id++, txn, endpoint, "none", "proposed", base, kWindow));
  spans.push_back(MakeTxnEvent(id++, txn, endpoint, "proposed", "accepted",
                               base + 10, kWindow));
  // Expired a millisecond in: the window had 59.999 s left to run.
  spans.push_back(MakeTxnEvent(id++, txn, endpoint, "accepted", "expired",
                               base + 1'000, kWindow));
  return spans;
}

}  // namespace nees::check
