#include "check/checker.h"

#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "ntcp/types.h"
#include "util/strings.h"

namespace nees::check {
namespace {

using ntcp::TransactionState;

constexpr std::string_view kTxnEvent = "ntcp.txn";
constexpr std::string_view kDupEvent = "ntcp.dup";
constexpr std::string_view kCrashEvent = "site.crash";
constexpr std::string_view kRestartEvent = "site.restart";
constexpr std::string_view kRecoverEvent = "ntcp.recover";

const std::string* FindTag(const obs::SpanRecord& span, std::string_view key) {
  for (const auto& [tag_key, value] : span.tags) {
    if (tag_key == key) return &value;
  }
  return nullptr;
}

bool FindTagInt(const obs::SpanRecord& span, std::string_view key,
                std::int64_t* out) {
  const std::string* value = FindTag(span, key);
  if (value == nullptr) return false;
  long long parsed = 0;
  if (!util::ParseInt(*value, &parsed)) return false;
  *out = parsed;
  return true;
}

std::optional<TransactionState> StateFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(TransactionState::kExpired); ++i) {
    const auto state = static_cast<TransactionState>(i);
    if (ntcp::TransactionStateName(state) == name) return state;
  }
  return std::nullopt;
}

/// Replay state for one transaction.
struct TxnTracker {
  bool created = false;
  TransactionState state = TransactionState::kProposed;
  std::int64_t proposed_at = -1;
  std::int64_t step = -1;
  int executing_entries = 0;
  std::uint64_t last_span = 0;  // creation/last transition span
};

class Linter {
 public:
  explicit Linter(const std::vector<obs::SpanRecord>& spans) : spans_(spans) {}

  LintReport Run() {
    report_.stats.spans = spans_.size();
    CheckShapeAndNesting();
    for (const obs::SpanRecord& span : spans_) {
      if (span.name == kTxnEvent) {
        ++report_.stats.protocol_events;
        ReplayTransition(span);
      } else if (span.name == kDupEvent) {
        ++report_.stats.protocol_events;
        ReplayDuplicate(span);
      } else if (span.name == kCrashEvent) {
        ReplayCrash(span);
      } else if (span.name == kRestartEvent) {
        ReplayRestart(span);
      } else if (span.name == kRecoverEvent) {
        ReplayRecover(span);
      }
    }
    CheckTerminal();
    CheckStepMonotonicity();
    report_.stats.transactions = txns_.size();
    report_.stats.endpoints = endpoints_.size();
    return std::move(report_);
  }

 private:
  void Add(Rule rule, const obs::SpanRecord* span, std::string txn,
           std::int64_t step, std::string message) {
    Violation violation;
    violation.rule = rule;
    violation.transaction_id = std::move(txn);
    violation.step = step;
    violation.span_id = span == nullptr ? 0 : span->id;
    violation.message = std::move(message);
    report_.violations.push_back(std::move(violation));
  }

  void CheckShapeAndNesting() {
    std::map<std::uint64_t, const obs::SpanRecord*> by_id;
    std::uint64_t previous_id = 0;
    for (const obs::SpanRecord& span : spans_) {
      if (span.id <= previous_id) {
        Add(Rule::kTraceShape, &span, "", -1,
            util::Format("span ids not strictly ascending (%llu after %llu)",
                         static_cast<unsigned long long>(span.id),
                         static_cast<unsigned long long>(previous_id)));
      }
      previous_id = span.id;
      if (span.end_micros >= 0 && span.end_micros < span.start_micros) {
        Add(Rule::kTraceShape, &span, "", -1, "span ends before it starts");
      }
      by_id.emplace(span.id, &span);
    }
    for (const obs::SpanRecord& span : spans_) {
      if (span.parent_id == 0) continue;
      const auto parent_it = by_id.find(span.parent_id);
      if (parent_it == by_id.end() || span.parent_id >= span.id) {
        Add(Rule::kSpanNesting, &span, "", -1,
            util::Format("parent span %llu missing or not earlier in trace",
                         static_cast<unsigned long long>(span.parent_id)));
        continue;
      }
      const obs::SpanRecord& parent = *parent_it->second;
      if (span.start_micros < parent.start_micros) {
        Add(Rule::kSpanNesting, &span, "", -1,
            "span starts before its parent");
      }
      // PSD-step containment: anything recorded directly under a step span
      // must close before the step does, or the step's latency attribution
      // (and the paper's "where does a step go" question) is wrong.
      if (parent.category == "step" && parent.end_micros >= 0 &&
          span.end_micros > parent.end_micros) {
        Add(Rule::kSpanNesting, &span, "", -1,
            util::Format("span ends after its PSD-step parent %llu",
                         static_cast<unsigned long long>(parent.id)));
      }
    }
  }

  void ReplayTransition(const obs::SpanRecord& span) {
    const std::string* txn = FindTag(span, "txn");
    const std::string* endpoint = FindTag(span, "endpoint");
    const std::string* from_name = FindTag(span, "from");
    const std::string* to_name = FindTag(span, "to");
    std::int64_t step = -1, at = -1, timeout = -1;
    if (txn == nullptr || endpoint == nullptr || from_name == nullptr ||
        to_name == nullptr || !FindTagInt(span, "step", &step) ||
        !FindTagInt(span, "at", &at) ||
        !FindTagInt(span, "timeout", &timeout)) {
      Add(Rule::kTraceShape, &span, txn == nullptr ? "" : *txn, -1,
          "ntcp.txn event is missing required tags");
      return;
    }
    endpoints_.insert(*endpoint);
    CheckEndpointAlive(span, *endpoint, *txn, step);
    const std::string* cause = FindTag(span, "cause");
    if (cause != nullptr && *cause == "crash-recovery") {
      // Crash-marks are the only transitions recovery may emit, and they
      // are exactly the executing -> failed edge of docs/RECOVERY.md R2.
      if (!ever_crashed_.contains(*endpoint)) {
        Add(Rule::kCrashConsistency, &span, *txn, step,
            "crash-recovery transition from an endpoint that never crashed");
      }
      if (*from_name != "executing" || *to_name != "failed") {
        Add(Rule::kCrashConsistency, &span, *txn, step,
            "crash-recovery transition must be executing -> failed, got " +
                *from_name + " -> " + *to_name);
      }
    }
    const std::optional<TransactionState> to = StateFromName(*to_name);
    if (!to.has_value()) {
      Add(Rule::kTraceShape, &span, *txn, step,
          "unknown target state \"" + *to_name + "\"");
      return;
    }
    TxnTracker& tracker = txns_[*txn];

    if (*from_name == "none") {
      if (*to != TransactionState::kProposed) {
        Add(Rule::kIllegalTransition, &span, *txn, step,
            "creation event must target \"proposed\", got \"" + *to_name +
                "\"");
        return;
      }
      if (tracker.created) {
        Add(Rule::kIllegalTransition, &span, *txn, step,
            "transaction created twice");
        return;
      }
      tracker.created = true;
      tracker.state = TransactionState::kProposed;
      tracker.proposed_at = at;
      tracker.step = step;
      tracker.last_span = span.id;
      if (step >= 0) {
        proposals_by_endpoint_[*endpoint].push_back({step, span.id, *txn});
      }
      return;
    }

    const std::optional<TransactionState> from = StateFromName(*from_name);
    if (!from.has_value()) {
      Add(Rule::kTraceShape, &span, *txn, step,
          "unknown source state \"" + *from_name + "\"");
      return;
    }
    if (!tracker.created) {
      Add(Rule::kIllegalTransition, &span, *txn, step,
          "transition without a prior creation event");
      // Track the claimed state so one missing creation does not cascade.
      tracker.created = true;
      tracker.state = *to;
      tracker.step = step;
    } else if (*from != tracker.state) {
      Add(Rule::kIllegalTransition, &span, *txn, step,
          util::Format(
              "event claims from=%s but the transaction was in %s",
              from_name->c_str(),
              std::string(ntcp::TransactionStateName(tracker.state)).c_str()));
      // The event contradicts the replayed state: keep the replayed state.
    } else if (!ntcp::IsLegalTransition(*from, *to)) {
      Add(Rule::kIllegalTransition, &span, *txn, step,
          "illegal Fig. 1 transition " + *from_name + " -> " + *to_name);
    } else {
      tracker.state = *to;
      tracker.last_span = span.id;
    }

    if (*to == TransactionState::kExecuting) {
      if (++tracker.executing_entries == 2) {
        Add(Rule::kDuplicateExecute, &span, *txn, step,
            "transaction entered kExecuting a second time (at-most-once)");
      }
    }
    if (*to == TransactionState::kExpired) {
      CheckExpiry(span, *txn, step, at, timeout, tracker);
    }
  }

  void CheckExpiry(const obs::SpanRecord& span, const std::string& txn,
                   std::int64_t step, std::int64_t expired_at,
                   std::int64_t timeout, const TxnTracker& tracker) {
    if (timeout <= 0) {
      Add(Rule::kBogusExpiry, &span, txn, step,
          "transaction expired but its proposal had no timeout window");
      return;
    }
    if (tracker.proposed_at < 0) return;  // creation missing: reported above
    const std::int64_t deadline = tracker.proposed_at + timeout;
    if (expired_at <= deadline) {
      Add(Rule::kBogusExpiry, &span, txn, step,
          util::Format("expired at %lld but the proposal window ran to %lld",
                       static_cast<long long>(expired_at),
                       static_cast<long long>(deadline)));
    }
  }

  void ReplayDuplicate(const obs::SpanRecord& span) {
    const std::string* txn = FindTag(span, "txn");
    const std::string* endpoint = FindTag(span, "endpoint");
    const std::string* kind = FindTag(span, "kind");
    if (txn == nullptr || endpoint == nullptr || kind == nullptr) {
      Add(Rule::kTraceShape, &span, txn == nullptr ? "" : *txn, -1,
          "ntcp.dup event is missing required tags");
      return;
    }
    endpoints_.insert(*endpoint);
    CheckEndpointAlive(span, *endpoint, *txn, -1);
    const auto it = txns_.find(*txn);
    if (*kind == "propose-mismatch") {
      Add(Rule::kAtMostOnce, &span, *txn, it == txns_.end() ? -1 : it->second.step,
          "transaction id reused with a different proposal");
      return;
    }
    if (it == txns_.end() || !it->second.created) {
      Add(Rule::kAtMostOnce, &span, *txn, -1,
          "duplicate " + *kind + " for a transaction never created");
      return;
    }
    if (*kind == "execute" &&
        it->second.state != TransactionState::kCompleted &&
        it->second.state != TransactionState::kFailed) {
      Add(Rule::kAtMostOnce, &span, *txn, it->second.step,
          "duplicate execute served from cache while the transaction was in " +
              std::string(ntcp::TransactionStateName(it->second.state)));
    }
  }

  void CheckEndpointAlive(const obs::SpanRecord& span,
                          const std::string& endpoint, const std::string& txn,
                          std::int64_t step) {
    if (dead_endpoints_.contains(endpoint)) {
      Add(Rule::kCrashConsistency, &span, txn, step,
          "protocol event from crashed endpoint " + endpoint);
    }
  }

  void ReplayCrash(const obs::SpanRecord& span) {
    const std::string* endpoint = FindTag(span, "endpoint");
    if (endpoint == nullptr) {
      Add(Rule::kTraceShape, &span, "", -1,
          "site.crash event is missing its endpoint tag");
      return;
    }
    if (!dead_endpoints_.insert(*endpoint).second) {
      Add(Rule::kCrashConsistency, &span, "", -1,
          "site.crash for already-dead endpoint " + *endpoint);
    }
    ever_crashed_.insert(*endpoint);
  }

  void ReplayRestart(const obs::SpanRecord& span) {
    const std::string* endpoint = FindTag(span, "endpoint");
    if (endpoint == nullptr) {
      Add(Rule::kTraceShape, &span, "", -1,
          "site.restart event is missing its endpoint tag");
      return;
    }
    if (dead_endpoints_.erase(*endpoint) == 0) {
      Add(Rule::kCrashConsistency, &span, "", -1,
          "site.restart for endpoint " + *endpoint + " which never crashed");
    }
  }

  void ReplayRecover(const obs::SpanRecord& span) {
    const std::string* endpoint = FindTag(span, "endpoint");
    if (endpoint == nullptr) {
      Add(Rule::kTraceShape, &span, "", -1,
          "ntcp.recover event is missing its endpoint tag");
      return;
    }
    // Recovery runs in the *new* incarnation, after site.restart.
    if (dead_endpoints_.contains(*endpoint)) {
      Add(Rule::kCrashConsistency, &span, "", -1,
          "ntcp.recover from still-dead endpoint " + *endpoint);
    }
    if (!ever_crashed_.contains(*endpoint)) {
      Add(Rule::kCrashConsistency, &span, "", -1,
          "ntcp.recover from endpoint " + *endpoint + " which never crashed");
    }
  }

  void CheckTerminal() {
    for (const auto& [txn, tracker] : txns_) {
      if (!tracker.created) continue;
      if (!ntcp::IsTerminal(tracker.state)) {
        Violation violation;
        violation.rule = Rule::kNonTerminal;
        violation.transaction_id = txn;
        violation.step = tracker.step;
        violation.span_id = tracker.last_span;
        violation.message =
            "transaction ends the trace in non-terminal state " +
            std::string(ntcp::TransactionStateName(tracker.state));
        report_.violations.push_back(std::move(violation));
      }
    }
  }

  void CheckStepMonotonicity() {
    for (const auto& [endpoint, proposals] : proposals_by_endpoint_) {
      for (std::size_t i = 1; i < proposals.size(); ++i) {
        const Proposed& previous = proposals[i - 1];
        const Proposed& current = proposals[i];
        const obs::SpanRecord* span = SpanById(current.span_id);
        if (current.step < previous.step) {
          Add(Rule::kStepMonotonicity, span, current.txn, current.step,
              util::Format("%s: step %lld proposed after step %lld (reorder)",
                           endpoint.c_str(),
                           static_cast<long long>(current.step),
                           static_cast<long long>(previous.step)));
        } else if (current.step > previous.step + 1) {
          Add(Rule::kStepMonotonicity, span, current.txn, current.step,
              util::Format("%s: step %lld follows step %lld (skip)",
                           endpoint.c_str(),
                           static_cast<long long>(current.step),
                           static_cast<long long>(previous.step)));
        }
      }
    }
  }

  const obs::SpanRecord* SpanById(std::uint64_t id) const {
    for (const obs::SpanRecord& span : spans_) {
      if (span.id == id) return &span;
    }
    return nullptr;
  }

  struct Proposed {
    std::int64_t step;
    std::uint64_t span_id;
    std::string txn;
  };

  const std::vector<obs::SpanRecord>& spans_;
  LintReport report_;
  std::map<std::string, TxnTracker> txns_;
  std::map<std::string, std::vector<Proposed>> proposals_by_endpoint_;
  std::set<std::string> endpoints_;
  std::set<std::string> dead_endpoints_;  // crashed, not yet restarted
  std::set<std::string> ever_crashed_;
};

}  // namespace

std::string_view RuleName(Rule rule) {
  switch (rule) {
    case Rule::kTraceShape: return "trace-shape";
    case Rule::kIllegalTransition: return "illegal-transition";
    case Rule::kDuplicateExecute: return "duplicate-execute";
    case Rule::kAtMostOnce: return "at-most-once";
    case Rule::kNonTerminal: return "non-terminal";
    case Rule::kStepMonotonicity: return "step-monotonicity";
    case Rule::kBogusExpiry: return "bogus-expiry";
    case Rule::kSpanNesting: return "span-nesting";
    case Rule::kCrashConsistency: return "crash-consistency";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::string out = "[";
  out += RuleName(rule);
  out += "]";
  if (!transaction_id.empty()) out += " txn=" + transaction_id;
  if (step >= 0) out += " step=" + std::to_string(step);
  if (span_id != 0) out += " span=#" + std::to_string(span_id);
  if (line > 0) out += " line=" + std::to_string(line);
  out += ": " + message;
  return out;
}

std::string LintReport::ToString() const {
  std::string out = util::Format(
      "%zu spans, %zu protocol events, %zu transactions across %zu "
      "endpoints: %zu violation(s)",
      stats.spans, stats.protocol_events, stats.transactions, stats.endpoints,
      violations.size());
  for (const Violation& violation : violations) {
    out += "\n  " + violation.ToString();
  }
  return out;
}

LintReport LintSpans(const std::vector<obs::SpanRecord>& spans) {
  return Linter(spans).Run();
}

util::Result<LintReport> LintTraceText(const std::string& text) {
  NEES_ASSIGN_OR_RETURN(std::vector<obs::SpanRecord> spans,
                        obs::ParseJsonLines(text));
  LintReport report = LintSpans(spans);

  // Spans parse one per non-blank line, in order: recover line numbers so a
  // violation points straight into the trace file.
  std::map<std::uint64_t, int> line_of_span;
  int line_number = 0;
  std::size_t span_index = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_number;
    if (util::Trim(line).empty()) continue;
    if (span_index < spans.size()) {
      line_of_span.emplace(spans[span_index].id, line_number);
      ++span_index;
    }
  }
  for (Violation& violation : report.violations) {
    const auto it = line_of_span.find(violation.span_id);
    if (it != line_of_span.end()) violation.line = it->second;
  }
  return report;
}

util::Result<LintReport> LintTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFound("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return util::DataLoss("error reading trace file: " + path);
  }
  return LintTraceText(buffer.str());
}

std::vector<std::string> CheckExactlyOncePerStep(
    const std::vector<obs::SpanRecord>& spans,
    const std::vector<std::string>& endpoints, std::size_t steps,
    std::uint64_t max_reattempts) {
  const std::string_view executing =
      ntcp::TransactionStateName(TransactionState::kExecuting);
  std::map<std::pair<std::string, std::int64_t>, std::uint64_t> counts;
  for (const obs::SpanRecord& span : spans) {
    if (span.name != kTxnEvent) continue;
    const std::string* to = FindTag(span, "to");
    const std::string* endpoint = FindTag(span, "endpoint");
    std::int64_t step = -1;
    if (to == nullptr || endpoint == nullptr ||
        !FindTagInt(span, "step", &step) || *to != executing) {
      continue;
    }
    ++counts[{*endpoint, step}];
  }
  std::vector<std::string> violations;
  for (const std::string& endpoint : endpoints) {
    for (std::size_t step = 0; step < steps; ++step) {
      const auto it = counts.find({endpoint, static_cast<std::int64_t>(step)});
      const std::uint64_t count = it == counts.end() ? 0 : it->second;
      if (count == 0) {
        violations.push_back(util::Format(
            "step %zu never entered kExecuting at %s despite run completion",
            step, endpoint.c_str()));
      } else if (count > 1 + max_reattempts) {
        violations.push_back(util::Format(
            "step %zu entered kExecuting %llu times at %s (max allowed "
            "1 + %llu re-proposals)",
            step, static_cast<unsigned long long>(count), endpoint.c_str(),
            static_cast<unsigned long long>(max_reattempts)));
      }
    }
  }
  return violations;
}

}  // namespace nees::check
