// Deliberate trace corruptions for exercising the conformance checker.
//
// Each helper takes a lint-clean span stream (e.g. a hybrid MOST run) and
// seeds exactly one class of protocol damage; bench_lint and the unit tests
// assert that nees-lint reports precisely the expected rules and nothing
// else. The helpers fail (kFailedPrecondition) when the input trace lacks
// the pattern they need to corrupt — linting garbage would prove nothing.
#pragma once

#include <vector>

#include "obs/trace.h"
#include "util/result.h"

namespace nees::check {

/// Appends a copy of the first executing->completed event rewritten as
/// completed->accepted: a transition out of a terminal state that Fig. 1
/// forbids. Expected report: exactly one kIllegalTransition.
util::Result<std::vector<obs::SpanRecord>> SeedIllegalTransition(
    std::vector<obs::SpanRecord> spans);

/// Appends a copy of the first accepted->executing event, as if the server
/// re-ran a transaction instead of serving the cached result. Expected
/// report: kIllegalTransition (the replayed state is already terminal) plus
/// kDuplicateExecute (second entry into kExecuting).
util::Result<std::vector<obs::SpanRecord>> SeedDuplicateExecute(
    std::vector<obs::SpanRecord> spans);

/// Erases every protocol event of one mid-experiment transaction at one
/// endpoint, so that endpoint's proposal sequence jumps straight from step
/// s-1 to s+1. Expected report: exactly one kStepMonotonicity.
util::Result<std::vector<obs::SpanRecord>> SeedSkippedStep(
    std::vector<obs::SpanRecord> spans);

/// Appends a synthetic transaction that is proposed with a 60 s window and
/// marked kExpired 1 ms later — an expiry the sim clock cannot justify.
/// Expected report: exactly one kBogusExpiry.
std::vector<obs::SpanRecord> SeedBogusExpiry(
    std::vector<obs::SpanRecord> spans);

}  // namespace nees::check
