// MS-PSDS simulation coordinator (§3, Fig. 5): "repeatedly issues a set of
// NTCP proposals based on current simulation state, collects information
// about the resulting state of all the substructures, and, based on that
// resulting state, computes the next set of NTCP commands".
//
// Per pseudo-dynamic time step:
//   1. PROPOSE to every site (negotiation: all sites must accept the step's
//      targets before anything anywhere moves),
//   2. EXECUTE at every site, collecting measured restoring forces,
//   3. advance the central-difference integration with the measured forces.
//
// Two fault-handling policies reproduce the paper's §3.4 result:
//   * kNaive          — one RPC attempt, no re-proposal: any transient
//                       network failure terminates the experiment (the
//                       public MOST run died at step 1493/1500 this way);
//   * kFaultTolerant  — transparent RPC retries (safe: NTCP is
//                       at-most-once) plus bounded re-proposal under fresh
//                       transaction ids when a transaction is lost to a
//                       definitive error. The dry run completed with this.
//
// The coordinator checkpoints (step, d, d_prev), so a run killed by the
// naive policy can restart where it stopped.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "ntcp/client.h"
#include "structural/integrator.h"
#include "util/clock.h"
#include "util/stats.h"
#include "wal/wal.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::psd {

/// One substructure's binding: which NTCP server, which control point, and
/// which global DOFs of the reduced model it carries.
struct SubstructureSite {
  std::string name;             // "UIUC", "CU", "NCSA"
  std::string ntcp_endpoint;    // "ntcp.uiuc"
  std::string control_point;    // "column-top"
  std::vector<std::size_t> dofs;  // global DOF indices (size = CP DOF count)
};

enum class FaultPolicy { kNaive, kFaultTolerant };

/// How each phase's NTCP calls are fanned out to the sites.
enum class StepEngine {
  /// One site after another on the coordinator thread; a phase costs
  /// `sites` round trips. The §3 baseline.
  kSequential,
  /// One worker thread per additional site per phase (the E11b
  /// optimization): ~1 RTT per phase, but ~2 x sites threads per step.
  kThreadPerSite,
  /// Completion-driven: issue every site's request, then multiplex all the
  /// completions (and retry backoff timers) on the coordinator thread.
  /// ~1 RTT per phase with zero thread creation (the §5 near-real-time
  /// path). In kImmediate delivery this degenerates to the sequential
  /// order, so results are bit-identical to kSequential.
  kAsync,
};

/// Which pseudo-dynamic scheme drives the stepping loop.
enum class PsdIntegrator {
  kCentralDifference,   // explicit; dt < 2/omega_max
  kOperatorSplitting,   // unconditionally stable; needs initial stiffness
};

struct CoordinatorConfig {
  std::string run_id = "run";
  structural::Matrix mass;
  structural::Matrix damping;
  structural::Vector iota;
  structural::GroundMotion motion;
  std::vector<SubstructureSite> sites;

  FaultPolicy fault_policy = FaultPolicy::kFaultTolerant;
  ntcp::RetryPolicy retry;        // per-RPC policy (ignored under kNaive)
  int max_step_attempts = 3;      // re-proposals per step (kFaultTolerant)
  std::int64_t proposal_timeout_micros = 60'000'000;
  /// Fan-out strategy per phase; results are identical across engines
  /// (only wall time and threading behavior change).
  StepEngine step_engine = StepEngine::kAsync;
  /// kAsync only: stage each phase's per-site requests on the shared
  /// RpcClient (BeginBatch/FlushBatch) so the fan-out leaves the
  /// coordinator as one framed message per site per phase instead of one
  /// per call. Wire format for a single staged call is identical to an
  /// unbatched request, and the per-site resolution order is unchanged, so
  /// histories stay bit-identical to the unbatched engines.
  bool batch_site_rpcs = true;

  PsdIntegrator integrator = PsdIntegrator::kCentralDifference;
  /// Initial stiffness estimate K0; required (square, n x n) for
  /// kOperatorSplitting, ignored otherwise.
  structural::Matrix initial_stiffness;

  /// Optional observability: one "psd.step" span per time step, with
  /// per-site propose/execute child spans, propagated to the NTCP clients.
  /// Must outlive the coordinator.
  obs::Tracer* tracer = nullptr;

  /// Optional credential-refresh factory: given a site's NTCP endpoint,
  /// returns the hook installed via NtcpClient::set_auth_refresher (or an
  /// empty function for none). Wired by deployments whose sites sit behind
  /// GSI auth, so a proxy credential expiring mid-run re-handshakes and
  /// retries instead of killing the experiment.
  std::function<std::function<util::Status()>(const std::string&)>
      auth_refresher;
};

struct SiteStats {
  std::string name;
  std::uint64_t proposals = 0;
  std::uint64_t executes = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t step_reattempts = 0;
  util::SampleStats step_micros;  // time spent on this site per step
};

struct RunReport {
  bool completed = false;
  std::size_t steps_completed = 0;  // successfully executed PSD steps
  std::size_t total_steps = 0;
  util::Status failure;  // why the run stopped, if not completed
  structural::TimeHistory history;
  std::vector<SiteStats> site_stats;
  std::uint64_t transient_faults_recovered = 0;
  double wall_seconds = 0.0;
  /// Worker threads created across the run (0 under kSequential/kAsync —
  /// the async engine's "zero thread creation per step" claim is assertable
  /// from this counter).
  std::uint64_t threads_spawned = 0;
  /// Wall micros per propose-all / execute-all phase (one sample per
  /// phase attempt), for the E13 latency breakdown.
  util::SampleStats propose_phase_micros;
  util::SampleStats execute_phase_micros;
  /// WAL activity this run (0 when no log is attached).
  std::uint64_t wal_records = 0;
  std::uint64_t wal_sync_failures = 0;
};

struct Checkpoint {
  std::size_t step = 0;
  structural::Vector d;
  structural::Vector d_prev;
  structural::Vector v;  // operator-splitting state (empty under CD)
  structural::Vector a;
  structural::TimeHistory history;
};

/// What SimulationCoordinator::AttachWal rebuilt from the log
/// (docs/RECOVERY.md, step R3).
struct CoordinatorWalRecovery {
  std::size_t records_replayed = 0;
  std::size_t steps_recovered = 0;       // completed steps restored
  std::size_t site_outcomes_replayed = 0;
  /// True when the crash interrupted a step: per-site outcomes exist past
  /// the last step boundary. The step is simply re-driven from attempt 1 —
  /// the deterministic transaction ids make re-proposal a duplicate at any
  /// site that already accepted, and re-execute is served from the
  /// at-most-once result cache, so the specimen never moves twice.
  bool mid_step = false;
};

class SimulationCoordinator {
 public:
  /// `rpc` carries the coordinator's identity/auth token and must outlive
  /// the coordinator.
  SimulationCoordinator(CoordinatorConfig config, net::RpcClient* rpc,
                        util::Clock* clock = &util::SystemClock::Instance());

  /// Observer invoked after each successful step with the commanded
  /// displacement and the per-site measured forces (drives NSDS streaming
  /// and the DAQ in the MOST assembly).
  using StepObserver = std::function<void(
      std::size_t step, const structural::Vector& displacement,
      const std::vector<ntcp::TransactionResult>& site_results)>;
  void SetStepObserver(StepObserver observer);

  /// Runs from the current state to completion or first unrecovered fault.
  RunReport Run();

  /// Executes exactly one step; Ok(false) when the record is exhausted.
  util::Result<bool> ExecuteStep();

  Checkpoint GetCheckpoint() const;
  util::Status Restore(const Checkpoint& checkpoint);

  /// Attaches a write-ahead log (docs/RECOVERY.md). On an empty log, stamps
  /// a run-begin record binding the log to (run_id, total steps, DOF count).
  /// On a non-empty log, validates that binding, replays every completed
  /// step boundary back into (step_, d, d_prev, v, a, history), and reports
  /// whether the crash landed mid-step. From then on every completed step
  /// is logged and synced before the coordinator advances. Call once,
  /// before Run(); `log` must outlive the coordinator.
  util::Result<CoordinatorWalRecovery> AttachWal(wal::Log* log);

  const structural::TimeHistory& history() const { return history_; }
  std::size_t current_step() const { return step_; }
  std::vector<SiteStats> site_stats() const;
  std::uint64_t threads_spawned() const { return threads_spawned_; }

 private:
  util::Status EnsureInitialized();
  /// WAL helpers; no-ops when no log is attached. A step-complete record is
  /// synced (the coordinator's one fsync point per step); site outcomes ride
  /// until that sync — losing them is safe because a re-driven step is
  /// idempotent.
  void WalLogStepComplete();
  void WalLogSiteOutcome(const std::string& transaction_id,
                         const std::string& site, bool executed);
  void WalSync();
  /// One full propose-all / execute-all cycle for the current step; fills
  /// `forces` with the assembled restoring force vector.
  util::Status ForEachSite(
      const std::function<util::Status(std::size_t site)>& work);
  util::Status RunNtcpCycle(const structural::Vector& displacement,
                            structural::Vector& forces,
                            std::vector<ntcp::TransactionResult>& results);
  util::Status CycleOnce(int attempt, const structural::Vector& displacement,
                         structural::Vector& forces,
                         std::vector<ntcp::TransactionResult>& results);

  /// Completion-driven phases (StepEngine::kAsync): issue all sites'
  /// requests, then multiplex completions on the calling thread.
  /// `accepted` / `executed` record per-site success (char, not bool:
  /// the thread engine writes the same slots concurrently).
  util::Status ProposeAllAsync(const std::vector<std::string>& transaction_ids,
                               const structural::Vector& displacement,
                               std::vector<char>& accepted);
  util::Status ExecuteAllAsync(const std::vector<std::string>& transaction_ids,
                               std::vector<ntcp::TransactionResult>& results,
                               std::vector<char>& executed);

  CoordinatorConfig config_;
  net::RpcClient* rpc_;
  util::Clock* clock_;
  std::vector<std::unique_ptr<ntcp::NtcpClient>> clients_;
  std::vector<SiteStats> site_stats_;
  StepObserver observer_;

  util::Result<bool> StepCentralDifference(
      std::vector<ntcp::TransactionResult>& results);
  util::Result<bool> StepOperatorSplitting(
      std::vector<ntcp::TransactionResult>& results);

  bool initialized_ = false;
  std::uint64_t step_span_id_ = 0;  // open "psd.step" span (0 = none)
  structural::LuFactorization keff_lu_;  // CD effective stiffness
  structural::Matrix kback_;
  structural::Matrix two_m_;
  structural::LuFactorization meff_lu_;  // OS effective mass
  std::size_t step_ = 0;
  structural::Vector d_;
  structural::Vector d_prev_;
  structural::Vector v_;  // OS state
  structural::Vector a_;
  structural::TimeHistory history_;
  std::uint64_t transient_recovered_ = 0;
  std::uint64_t threads_spawned_ = 0;
  wal::Log* wal_ = nullptr;
  std::uint64_t wal_records_ = 0;
  std::uint64_t wal_sync_failures_ = 0;
  util::SampleStats propose_phase_micros_;
  util::SampleStats execute_phase_micros_;

  // Per-step scratch reused across steps: the strings, proposals, and op
  // slots keep their capacity, so the steady-state propose/execute path
  // allocates nothing in the coordinator itself. Only touched by the
  // coordinator thread (workers under kThreadPerSite read, never resize).
  std::vector<std::string> txn_ids_scratch_;
  std::vector<char> accepted_scratch_;
  std::vector<char> executed_scratch_;
  std::vector<ntcp::Proposal> proposal_scratch_;
  std::vector<ntcp::NtcpClient::AsyncOp> ops_scratch_;
  std::vector<std::uint64_t> site_spans_scratch_;
};

}  // namespace nees::psd
