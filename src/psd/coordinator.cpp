#include "psd/coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "check/invariant.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nees::psd {
namespace {

// Coordinator WAL record vocabulary (docs/RECOVERY.md, "Record grammar").
constexpr std::uint8_t kWalRunBegin = 1;      // run_id, total_steps, n
constexpr std::uint8_t kWalStepComplete = 2;  // step boundary + state vectors
constexpr std::uint8_t kWalSiteOutcome = 3;   // step, site, txn, executed

}  // namespace

// The Vector arithmetic operators live in nees::structural and are not
// found by ADL on std::vector<double>; pull them in explicitly.
using structural::operator+;
using structural::operator-;
using structural::operator*;

SimulationCoordinator::SimulationCoordinator(CoordinatorConfig config,
                                             net::RpcClient* rpc,
                                             util::Clock* clock)
    : config_(std::move(config)), rpc_(rpc), clock_(clock) {
  ntcp::RetryPolicy policy = config_.retry;
  if (config_.fault_policy == FaultPolicy::kNaive) {
    policy.max_attempts = 1;  // the un-hardened coordinator of §3.4
  }
  for (const SubstructureSite& site : config_.sites) {
    clients_.push_back(std::make_unique<ntcp::NtcpClient>(
        rpc_, site.ntcp_endpoint, policy, clock_));
    clients_.back()->set_tracer(config_.tracer);
    if (config_.auth_refresher) {
      clients_.back()->set_auth_refresher(
          config_.auth_refresher(site.ntcp_endpoint));
    }
    SiteStats stats;
    stats.name = site.name;
    site_stats_.push_back(std::move(stats));
  }
}

void SimulationCoordinator::SetStepObserver(StepObserver observer) {
  observer_ = std::move(observer);
}

util::Status SimulationCoordinator::EnsureInitialized() {
  if (initialized_) return util::OkStatus();
  const std::size_t n = config_.mass.rows();
  if (config_.damping.rows() != n || config_.iota.size() != n) {
    return util::InvalidArgument("mass/damping/iota dimension mismatch");
  }
  for (const SubstructureSite& site : config_.sites) {
    for (std::size_t dof : site.dofs) {
      if (dof >= n) {
        return util::InvalidArgument("site " + site.name +
                                     " references DOF out of range");
      }
    }
  }
  const double dt = config_.motion.dt_seconds;
  step_ = 0;
  d_.assign(n, 0.0);
  d_prev_.assign(n, 0.0);
  history_ = {};
  history_.dt_seconds = dt;
  history_.displacement.push_back(d_);
  history_.velocity.push_back(structural::Vector(n, 0.0));

  if (config_.integrator == PsdIntegrator::kCentralDifference) {
    const structural::Matrix keff = config_.mass * (1.0 / (dt * dt)) +
                                    config_.damping * (1.0 / (2.0 * dt));
    NEES_ASSIGN_OR_RETURN(keff_lu_,
                          structural::LuFactorization::Compute(keff));
    kback_ = config_.mass * (1.0 / (dt * dt)) -
             config_.damping * (1.0 / (2.0 * dt));
    two_m_ = config_.mass * (2.0 / (dt * dt));
    history_.acceleration.push_back(structural::Vector(n, 0.0));
  } else {
    if (config_.initial_stiffness.rows() != n ||
        config_.initial_stiffness.cols() != n) {
      return util::InvalidArgument(
          "operator splitting requires an n x n initial stiffness");
    }
    // Meff = M + gamma dt C + beta dt^2 K0, beta = 1/4, gamma = 1/2.
    const structural::Matrix meff =
        config_.mass + config_.damping * (0.5 * dt) +
        config_.initial_stiffness * (0.25 * dt * dt);
    NEES_ASSIGN_OR_RETURN(meff_lu_,
                          structural::LuFactorization::Compute(meff));
    v_.assign(n, 0.0);
    // At-rest start: a_0 = M^-1 f_0 with r(0) = 0.
    NEES_ASSIGN_OR_RETURN(structural::LuFactorization mass_lu,
                          structural::LuFactorization::Compute(config_.mass));
    const structural::Vector f0 =
        (config_.motion.accel.empty() ? 0.0 : -config_.motion.accel[0]) *
        (config_.mass * config_.iota);
    a_ = mass_lu.Solve(f0);
    history_.acceleration.push_back(a_);
  }
  initialized_ = true;
  return util::OkStatus();
}

util::Status SimulationCoordinator::ForEachSite(
    const std::function<util::Status(std::size_t site)>& work) {
  const std::size_t count = config_.sites.size();
  std::vector<util::Status> statuses(count);
  if (config_.step_engine != StepEngine::kThreadPerSite || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      statuses[i] = work(i);
    }
  } else {
    // One thread per site: NTCP rounds to independent sites overlap, so
    // the phase costs one round trip instead of `count`. Each thread only
    // touches its own client and its own stats slot.
    std::vector<std::thread> workers;
    for (std::size_t i = 1; i < count; ++i) {
      workers.emplace_back([&, i] { statuses[i] = work(i); });
    }
    threads_spawned_ += workers.size();
    statuses[0] = work(0);
    for (std::thread& worker : workers) worker.join();
  }
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return util::OkStatus();
}

util::Status SimulationCoordinator::ProposeAllAsync(
    const std::vector<std::string>& transaction_ids,
    const structural::Vector& displacement, std::vector<char>& accepted) {
  const std::size_t site_count = config_.sites.size();
  std::vector<ntcp::NtcpClient::AsyncOp>& ops = ops_scratch_;
  if (ops.size() != site_count) ops.resize(site_count);
  std::vector<std::uint64_t>& site_spans = site_spans_scratch_;
  site_spans.assign(site_count, 0);
  if (proposal_scratch_.size() != site_count) {
    proposal_scratch_.resize(site_count);
  }
  // Stage the whole fan-out, then flush it as one framed send per site.
  const bool batching = config_.batch_site_rpcs;
  if (batching) rpc_->BeginBatch();
  for (std::size_t i = 0; i < site_count; ++i) {
    const SubstructureSite& site = config_.sites[i];
    // Explicit span parenting: every site's spans are created from this one
    // thread, so the implicit per-thread span stack cannot tell them apart.
    if (config_.tracer != nullptr) {
      site_spans[i] = config_.tracer->BeginSpanId("site.propose",
                                                  "coordination",
                                                  step_span_id_);
      config_.tracer->AddTagById(site_spans[i], "site", site.name);
    }
    // The scratch proposal's strings and vectors keep their capacity from
    // the previous step, so refilling them allocates nothing.
    ntcp::Proposal& proposal = proposal_scratch_[i];
    proposal.transaction_id.assign(transaction_ids[i]);
    proposal.step_index = static_cast<std::int64_t>(step_);
    proposal.timeout_micros = config_.proposal_timeout_micros;
    if (proposal.actions.size() != 1) proposal.actions.resize(1);
    ntcp::ControlPointRequest& action = proposal.actions[0];
    action.control_point.assign(site.control_point);
    action.target_displacement.clear();
    for (std::size_t dof : site.dofs) {
      action.target_displacement.push_back(displacement[dof]);
    }
    action.target_force.clear();
    ops[i] = clients_[i]->ProposeAsync(proposal, site_spans[i]);
  }
  if (batching) rpc_->FlushBatch();
  ntcp::NtcpClient::AwaitAll(ops);

  util::Status first_error;
  for (std::size_t i = 0; i < site_count; ++i) {
    const SubstructureSite& site = config_.sites[i];
    site_stats_[i].step_micros.Add(
        static_cast<double>(ops[i].elapsed_micros()));
    ++site_stats_[i].proposals;
    const util::Status status = ntcp::NtcpClient::FinishPropose(ops[i]);
    if (config_.tracer != nullptr) config_.tracer->EndSpanId(site_spans[i]);
    if (status.ok()) {
      accepted[i] = 1;
    } else if (first_error.ok()) {
      first_error = util::Status(status.code(), "propose to " + site.name +
                                                    " failed: " +
                                                    status.message());
    }
  }
  return first_error;
}

util::Status SimulationCoordinator::ExecuteAllAsync(
    const std::vector<std::string>& transaction_ids,
    std::vector<ntcp::TransactionResult>& results,
    std::vector<char>& executed) {
  const std::size_t site_count = config_.sites.size();
  std::vector<ntcp::NtcpClient::AsyncOp>& ops = ops_scratch_;
  if (ops.size() != site_count) ops.resize(site_count);
  std::vector<std::uint64_t>& site_spans = site_spans_scratch_;
  site_spans.assign(site_count, 0);
  const bool batching = config_.batch_site_rpcs;
  if (batching) rpc_->BeginBatch();
  for (std::size_t i = 0; i < site_count; ++i) {
    if (config_.tracer != nullptr) {
      site_spans[i] = config_.tracer->BeginSpanId("site.execute",
                                                  "coordination",
                                                  step_span_id_);
      config_.tracer->AddTagById(site_spans[i], "site",
                                 config_.sites[i].name);
    }
    ops[i] = clients_[i]->ExecuteAsync(transaction_ids[i], site_spans[i]);
  }
  if (batching) rpc_->FlushBatch();
  ntcp::NtcpClient::AwaitAll(ops);

  util::Status first_error;
  for (std::size_t i = 0; i < site_count; ++i) {
    const SubstructureSite& site = config_.sites[i];
    site_stats_[i].step_micros.Add(
        static_cast<double>(ops[i].elapsed_micros()));
    ++site_stats_[i].executes;
    auto result = ntcp::NtcpClient::FinishExecute(ops[i]);
    if (config_.tracer != nullptr) config_.tracer->EndSpanId(site_spans[i]);
    if (!result.ok()) {
      if (first_error.ok()) {
        first_error = util::Status(result.status().code(),
                                   "execute at " + site.name + " failed: " +
                                       result.status().message());
      }
      continue;
    }
    const ntcp::ControlPointResult* cp = result->Find(site.control_point);
    if (cp == nullptr || cp->measured_force.size() != site.dofs.size()) {
      if (first_error.ok()) {
        first_error =
            util::Internal("invalid response from " + site.name +
                           ": missing/mis-sized control point result");
      }
      continue;
    }
    results[i] = std::move(*result);
    executed[i] = 1;
  }
  return first_error;
}

util::Status SimulationCoordinator::CycleOnce(
    int attempt, const structural::Vector& displacement,
    structural::Vector& forces,
    std::vector<ntcp::TransactionResult>& results) {
  const std::size_t n = config_.mass.rows();
  const std::size_t site_count = config_.sites.size();

  // Phase 1: propose to ALL sites before executing anywhere. A rejection
  // or loss here leaves every specimen untouched.
  std::vector<std::string>& transaction_ids = txn_ids_scratch_;
  if (transaction_ids.size() != site_count) {
    transaction_ids.resize(site_count);
  }
  std::vector<char>& accepted = accepted_scratch_;
  accepted.assign(site_count, 0);
  char suffix[64];
  std::snprintf(suffix, sizeof suffix, "-s%zu-a%d-", step_, attempt);
  for (std::size_t i = 0; i < site_count; ++i) {
    // Built in place ("<run>-s<step>-a<attempt>-<site>") so the scratch
    // string's capacity is reused step over step.
    std::string& id = transaction_ids[i];
    id.assign(config_.run_id);
    id.append(suffix);
    id.append(config_.sites[i].name);
  }
  const std::int64_t propose_t0 = clock_->NowMicros();
  util::Status proposed;
  if (config_.step_engine == StepEngine::kAsync) {
    proposed = ProposeAllAsync(transaction_ids, displacement, accepted);
  } else {
    proposed = ForEachSite([&](std::size_t i) {
      const SubstructureSite& site = config_.sites[i];
      // Explicit parent: under kThreadPerSite this lambda runs off-thread,
      // where the implicit stack would not see the step span.
      obs::Span site_span;
      if (config_.tracer != nullptr) {
        site_span = config_.tracer->StartSpanWithParent(
            "site.propose", "coordination", step_span_id_);
        site_span.AddTag("site", site.name);
      }
      ntcp::Proposal proposal;
      proposal.transaction_id = transaction_ids[i];
      proposal.step_index = static_cast<std::int64_t>(step_);
      proposal.timeout_micros = config_.proposal_timeout_micros;
      ntcp::ControlPointRequest action;
      action.control_point = site.control_point;
      for (std::size_t dof : site.dofs) {
        action.target_displacement.push_back(displacement[dof]);
      }
      proposal.actions.push_back(std::move(action));

      const util::Stopwatch watch;
      const util::Status status = clients_[i]->Propose(proposal);
      site_stats_[i].step_micros.Add(
          static_cast<double>(watch.ElapsedMicros()));
      ++site_stats_[i].proposals;
      if (status.ok()) {
        accepted[i] = 1;
        return status;
      }
      return util::Status(status.code(), "propose to " + site.name +
                                             " failed: " + status.message());
    });
  }
  propose_phase_micros_.Add(
      static_cast<double>(clock_->NowMicros() - propose_t0));
  if (!proposed.ok()) {
    // §2.1: "If any of the requested proposals is rejected, the client may
    // send a request to cancel the transaction." Release the accepted
    // transactions so a later attempt starts from a clean table.
    for (std::size_t i = 0; i < site_count; ++i) {
      if (accepted[i]) (void)clients_[i]->Cancel(transaction_ids[i]);
    }
    return proposed;
  }

  // Phase 2: execute everywhere and collect measured forces.
  results.assign(site_count, ntcp::TransactionResult{});
  std::vector<char>& executed = executed_scratch_;
  executed.assign(site_count, 0);
  const std::int64_t execute_t0 = clock_->NowMicros();
  util::Status exec_status;
  if (config_.step_engine == StepEngine::kAsync) {
    exec_status = ExecuteAllAsync(transaction_ids, results, executed);
  } else {
    exec_status = ForEachSite([&](std::size_t i) {
      const SubstructureSite& site = config_.sites[i];
      obs::Span site_span;
      if (config_.tracer != nullptr) {
        site_span = config_.tracer->StartSpanWithParent(
            "site.execute", "coordination", step_span_id_);
        site_span.AddTag("site", site.name);
      }
      const util::Stopwatch watch;
      auto result = clients_[i]->Execute(transaction_ids[i]);
      site_stats_[i].step_micros.Add(
          static_cast<double>(watch.ElapsedMicros()));
      ++site_stats_[i].executes;
      if (!result.ok()) {
        return util::Status(result.status().code(),
                            "execute at " + site.name + " failed: " +
                                result.status().message());
      }
      const ntcp::ControlPointResult* cp = result->Find(site.control_point);
      if (cp == nullptr || cp->measured_force.size() != site.dofs.size()) {
        return util::Internal("invalid response from " + site.name +
                              ": missing/mis-sized control point result");
      }
      results[i] = std::move(*result);
      executed[i] = 1;
      return util::OkStatus();
    });
  }
  execute_phase_micros_.Add(
      static_cast<double>(clock_->NowMicros() - execute_t0));
  for (std::size_t i = 0; i < site_count; ++i) {
    WalLogSiteOutcome(transaction_ids[i], config_.sites[i].name,
                      executed[i] != 0);
  }
  if (!exec_status.ok()) {
    // A failed execute phase abandons this attempt, and the re-proposal
    // runs under fresh transaction ids — so cancel the accepted-but-not-
    // executed transactions here, exactly like the propose-failure path.
    // Without this they sit in the servers' tables until expiry. A site
    // that completed server-side but lost its reply rejects the cancel
    // (kCompleted is terminal), which is harmless best-effort cleanup.
    for (std::size_t i = 0; i < site_count; ++i) {
      if (accepted[i] && !executed[i]) {
        (void)clients_[i]->Cancel(transaction_ids[i]);
      }
    }
    return exec_status;
  }

  // Assemble the restoring force vector on the coordinator thread.
  forces.assign(n, 0.0);
  for (std::size_t i = 0; i < site_count; ++i) {
    const SubstructureSite& site = config_.sites[i];
    const ntcp::ControlPointResult* cp =
        results[i].Find(site.control_point);
    for (std::size_t k = 0; k < site.dofs.size(); ++k) {
      forces[site.dofs[k]] += cp->measured_force[k];
    }
  }
  NEES_CHECK_INVARIANT(
      std::all_of(forces.begin(), forces.end(),
                  [](double f) { return std::isfinite(f); }),
      "assembled restoring forces must be finite before integration");
  return util::OkStatus();
}

util::Status SimulationCoordinator::RunNtcpCycle(
    const structural::Vector& displacement, structural::Vector& forces,
    std::vector<ntcp::TransactionResult>& results) {
  const int max_attempts =
      config_.fault_policy == FaultPolicy::kFaultTolerant
          ? std::max(config_.max_step_attempts, 1)
          : 1;
  util::Status last = util::Internal("step attempt loop did not run");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    last = CycleOnce(attempt, displacement, forces, results);
    if (last.ok()) {
      if (attempt > 1) ++transient_recovered_;
      return last;
    }
    // Configuration/policy errors will not improve with a new transaction.
    if (last.code() == util::ErrorCode::kPolicyViolation ||
        last.code() == util::ErrorCode::kPermissionDenied ||
        last.code() == util::ErrorCode::kInvalidArgument ||
        last.code() == util::ErrorCode::kSafetyInterlock) {
      return last;
    }
    if (attempt < max_attempts) {
      NEES_LOG_WARN("psd.coordinator")
          << "step " << step_ << " attempt " << attempt
          << " failed (" << last.ToString() << "); re-proposing";
      for (SiteStats& stats : site_stats_) ++stats.step_reattempts;
    }
  }
  return last;
}

util::Result<bool> SimulationCoordinator::StepCentralDifference(
    std::vector<ntcp::TransactionResult>& results) {
  structural::Vector forces;
  NEES_RETURN_IF_ERROR(RunNtcpCycle(d_, forces, results));

  // Central-difference update with the *measured* restoring forces.
  const std::int64_t integrate_t0 =
      config_.tracer != nullptr ? clock_->NowMicros() : 0;
  const double dt = config_.motion.dt_seconds;
  const structural::Vector f =
      -config_.motion.accel[step_] * (config_.mass * config_.iota);
  const structural::Vector rhs =
      f - forces + two_m_ * d_ - kback_ * d_prev_;
  structural::Vector d_next = keff_lu_.Solve(rhs);
  if (config_.tracer != nullptr) {
    config_.tracer->RecordInterval(step_span_id_, "psd.integrate",
                                   "integrate", integrate_t0,
                                   clock_->NowMicros());
  }

  const structural::Vector v = (1.0 / (2.0 * dt)) * (d_next - d_prev_);
  const structural::Vector a =
      (1.0 / (dt * dt)) * (d_next - 2.0 * d_ + d_prev_);

  d_prev_ = d_;
  d_ = std::move(d_next);
  history_.displacement.push_back(d_);
  history_.velocity.push_back(v);
  history_.acceleration.push_back(a);
  ++step_;
  WalLogStepComplete();

  if (observer_) observer_(step_ - 1, d_prev_, results);
  return true;
}

util::Result<bool> SimulationCoordinator::StepOperatorSplitting(
    std::vector<ntcp::TransactionResult>& results) {
  const double dt = config_.motion.dt_seconds;
  constexpr double beta = 0.25;
  constexpr double gamma = 0.5;

  // Explicit predictor: the displacement commanded to the substructures.
  const structural::Vector d_tilde =
      d_ + dt * v_ + (dt * dt * (0.5 - beta)) * a_;
  const structural::Vector v_tilde = v_ + (dt * (1.0 - gamma)) * a_;

  structural::Vector forces;
  NEES_RETURN_IF_ERROR(RunNtcpCycle(d_tilde, forces, results));

  const std::int64_t integrate_t0 =
      config_.tracer != nullptr ? clock_->NowMicros() : 0;
  const structural::Vector f =
      -config_.motion.accel[step_ + 1] * (config_.mass * config_.iota);
  const structural::Vector rhs = f - config_.damping * v_tilde - forces;
  const structural::Vector a_next = meff_lu_.Solve(rhs);
  if (config_.tracer != nullptr) {
    config_.tracer->RecordInterval(step_span_id_, "psd.integrate",
                                   "integrate", integrate_t0,
                                   clock_->NowMicros());
  }

  d_prev_ = d_;
  d_ = d_tilde + (beta * dt * dt) * a_next;
  v_ = v_tilde + (gamma * dt) * a_next;
  a_ = a_next;
  history_.displacement.push_back(d_);
  history_.velocity.push_back(v_);
  history_.acceleration.push_back(a_);
  ++step_;
  WalLogStepComplete();

  if (observer_) observer_(step_ - 1, d_tilde, results);
  return true;
}

util::Result<bool> SimulationCoordinator::ExecuteStep() {
  NEES_RETURN_IF_ERROR(EnsureInitialized());
  NEES_CHECK_INVARIANT(history_.displacement.size() == step_ + 1,
                       "history must hold exactly one record per step at a "
                       "step boundary");
  if (step_ + 1 >= config_.motion.steps()) return false;
  obs::Span step_span;
  step_span_id_ = 0;
  if (config_.tracer != nullptr) {
    step_span = config_.tracer->StartSpan("psd.step", "step");
    step_span.AddTag("step", std::to_string(step_));
    step_span_id_ = step_span.id();
  }
  std::vector<ntcp::TransactionResult> results;
  util::Result<bool> advanced =
      config_.integrator == PsdIntegrator::kCentralDifference
          ? StepCentralDifference(results)
          : StepOperatorSplitting(results);
  if (config_.tracer != nullptr) {
    config_.tracer->metrics().Increment(advanced.ok() ? "psd.steps"
                                                      : "psd.step_failures");
  }
  if (advanced.ok() && *advanced) {
    NEES_CHECK_INVARIANT(history_.displacement.size() == step_ + 1,
                         "a completed step must append exactly one "
                         "displacement record");
  }
  step_span_id_ = 0;
  return advanced;
}

RunReport SimulationCoordinator::Run() {
  RunReport report;
  report.total_steps = config_.motion.steps() == 0
                           ? 0
                           : config_.motion.steps() - 1;
  const util::Stopwatch watch;
  for (;;) {
    auto advanced = ExecuteStep();
    if (!advanced.ok()) {
      report.failure = advanced.status();
      NEES_LOG_ERROR("psd.coordinator")
          << config_.run_id << " terminated at step " << step_ << "/"
          << report.total_steps << ": " << report.failure.ToString();
      break;
    }
    if (!*advanced) {
      report.completed = true;
      break;
    }
  }
  report.steps_completed = step_;
  report.history = history_;
  report.site_stats = site_stats();
  report.transient_faults_recovered = transient_recovered_;
  for (const auto& client : clients_) {
    report.transient_faults_recovered += client->stats().recovered;
  }
  report.wall_seconds = watch.ElapsedSeconds();
  report.threads_spawned = threads_spawned_;
  report.propose_phase_micros = propose_phase_micros_;
  report.execute_phase_micros = execute_phase_micros_;
  report.wal_records = wal_records_;
  report.wal_sync_failures = wal_sync_failures_;
  return report;
}

void SimulationCoordinator::WalLogStepComplete() {
  if (wal_ == nullptr) return;
  util::ByteWriter writer;
  writer.WriteU64(static_cast<std::uint64_t>(step_));
  writer.WriteDoubleVector(d_);
  writer.WriteDoubleVector(d_prev_);
  writer.WriteDoubleVector(v_);
  writer.WriteDoubleVector(a_);
  writer.WriteDoubleVector(history_.velocity.back());
  writer.WriteDoubleVector(history_.acceleration.back());
  if (wal_->Append(kWalStepComplete, writer.Take()).ok()) ++wal_records_;
  WalSync();  // the coordinator's one fsync point per step
}

void SimulationCoordinator::WalLogSiteOutcome(
    const std::string& transaction_id, const std::string& site,
    bool executed) {
  if (wal_ == nullptr) return;
  util::ByteWriter writer;
  writer.WriteU64(static_cast<std::uint64_t>(step_));
  writer.WriteString(site);
  writer.WriteString(transaction_id);
  writer.WriteBool(executed);
  if (wal_->Append(kWalSiteOutcome, writer.Take()).ok()) ++wal_records_;
}

void SimulationCoordinator::WalSync() {
  if (wal_ == nullptr) return;
  const util::Status status = wal_->Sync();
  if (!status.ok()) {
    ++wal_sync_failures_;
    NEES_LOG_ERROR("psd.coordinator")
        << "WAL sync failed: " << status.ToString();
  }
}

util::Result<CoordinatorWalRecovery> SimulationCoordinator::AttachWal(
    wal::Log* log) {
  NEES_RETURN_IF_ERROR(EnsureInitialized());
  CoordinatorWalRecovery recovery;
  NEES_ASSIGN_OR_RETURN(std::vector<wal::Record> records, log->Open());
  recovery.records_replayed = records.size();

  const std::size_t n = config_.mass.rows();
  const std::size_t total_steps =
      config_.motion.steps() == 0 ? 0 : config_.motion.steps() - 1;
  std::size_t last_outcome_step = 0;
  bool saw_outcome = false;
  bool saw_begin = false;

  for (const wal::Record& rec : records) {
    util::ByteReader reader(rec.payload);
    if (rec.type == kWalRunBegin) {
      NEES_ASSIGN_OR_RETURN(std::string run_id, reader.ReadString());
      NEES_ASSIGN_OR_RETURN(std::uint64_t steps, reader.ReadU64());
      NEES_ASSIGN_OR_RETURN(std::uint64_t dofs, reader.ReadU64());
      if (run_id != config_.run_id || steps != total_steps || dofs != n) {
        return util::InvalidArgument(util::Format(
            "WAL belongs to a different run: log has (%s, %llu steps, %llu "
            "DOFs), config is (%s, %zu steps, %zu DOFs)",
            run_id.c_str(), static_cast<unsigned long long>(steps),
            static_cast<unsigned long long>(dofs), config_.run_id.c_str(),
            total_steps, n));
      }
      saw_begin = true;
    } else if (rec.type == kWalStepComplete) {
      NEES_ASSIGN_OR_RETURN(std::uint64_t step, reader.ReadU64());
      NEES_ASSIGN_OR_RETURN(structural::Vector d, reader.ReadDoubleVector());
      NEES_ASSIGN_OR_RETURN(structural::Vector d_prev,
                            reader.ReadDoubleVector());
      NEES_ASSIGN_OR_RETURN(structural::Vector v, reader.ReadDoubleVector());
      NEES_ASSIGN_OR_RETURN(structural::Vector a, reader.ReadDoubleVector());
      NEES_ASSIGN_OR_RETURN(structural::Vector v_row,
                            reader.ReadDoubleVector());
      NEES_ASSIGN_OR_RETURN(structural::Vector a_row,
                            reader.ReadDoubleVector());
      if (step != step_ + 1 || d.size() != n) {
        return util::DataLoss(util::Format(
            "WAL step-complete record out of sequence: log says step %llu, "
            "coordinator has replayed %zu",
            static_cast<unsigned long long>(step), step_));
      }
      d_ = std::move(d);
      d_prev_ = std::move(d_prev);
      v_ = std::move(v);
      a_ = std::move(a);
      history_.displacement.push_back(d_);
      history_.velocity.push_back(std::move(v_row));
      history_.acceleration.push_back(std::move(a_row));
      step_ = step;
      ++recovery.steps_recovered;
    } else if (rec.type == kWalSiteOutcome) {
      NEES_ASSIGN_OR_RETURN(std::uint64_t step, reader.ReadU64());
      last_outcome_step = step;
      saw_outcome = true;
      ++recovery.site_outcomes_replayed;
    } else {
      return util::DataLoss(util::Format(
          "coordinator WAL record has unknown type %u",
          static_cast<unsigned>(rec.type)));
    }
  }
  if (!records.empty() && !saw_begin) {
    return util::DataLoss("coordinator WAL lacks its run-begin record");
  }
  recovery.mid_step = saw_outcome && last_outcome_step >= step_;

  // Only attach once replay succeeded: a corrupt log must not be appended
  // to. A fresh log gets the run-begin stamp now.
  wal_ = log;
  if (records.empty()) {
    util::ByteWriter writer;
    writer.WriteString(config_.run_id);
    writer.WriteU64(static_cast<std::uint64_t>(total_steps));
    writer.WriteU64(static_cast<std::uint64_t>(n));
    if (wal_->Append(kWalRunBegin, writer.Take()).ok()) ++wal_records_;
    WalSync();
  }
  if (config_.tracer != nullptr && !records.empty()) {
    config_.tracer->RecordEvent(
        "psd.recover", "step", 0,
        {{"run", config_.run_id},
         {"steps_recovered", std::to_string(recovery.steps_recovered)},
         {"mid_step", recovery.mid_step ? "1" : "0"}});
  }
  return recovery;
}

Checkpoint SimulationCoordinator::GetCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.step = step_;
  checkpoint.d = d_;
  checkpoint.d_prev = d_prev_;
  checkpoint.v = v_;
  checkpoint.a = a_;
  checkpoint.history = history_;
  return checkpoint;
}

util::Status SimulationCoordinator::Restore(const Checkpoint& checkpoint) {
  NEES_RETURN_IF_ERROR(EnsureInitialized());
  if (checkpoint.d.size() != config_.mass.rows()) {
    return util::InvalidArgument("checkpoint dimension mismatch");
  }
  if (config_.integrator == PsdIntegrator::kOperatorSplitting &&
      (checkpoint.v.size() != config_.mass.rows() ||
       checkpoint.a.size() != config_.mass.rows())) {
    return util::InvalidArgument(
        "checkpoint lacks the operator-splitting (v, a) state");
  }
  step_ = checkpoint.step;
  d_ = checkpoint.d;
  d_prev_ = checkpoint.d_prev;
  v_ = checkpoint.v;
  a_ = checkpoint.a;
  history_ = checkpoint.history;
  return util::OkStatus();
}

std::vector<SiteStats> SimulationCoordinator::site_stats() const {
  std::vector<SiteStats> stats = site_stats_;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    stats[i].rpc_retries = clients_[i]->stats().retries;
  }
  return stats;
}

}  // namespace nees::psd
