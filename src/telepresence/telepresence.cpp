#include "telepresence/telepresence.h"

#include <algorithm>

#include "util/sha256.h"

namespace nees::tele {

CameraModel::CameraModel(std::string name, CameraLimits limits)
    : name_(std::move(name)), limits_(limits) {}

PanTiltZoom CameraModel::Move(const PanTiltZoom& target) {
  util::MutexLock lock(mu_);
  pose_.pan_deg =
      std::clamp(target.pan_deg, -limits_.pan_abs_deg, limits_.pan_abs_deg);
  pose_.tilt_deg =
      std::clamp(target.tilt_deg, limits_.tilt_min_deg, limits_.tilt_max_deg);
  pose_.zoom = std::clamp(target.zoom, limits_.zoom_min, limits_.zoom_max);
  return pose_;
}

PanTiltZoom CameraModel::pose() const {
  util::MutexLock lock(mu_);
  return pose_;
}

void CameraModel::SetSceneValue(double value) {
  util::MutexLock lock(mu_);
  scene_value_ = value;
}

std::vector<std::uint8_t> CameraModel::CaptureFrame() {
  util::MutexLock lock(mu_);
  ++frame_counter_;
  // Frame = small header + a deterministic "image" hash of the view state:
  // any change in pose, scene, or time changes the pixels.
  util::ByteWriter writer;
  writer.WriteString(name_);
  writer.WriteU64(frame_counter_);
  writer.WriteDouble(pose_.pan_deg);
  writer.WriteDouble(pose_.tilt_deg);
  writer.WriteDouble(pose_.zoom);
  writer.WriteDouble(scene_value_);
  const util::Sha256Digest pixels =
      util::Sha256::Hash(util::ToHex(writer.data().data(), writer.size()));
  std::vector<std::uint8_t> frame = writer.Take();
  frame.insert(frame.end(), pixels.begin(), pixels.end());
  return frame;
}

std::uint64_t CameraModel::frames_captured() const {
  util::MutexLock lock(mu_);
  return frame_counter_;
}

TelepresenceServer::TelepresenceServer(net::Network* network,
                                       std::string endpoint,
                                       std::string camera_name)
    : network_(network),
      rpc_server_(network, std::move(endpoint)),
      camera_(std::move(camera_name), CameraLimits{}) {}

util::Status TelepresenceServer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "cam.control",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        PanTiltZoom target;
        NEES_ASSIGN_OR_RETURN(target.pan_deg, reader.ReadDouble());
        NEES_ASSIGN_OR_RETURN(target.tilt_deg, reader.ReadDouble());
        NEES_ASSIGN_OR_RETURN(target.zoom, reader.ReadDouble());
        const PanTiltZoom achieved = camera_.Move(target);
        util::ByteWriter writer;
        writer.WriteDouble(achieved.pan_deg);
        writer.WriteDouble(achieved.tilt_deg);
        writer.WriteDouble(achieved.zoom);
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "cam.snapshot",
      [this](const net::CallContext&,
             const net::Bytes&) -> util::Result<net::Bytes> {
        return camera_.CaptureFrame();
      });
  rpc_server_.RegisterMethod(
      "cam.subscribe",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string viewer, reader.ReadString());
        AddViewer(viewer);
        return net::Bytes{};
      });
  return util::OkStatus();
}

void TelepresenceServer::AddViewer(const std::string& viewer_endpoint) {
  util::MutexLock lock(mu_);
  if (std::find(viewers_.begin(), viewers_.end(), viewer_endpoint) ==
      viewers_.end()) {
    viewers_.push_back(viewer_endpoint);
  }
}

void TelepresenceServer::PumpFrame() {
  const std::vector<std::uint8_t> frame = camera_.CaptureFrame();
  std::vector<std::string> viewers;
  {
    util::MutexLock lock(mu_);
    viewers = viewers_;
    frames_pushed_ += viewers.size();
  }
  for (const std::string& viewer : viewers) {
    net::Message message;
    message.from = rpc_server_.endpoint();
    message.to = viewer;
    message.kind = net::MessageKind::kOneWay;
    message.method = "cam.frame";
    message.payload = net::EncodeRequestEnvelope("", frame);
    (void)network_->Send(std::move(message));  // best effort, like video
  }
}

std::uint64_t TelepresenceServer::frames_pushed() const {
  util::MutexLock lock(mu_);
  return frames_pushed_;
}

TelepresenceClient::TelepresenceClient(net::Network* network,
                                       std::string endpoint)
    : rpc_client_(network, endpoint + ".ctl"), rpc_server_(network, endpoint) {
  (void)rpc_server_.Start();
  rpc_server_.RegisterOneWay(
      "cam.frame", [this](const net::CallContext&, const net::Bytes& body) {
        util::MutexLock lock(mu_);
        ++frames_received_;
        last_frame_ = body;
      });
}

util::Result<PanTiltZoom> TelepresenceClient::Control(
    const std::string& camera_endpoint, const PanTiltZoom& target) {
  util::ByteWriter writer;
  writer.WriteDouble(target.pan_deg);
  writer.WriteDouble(target.tilt_deg);
  writer.WriteDouble(target.zoom);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_client_.Call(camera_endpoint, "cam.control", writer.Take()));
  util::ByteReader reader(reply);
  PanTiltZoom achieved;
  NEES_ASSIGN_OR_RETURN(achieved.pan_deg, reader.ReadDouble());
  NEES_ASSIGN_OR_RETURN(achieved.tilt_deg, reader.ReadDouble());
  NEES_ASSIGN_OR_RETURN(achieved.zoom, reader.ReadDouble());
  return achieved;
}

util::Result<std::vector<std::uint8_t>> TelepresenceClient::Snapshot(
    const std::string& camera_endpoint) {
  return rpc_client_.Call(camera_endpoint, "cam.snapshot", {});
}

util::Status TelepresenceClient::SubscribeVideo(
    const std::string& camera_endpoint) {
  util::ByteWriter writer;
  writer.WriteString(rpc_server_.endpoint());
  return rpc_client_.Call(camera_endpoint, "cam.subscribe", writer.Take())
      .status();
}

std::uint64_t TelepresenceClient::frames_received() const {
  util::MutexLock lock(mu_);
  return frames_received_;
}

std::vector<std::uint8_t> TelepresenceClient::last_frame() const {
  util::MutexLock lock(mu_);
  return last_frame_;
}

}  // namespace nees::tele
