// Telepresence (§2.2, §3.4): "a video feed and basic camera control
// (pan/tilt/zoom) to remote observers", using commodity hardware — three
// remotely-operable cameras during MOST. Also the still-image capture
// trigger the Minnesota follow-on (§5) plans to use as experiment data.
//
// The camera is synthetic: each frame is a deterministic byte image derived
// from (frame number, pan, tilt, zoom, scene value), so tests can assert
// that camera moves actually change what observers see.
//
// RPC surface:
//   cam.control  {pan, tilt, zoom} -> {actual pan, tilt, zoom}
//   cam.snapshot {}                -> frame bytes  (still capture)
//   cam.describe {}               -> {name, frame counter, pan, tilt, zoom}
// Video: one-way "cam.frame" messages to subscribers per PumpFrame() call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "util/result.h"

namespace nees::tele {

struct PanTiltZoom {
  double pan_deg = 0.0;    // [-170, 170]
  double tilt_deg = 0.0;   // [-30, 90]
  double zoom = 1.0;       // [1, 12] optical
};

struct CameraLimits {
  double pan_abs_deg = 170.0;
  double tilt_min_deg = -30.0;
  double tilt_max_deg = 90.0;
  double zoom_min = 1.0;
  double zoom_max = 12.0;
};

/// Deterministic synthetic camera.
class CameraModel {
 public:
  CameraModel(std::string name, CameraLimits limits);

  /// Clamps to limits and returns the achieved pose.
  PanTiltZoom Move(const PanTiltZoom& target);
  PanTiltZoom pose() const;

  /// Scene input: the camera "sees" the current structural response.
  void SetSceneValue(double value);

  /// Renders the next frame (increments the frame counter).
  std::vector<std::uint8_t> CaptureFrame();
  std::uint64_t frames_captured() const;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  CameraLimits limits_;
  mutable util::Mutex mu_{"tele.CameraModel"};
  PanTiltZoom pose_;
  double scene_value_ = 0.0;
  std::uint64_t frame_counter_ = 0;
};

class TelepresenceServer {
 public:
  TelepresenceServer(net::Network* network, std::string endpoint,
                     std::string camera_name);

  util::Status Start();

  CameraModel& camera() { return camera_; }
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

  /// Adds a video subscriber endpoint (also reachable via "cam.subscribe").
  void AddViewer(const std::string& viewer_endpoint);

  /// Renders and pushes one frame to every viewer (best effort).
  void PumpFrame();

  std::uint64_t frames_pushed() const;

 private:
  net::Network* network_;
  net::RpcServer rpc_server_;
  CameraModel camera_;
  mutable util::Mutex mu_{"tele.TelepresenceServer"};
  std::vector<std::string> viewers_;
  std::uint64_t frames_pushed_ = 0;
};

/// Remote camera operation + video reception.
class TelepresenceClient {
 public:
  TelepresenceClient(net::Network* network, std::string endpoint);

  util::Result<PanTiltZoom> Control(const std::string& camera_endpoint,
                                    const PanTiltZoom& target);
  util::Result<std::vector<std::uint8_t>> Snapshot(
      const std::string& camera_endpoint);
  util::Status SubscribeVideo(const std::string& camera_endpoint);

  std::uint64_t frames_received() const;
  std::vector<std::uint8_t> last_frame() const;

 private:
  net::RpcClient rpc_client_;
  net::RpcServer rpc_server_;
  mutable util::Mutex mu_{"tele.TelepresenceClient"};
  std::uint64_t frames_received_ = 0;
  std::vector<std::uint8_t> last_frame_;
};

}  // namespace nees::tele
