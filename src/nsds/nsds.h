// NEESgrid Streaming Data Service (NSDS, §2.2 and TR-2003-09): "a
// best-effort stream of real-time data from the data acquisition system".
//
// Publishers push sample frames into the server; every subscriber whose
// channel filter matches receives the frame as a one-way message with a
// per-subscriber sequence number. Frames lost in the network are simply
// gone — subscribers detect gaps from sequence jumps, and the complete data
// set is available later from the repository (the paper's two-path design).
// Optional per-subscriber decimation sheds load for slow observers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "util/result.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::nsds {

struct DataSample {
  std::string channel;       // e.g. "uiuc.lvdt1"
  std::int64_t time_micros = 0;
  double value = 0.0;

  bool operator==(const DataSample&) const = default;
};

struct DataFrame {
  std::uint64_t sequence = 0;  // per-subscriber sequence number
  std::vector<DataSample> samples;
};

void EncodeFrame(const DataFrame& frame, util::ByteWriter& writer);
util::Result<DataFrame> DecodeFrame(util::ByteReader& reader);

struct PublisherStats {
  std::uint64_t frames_published = 0;
  std::uint64_t samples_published = 0;
  std::uint64_t frames_sent = 0;      // across all subscribers
  std::uint64_t frames_decimated = 0; // skipped by decimation policy
};

class NsdsServer {
 public:
  NsdsServer(net::Network* network, std::string endpoint);

  util::Status Start();
  void Stop();

  /// Publishes a frame of samples to all matching subscribers.
  void Publish(const std::vector<DataSample>& samples);

  /// Local subscription management (also reachable via RPC below).
  /// `decimation` N>1 delivers every Nth matching frame to this subscriber.
  void AddSubscriber(const std::string& subscriber_endpoint,
                     const std::string& channel_prefix, int decimation = 1);
  void RemoveSubscriber(const std::string& subscriber_endpoint);
  std::size_t subscriber_count() const;

  PublisherStats stats() const;
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

  /// Optional: records one "stream" event per published frame.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Subscriber {
    std::string endpoint;
    std::string channel_prefix;
    int decimation = 1;
    std::uint64_t next_sequence = 0;
    std::uint64_t matching_frames = 0;
  };

  net::Network* network_;
  net::RpcServer rpc_server_;
  obs::Tracer* tracer_ = nullptr;
  mutable util::Mutex mu_{"nsds.NsdsServer"};
  std::vector<Subscriber> subscribers_ NEES_GUARDED_BY(mu_);
  PublisherStats stats_ NEES_GUARDED_BY(mu_);
};

struct SubscriberStats {
  std::uint64_t frames_received = 0;
  std::uint64_t samples_received = 0;
  std::uint64_t gaps_detected = 0;     // sequence discontinuities
  std::uint64_t frames_lost = 0;       // total missing sequence numbers
};

/// Receives frames at its own endpoint; keeps the latest value per channel
/// and loss statistics (the CHEF data viewer reads from one of these).
class NsdsSubscriber {
 public:
  using FrameCallback = std::function<void(const DataFrame&)>;

  NsdsSubscriber(net::Network* network, std::string endpoint);

  /// Subscribes to a (possibly remote) NSDS server via RPC.
  util::Status SubscribeTo(const std::string& server_endpoint,
                           const std::string& channel_prefix,
                           int decimation = 1);

  /// Optional hook invoked per received frame.
  void SetFrameCallback(FrameCallback callback);

  /// Latest value per channel seen so far.
  std::map<std::string, DataSample> Latest() const;
  SubscriberStats stats() const;
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

 private:
  void HandleFrame(const net::Bytes& body);

  net::RpcClient rpc_client_;
  net::RpcServer rpc_server_;
  mutable util::Mutex mu_{"nsds.NsdsSubscriber"};
  std::map<std::string, DataSample> latest_ NEES_GUARDED_BY(mu_);
  SubscriberStats stats_ NEES_GUARDED_BY(mu_);
  std::uint64_t expected_sequence_ NEES_GUARDED_BY(mu_) = 0;
  bool saw_any_ NEES_GUARDED_BY(mu_) = false;
  FrameCallback callback_ NEES_GUARDED_BY(mu_);
};

}  // namespace nees::nsds
