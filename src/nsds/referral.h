// Telepresence referral service (TR-2003-09: "Design for NEESgrid
// Telepresence Referral and Streaming Data Services", ref [13]): remote
// participants ask one well-known service "what can I watch for experiment
// X?" and get referrals to the NSDS streams and cameras that carry it —
// instead of hard-coding endpoint names into every viewer.
//
// RPC surface:
//   referral.register {experiment, kind, endpoint, detail} -> {}
//   referral.lookup   {experiment, kind ("" = all)} -> [referrals]
//   referral.unregister {experiment, endpoint} -> {}
#pragma once

#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "util/result.h"

namespace nees::nsds {

struct Referral {
  std::string experiment;  // e.g. "most"
  std::string kind;        // "stream" | "camera"
  std::string endpoint;    // network endpoint to contact
  std::string detail;      // channel prefix, camera name, ...

  bool operator==(const Referral&) const = default;
};

class ReferralService {
 public:
  ReferralService(net::Network* network, std::string endpoint);

  util::Status Start();

  // Local API (also bound over RPC).
  void Register(const Referral& referral);
  void Unregister(const std::string& experiment, const std::string& endpoint);
  std::vector<Referral> Lookup(const std::string& experiment,
                               const std::string& kind) const;

  const std::string& endpoint() const { return rpc_server_.endpoint(); }

 private:
  net::RpcServer rpc_server_;
  mutable util::Mutex mu_{"nsds.ReferralService"};
  std::vector<Referral> referrals_;
};

/// Remote access to a referral service.
class ReferralClient {
 public:
  ReferralClient(net::RpcClient* rpc, std::string referral_endpoint);

  util::Status Register(const Referral& referral);
  util::Status Unregister(const std::string& experiment,
                          const std::string& endpoint);
  util::Result<std::vector<Referral>> Lookup(const std::string& experiment,
                                             const std::string& kind = "");

 private:
  net::RpcClient* rpc_;
  std::string service_;
};

}  // namespace nees::nsds
