#include "nsds/nsds.h"

#include "obs/trace.h"
#include "util/strings.h"

namespace nees::nsds {

void EncodeFrame(const DataFrame& frame, util::ByteWriter& writer) {
  writer.WriteU64(frame.sequence);
  writer.WriteU32(static_cast<std::uint32_t>(frame.samples.size()));
  for (const DataSample& sample : frame.samples) {
    writer.WriteString(sample.channel);
    writer.WriteI64(sample.time_micros);
    writer.WriteDouble(sample.value);
  }
}

util::Result<DataFrame> DecodeFrame(util::ByteReader& reader) {
  DataFrame frame;
  NEES_ASSIGN_OR_RETURN(frame.sequence, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    DataSample sample;
    NEES_ASSIGN_OR_RETURN(sample.channel, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(sample.time_micros, reader.ReadI64());
    NEES_ASSIGN_OR_RETURN(sample.value, reader.ReadDouble());
    frame.samples.push_back(std::move(sample));
  }
  return frame;
}

NsdsServer::NsdsServer(net::Network* network, std::string endpoint)
    : network_(network), rpc_server_(network, std::move(endpoint)) {}

util::Status NsdsServer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "nsds.subscribe",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string endpoint, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string prefix, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t decimation, reader.ReadU32());
        AddSubscriber(endpoint, prefix,
                      std::max<std::uint32_t>(decimation, 1));
        return net::Bytes{};
      });
  rpc_server_.RegisterMethod(
      "nsds.unsubscribe",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string endpoint, reader.ReadString());
        RemoveSubscriber(endpoint);
        return net::Bytes{};
      });
  return util::OkStatus();
}

void NsdsServer::Stop() { rpc_server_.Stop(); }

void NsdsServer::AddSubscriber(const std::string& subscriber_endpoint,
                               const std::string& channel_prefix,
                               int decimation) {
  util::MutexLock lock(mu_);
  // Re-subscription replaces the filter but keeps the sequence counter.
  for (Subscriber& subscriber : subscribers_) {
    if (subscriber.endpoint == subscriber_endpoint) {
      subscriber.channel_prefix = channel_prefix;
      subscriber.decimation = decimation;
      return;
    }
  }
  subscribers_.push_back(
      {subscriber_endpoint, channel_prefix, decimation, 0, 0});
}

void NsdsServer::RemoveSubscriber(const std::string& subscriber_endpoint) {
  util::MutexLock lock(mu_);
  std::erase_if(subscribers_, [&](const Subscriber& subscriber) {
    return subscriber.endpoint == subscriber_endpoint;
  });
}

std::size_t NsdsServer::subscriber_count() const {
  util::MutexLock lock(mu_);
  return subscribers_.size();
}

void NsdsServer::Publish(const std::vector<DataSample>& samples) {
  struct Delivery {
    std::string endpoint;
    DataFrame frame;
  };
  std::vector<Delivery> deliveries;
  {
    util::MutexLock lock(mu_);
    ++stats_.frames_published;
    stats_.samples_published += samples.size();
    for (Subscriber& subscriber : subscribers_) {
      DataFrame frame;
      for (const DataSample& sample : samples) {
        if (util::StartsWith(sample.channel, subscriber.channel_prefix)) {
          frame.samples.push_back(sample);
        }
      }
      if (frame.samples.empty()) continue;
      ++subscriber.matching_frames;
      if (subscriber.decimation > 1 &&
          (subscriber.matching_frames - 1) %
                  static_cast<std::uint64_t>(subscriber.decimation) !=
              0) {
        ++stats_.frames_decimated;
        continue;
      }
      frame.sequence = subscriber.next_sequence++;
      ++stats_.frames_sent;
      deliveries.push_back({subscriber.endpoint, std::move(frame)});
    }
  }
  if (tracer_ != nullptr) {
    tracer_->RecordEvent(
        "nsds.publish", "stream", 0,
        {{"samples", std::to_string(samples.size())},
         {"deliveries", std::to_string(deliveries.size())}});
    tracer_->metrics().Increment("nsds.frames_published");
    tracer_->metrics().Increment(
        "nsds.frames_sent", static_cast<std::int64_t>(deliveries.size()));
  }
  // Best effort: send outside the lock; losses are invisible to the server.
  for (const Delivery& delivery : deliveries) {
    util::ByteWriter writer;
    EncodeFrame(delivery.frame, writer);
    net::Message message;
    message.from = rpc_server_.endpoint();
    message.to = delivery.endpoint;
    message.kind = net::MessageKind::kOneWay;
    message.method = "nsds.data";
    message.payload = net::EncodeRequestEnvelope("", writer.Take());
    (void)network_->Send(std::move(message));
  }
}

PublisherStats NsdsServer::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// NsdsSubscriber

NsdsSubscriber::NsdsSubscriber(net::Network* network, std::string endpoint)
    : rpc_client_(network, endpoint + ".ctl"),
      rpc_server_(network, endpoint) {
  (void)rpc_server_.Start();
  rpc_server_.RegisterOneWay(
      "nsds.data", [this](const net::CallContext&, const net::Bytes& body) {
        HandleFrame(body);
      });
}

util::Status NsdsSubscriber::SubscribeTo(const std::string& server_endpoint,
                                         const std::string& channel_prefix,
                                         int decimation) {
  util::ByteWriter writer;
  writer.WriteString(rpc_server_.endpoint());
  writer.WriteString(channel_prefix);
  writer.WriteU32(static_cast<std::uint32_t>(decimation));
  return rpc_client_.Call(server_endpoint, "nsds.subscribe", writer.Take())
      .status();
}

void NsdsSubscriber::SetFrameCallback(FrameCallback callback) {
  util::MutexLock lock(mu_);
  callback_ = std::move(callback);
}

void NsdsSubscriber::HandleFrame(const net::Bytes& body) {
  util::ByteReader reader(body);
  auto frame = DecodeFrame(reader);
  if (!frame.ok()) return;

  FrameCallback callback;
  {
    util::MutexLock lock(mu_);
    ++stats_.frames_received;
    stats_.samples_received += frame->samples.size();
    if (saw_any_ && frame->sequence != expected_sequence_) {
      ++stats_.gaps_detected;
      if (frame->sequence > expected_sequence_) {
        stats_.frames_lost += frame->sequence - expected_sequence_;
      }
    }
    saw_any_ = true;
    expected_sequence_ = frame->sequence + 1;
    for (const DataSample& sample : frame->samples) {
      latest_[sample.channel] = sample;
    }
    callback = callback_;
  }
  if (callback) callback(*frame);
}

std::map<std::string, DataSample> NsdsSubscriber::Latest() const {
  util::MutexLock lock(mu_);
  return latest_;
}

SubscriberStats NsdsSubscriber::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace nees::nsds
