#include "nsds/referral.h"

#include <algorithm>

namespace nees::nsds {
namespace {

void EncodeReferral(const Referral& referral, util::ByteWriter& writer) {
  writer.WriteString(referral.experiment);
  writer.WriteString(referral.kind);
  writer.WriteString(referral.endpoint);
  writer.WriteString(referral.detail);
}

util::Result<Referral> DecodeReferral(util::ByteReader& reader) {
  Referral referral;
  NEES_ASSIGN_OR_RETURN(referral.experiment, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(referral.kind, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(referral.endpoint, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(referral.detail, reader.ReadString());
  return referral;
}

}  // namespace

ReferralService::ReferralService(net::Network* network, std::string endpoint)
    : rpc_server_(network, std::move(endpoint)) {}

util::Status ReferralService::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "referral.register",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(Referral referral, DecodeReferral(reader));
        Register(referral);
        return net::Bytes{};
      });
  rpc_server_.RegisterMethod(
      "referral.unregister",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string experiment, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string endpoint, reader.ReadString());
        Unregister(experiment, endpoint);
        return net::Bytes{};
      });
  rpc_server_.RegisterMethod(
      "referral.lookup",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string experiment, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string kind, reader.ReadString());
        const auto results = Lookup(experiment, kind);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(results.size()));
        for (const Referral& referral : results) {
          EncodeReferral(referral, writer);
        }
        return writer.Take();
      });
  return util::OkStatus();
}

void ReferralService::Register(const Referral& referral) {
  util::MutexLock lock(mu_);
  // Re-registration of the same endpoint for the experiment replaces it.
  std::erase_if(referrals_, [&](const Referral& existing) {
    return existing.experiment == referral.experiment &&
           existing.endpoint == referral.endpoint;
  });
  referrals_.push_back(referral);
}

void ReferralService::Unregister(const std::string& experiment,
                                 const std::string& endpoint) {
  util::MutexLock lock(mu_);
  std::erase_if(referrals_, [&](const Referral& existing) {
    return existing.experiment == experiment &&
           existing.endpoint == endpoint;
  });
}

std::vector<Referral> ReferralService::Lookup(const std::string& experiment,
                                              const std::string& kind) const {
  util::MutexLock lock(mu_);
  std::vector<Referral> results;
  for (const Referral& referral : referrals_) {
    if (referral.experiment != experiment) continue;
    if (!kind.empty() && referral.kind != kind) continue;
    results.push_back(referral);
  }
  return results;
}

ReferralClient::ReferralClient(net::RpcClient* rpc,
                               std::string referral_endpoint)
    : rpc_(rpc), service_(std::move(referral_endpoint)) {}

util::Status ReferralClient::Register(const Referral& referral) {
  util::ByteWriter writer;
  EncodeReferral(referral, writer);
  return rpc_->Call(service_, "referral.register", writer.Take()).status();
}

util::Status ReferralClient::Unregister(const std::string& experiment,
                                        const std::string& endpoint) {
  util::ByteWriter writer;
  writer.WriteString(experiment);
  writer.WriteString(endpoint);
  return rpc_->Call(service_, "referral.unregister", writer.Take()).status();
}

util::Result<std::vector<Referral>> ReferralClient::Lookup(
    const std::string& experiment, const std::string& kind) {
  util::ByteWriter writer;
  writer.WriteString(experiment);
  writer.WriteString(kind);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_->Call(service_, "referral.lookup", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<Referral> results;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(Referral referral, DecodeReferral(reader));
    results.push_back(std::move(referral));
  }
  return results;
}

}  // namespace nees::nsds
