#include "ntcp/server.h"

#include "check/invariant.h"
#include "obs/trace.h"
#include "util/frame_pool.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nees::ntcp {
namespace {

// WAL record vocabulary (see docs/RECOVERY.md, "Record grammar").
constexpr std::uint8_t kWalTxnCreate = 1;      // proposal + proposed_at
constexpr std::uint8_t kWalTxnTransition = 2;  // id, to, at, detail[, result]

}  // namespace

NtcpServer::NtcpServer(net::Network* network, std::string endpoint,
                       std::unique_ptr<ControlPlugin> plugin,
                       util::Clock* clock)
    : rpc_server_(network, std::move(endpoint)),
      plugin_(std::move(plugin)),
      clock_(clock),
      service_(std::make_shared<grid::GridService>(rpc_server_.endpoint())) {
  // Publish-on-read: OGSI reads flush any transitions that were only
  // marked dirty (the subscriber-free hot path skips eager publication).
  service_->SetRefreshHook([this] { FlushSde(); });
}

NtcpServer::~NtcpServer() {
  // The container may keep the shared GridService alive past this server;
  // detach the hook so a later read cannot call into freed memory.
  service_->SetRefreshHook(nullptr);
  Stop();
}

util::Status NtcpServer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  BindRpcMethods();
  return util::OkStatus();
}

void NtcpServer::Stop() {
  if (expiry_armed_ != nullptr) *expiry_armed_ = false;
  rpc_server_.Stop();
}

void NtcpServer::ArmExpiryTimer(net::Network* network,
                                std::int64_t period_micros) {
  if (expiry_armed_ == nullptr) {
    expiry_armed_ = std::make_shared<bool>(true);
  }
  *expiry_armed_ = true;
  // Self-rescheduling: each firing expires stale proposals, then re-arms —
  // unless Stop() cleared the flag, in which case the chain ends and
  // RunUntilQuiescent can drain to empty.
  std::shared_ptr<bool> armed = expiry_armed_;
  network->ScheduleAfter(period_micros, [this, network, period_micros,
                                         armed] {
    if (!*armed) return;
    ExpireStale();
    ArmExpiryTimer(network, period_micros);
  });
}

void NtcpServer::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  plugin_->set_tracer(tracer);
}

util::Status NtcpServer::PublishTo(grid::ServiceContainer& container) {
  return container.AddService(service_).status();
}

void NtcpServer::PublishTxnSdeLocked(const std::string& id,
                                     const TransactionRecord& record) {
  grid::SdeValue value;
  value.Set("state", std::string(TransactionStateName(record.state)));
  value.Set("step", std::to_string(record.proposal.step_index));
  value.Set("actions", std::to_string(record.proposal.actions.size()));
  value.Set("timeout_micros", std::to_string(record.proposal.timeout_micros));
  if (!record.detail.empty()) value.Set("detail", record.detail);
  for (const auto& [state_name, micros] : record.state_timestamps) {
    value.Set("t_" + state_name, std::to_string(micros));
  }
  if (record.state == TransactionState::kCompleted) {
    value.Set("results", std::to_string(record.result.results.size()));
  }
  service_->SetServiceData("txn." + id, value);
}

void NtcpServer::PublishServerStatsLocked() {
  // Aggregate server statistics, inspectable via OGSI.
  grid::SdeValue stats;
  stats.Set("proposals", std::to_string(stats_.proposals));
  stats.Set("accepted", std::to_string(stats_.accepted));
  stats.Set("rejected", std::to_string(stats_.rejected));
  stats.Set("executions", std::to_string(stats_.executions));
  stats.Set("duplicate_executes", std::to_string(stats_.duplicate_executes));
  stats.Set("failures", std::to_string(stats_.failures));
  stats.Set("open_transactions", std::to_string(transactions_.size()));
  service_->SetServiceData("serverStats", stats);
}

void NtcpServer::PublishSdeLocked(const std::string& id,
                                  const TransactionRecord& record) {
  PublishTxnSdeLocked(id, record);

  // The "most recently changed" SDE monitors the server as a whole (§2.1).
  grid::SdeValue last;
  last.Set("transaction", id);
  last.Set("state", std::string(TransactionStateName(record.state)));
  last.Set("time", std::to_string(clock_->NowMicros()));
  service_->SetServiceData("lastChanged", last);

  PublishServerStatsLocked();
}

void NtcpServer::MarkSdeDirtyLocked(const std::string& id,
                                    TransactionState state,
                                    std::int64_t at_micros) {
  sde_dirty_ = true;
  last_changed_id_.assign(id);  // reuses capacity in steady state
  last_changed_state_ = state;
  last_changed_at_ = at_micros;
}

void NtcpServer::FlushSde() {
  util::MutexLock lock(mu_);
  FlushSdeLocked();
}

void NtcpServer::FlushSdeLocked() {
  if (!sde_dirty_) return;
  sde_dirty_ = false;
  for (const auto& [id, record] : transactions_) {
    PublishTxnSdeLocked(id, record);
  }
  if (!last_changed_id_.empty()) {
    grid::SdeValue last;
    last.Set("transaction", last_changed_id_);
    last.Set("state",
             std::string(TransactionStateName(last_changed_state_)));
    last.Set("time", std::to_string(last_changed_at_));
    service_->SetServiceData("lastChanged", last);
  }
  PublishServerStatsLocked();
}

void NtcpServer::RecordTxnEventLocked(const TransactionRecord& record,
                                      std::string_view from,
                                      std::string_view to,
                                      std::int64_t at_micros,
                                      const std::string& cause) {
  if (tracer_ == nullptr) return;
  obs::Tracer::Tags tags = {
      {"txn", record.proposal.transaction_id},
      {"endpoint", endpoint()},
      {"from", std::string(from)},
      {"to", std::string(to)},
      {"step", std::to_string(record.proposal.step_index)},
      {"at", std::to_string(at_micros)},
      {"timeout", std::to_string(record.proposal.timeout_micros)}};
  if (!cause.empty()) tags.emplace_back("cause", cause);
  tracer_->RecordEvent("ntcp.txn", "txn", 0, std::move(tags));
}

void NtcpServer::WalLogCreateLocked(const TransactionRecord& record) {
  if (wal_ == nullptr) return;
  util::ByteWriter writer;
  EncodeProposal(record.proposal, writer);
  const auto it = record.state_timestamps.find(
      TransactionStateName(TransactionState::kProposed));
  writer.WriteI64(it == record.state_timestamps.end() ? -1 : it->second);
  if (wal_->Append(kWalTxnCreate, writer.Take()).ok()) ++stats_.wal_records;
}

void NtcpServer::WalLogTransitionLocked(const std::string& id,
                                        const TransactionRecord& record,
                                        std::int64_t at_micros) {
  if (wal_ == nullptr) return;
  util::ByteWriter writer;
  writer.WriteString(id);
  writer.WriteU8(static_cast<std::uint8_t>(record.state));
  writer.WriteI64(at_micros);
  writer.WriteString(record.detail);
  const bool has_result = record.state == TransactionState::kCompleted;
  writer.WriteBool(has_result);
  if (has_result) EncodeTransactionResult(record.result, writer);
  if (wal_->Append(kWalTxnTransition, writer.Take()).ok()) {
    ++stats_.wal_records;
  }
}

void NtcpServer::WalSyncLocked() {
  if (wal_ == nullptr) return;
  const util::Status status = wal_->Sync();
  if (!status.ok()) {
    ++stats_.wal_sync_failures;
    NEES_LOG_ERROR("ntcp.server." + endpoint())
        << "WAL sync failed: " << status.ToString();
  }
}

void NtcpServer::RecordDupEventLocked(const TransactionRecord& record,
                                      std::string_view kind) {
  if (tracer_ == nullptr) return;
  tracer_->RecordEvent(
      "ntcp.dup", "txn", 0,
      {{"txn", record.proposal.transaction_id},
       {"endpoint", endpoint()},
       {"kind", std::string(kind)},
       {"state", std::string(TransactionStateName(record.state))}});
}

void NtcpServer::TransitionLocked(const std::string& id,
                                  TransactionRecord& record,
                                  TransactionState to,
                                  const std::string& detail,
                                  const std::string& cause) {
  if (!IsLegalTransition(record.state, to)) {
    NEES_LOG_ERROR("ntcp.server." + endpoint())
        << "illegal transition " << TransactionStateName(record.state)
        << " -> " << TransactionStateName(to) << " for " << id;
    return;
  }
  NEES_CHECK_INVARIANT(!IsTerminal(record.state),
                       "no transition may leave a terminal state");
  const std::string_view from = TransactionStateName(record.state);
  record.state = to;
  if (!detail.empty()) record.detail = detail;
  const std::int64_t at = clock_->NowMicros();
  record.state_timestamps[TransactionStateName(to)] = at;
  WalLogTransitionLocked(id, record, at);
  RecordTxnEventLocked(record, from, TransactionStateName(to), at, cause);
  if (service_->HasSdeSubscribers()) {
    // A subscriber needs the change callback now; publish eagerly.
    PublishSdeLocked(id, record);
  } else {
    // Nobody is watching: defer the (allocation-heavy) SDE rebuild to the
    // next OGSI read. This is the dominant saving on the step hot path.
    MarkSdeDirtyLocked(id, to, at);
  }
}

NtcpServer::ProposeOutcome NtcpServer::Propose(Proposal proposal) {
  // Declared before the lock so the span closes after mu_ is released.
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan("server.propose", "protocol");
    span.AddTag("endpoint", endpoint());
    span.AddTag("txn", proposal.transaction_id);
    span.AddTag("step", std::to_string(proposal.step_index));
    tracer_->metrics().Increment("ntcp.server.proposals");
  }
  util::MutexLock lock(mu_);
  ++stats_.proposals;

  if (proposal.transaction_id.empty()) {
    ++stats_.rejected;
    return {false, "transaction id must not be empty"};
  }

  auto it = transactions_.find(proposal.transaction_id);
  if (it != transactions_.end()) {
    // At-most-once: an identical re-sent proposal gets the original answer;
    // a *different* proposal under the same name is a protocol violation.
    if (it->second.proposal == proposal) {
      ++stats_.duplicate_proposals;
      RecordDupEventLocked(it->second, "propose");
      const bool was_accepted =
          it->second.state != TransactionState::kRejected;
      return {was_accepted, it->second.detail};
    }
    ++stats_.rejected;
    RecordDupEventLocked(it->second, "propose-mismatch");
    return {false, "transaction id already in use with a different proposal"};
  }

  const util::Status validation = plugin_->Validate(proposal);
  TransactionRecord record;
  record.proposal = std::move(proposal);
  record.state = TransactionState::kProposed;
  const std::int64_t proposed_at = clock_->NowMicros();
  record.state_timestamps[TransactionStateName(
      TransactionState::kProposed)] = proposed_at;

  // Pair members construct in order, so the key is copied out of
  // record.proposal before the record itself is moved into the node.
  auto [inserted, unused] = transactions_.emplace(
      record.proposal.transaction_id, std::move(record));
  (void)unused;
  const std::string& id = inserted->first;
  NEES_CHECK_INVARIANT(inserted->second.state == TransactionState::kProposed,
                       "a freshly created transaction must be kProposed");
  WalLogCreateLocked(inserted->second);
  RecordTxnEventLocked(inserted->second, "none", "proposed", proposed_at);
  if (validation.ok()) {
    ++stats_.accepted;
    TransitionLocked(id, inserted->second, TransactionState::kAccepted, "");
    WalSyncLocked();  // durable before the accept is disclosed
    return {true, ""};
  }
  ++stats_.rejected;
  TransitionLocked(id, inserted->second, TransactionState::kRejected,
                   validation.ToString());
  WalSyncLocked();
  return {false, validation.ToString()};
}

util::Result<TransactionResult> NtcpServer::Execute(
    const std::string& transaction_id) {
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan("server.execute", "protocol");
    span.AddTag("endpoint", endpoint());
    span.AddTag("txn", transaction_id);
    tracer_->metrics().Increment("ntcp.server.executes");
  }
  const Proposal* proposal = nullptr;
  {
    util::MutexLock lock(mu_);
    auto it = transactions_.find(transaction_id);
    if (it == transactions_.end()) {
      return util::NotFound("unknown transaction: " + transaction_id);
    }
    TransactionRecord& record = it->second;

    switch (record.state) {
      case TransactionState::kCompleted:
        // At-most-once: a retried execute returns the cached result.
        ++stats_.duplicate_executes;
        RecordDupEventLocked(record, "execute");
        return record.result;
      case TransactionState::kFailed:
        ++stats_.duplicate_executes;
        RecordDupEventLocked(record, "execute");
        return util::Status(util::ErrorCode::kAborted,
                            "execution previously failed: " + record.detail);
      case TransactionState::kExecuting:
        return util::Unavailable("execution in progress; retry");
      case TransactionState::kRejected:
        return util::FailedPrecondition("transaction was rejected");
      case TransactionState::kCancelled:
        return util::FailedPrecondition("transaction was cancelled");
      case TransactionState::kExpired:
        return util::FailedPrecondition("transaction expired");
      case TransactionState::kProposed:
        return util::FailedPrecondition("transaction not yet accepted");
      case TransactionState::kAccepted:
        break;
    }

    // Enforce the proposal timeout window.
    if (ProposalWindowLapsed(record, clock_->NowMicros())) {
      ++stats_.expired;
      TransitionLocked(transaction_id, record, TransactionState::kExpired,
                       "proposal timeout lapsed before execute");
      NEES_CHECK_INVARIANT(record.state == TransactionState::kExpired,
                           "lapsed-window transaction must end kExpired");
      WalSyncLocked();
      return util::FailedPrecondition("transaction expired");
    }

    TransitionLocked(transaction_id, record, TransactionState::kExecuting,
                     "");
    // The intent to execute must be durable *before* the plugin can move the
    // specimen: after a crash, recovery sees kExecuting and crash-marks it
    // kFailed instead of silently re-executing (at-most-once).
    WalSyncLocked();
    // Safe to read outside the lock: the proposal is immutable once the
    // record is created, std::map nodes do not move, and the record cannot
    // be erased while kExecuting (GarbageCollect only drops terminal
    // states, and AttachWal runs before the server takes traffic).
    proposal = &record.proposal;
    ++stats_.executions;
  }

  // Run the plugin outside the table lock: executions can take (simulated)
  // seconds and inspection must stay responsive meanwhile.
  util::Result<TransactionResult> outcome = plugin_->Execute(*proposal);

  util::MutexLock lock(mu_);
  auto it = transactions_.find(transaction_id);
  if (it == transactions_.end()) {
    return util::Internal("transaction vanished during execution");
  }
  NEES_CHECK_INVARIANT(it->second.state == TransactionState::kExecuting,
                       "transaction left kExecuting during plugin execution");
  if (outcome.ok()) {
    it->second.result = std::move(*outcome);
    TransitionLocked(transaction_id, it->second, TransactionState::kCompleted,
                     "");
    WalSyncLocked();  // result durable before the reply that caches it
    return it->second.result;
  }
  ++stats_.failures;
  TransitionLocked(transaction_id, it->second, TransactionState::kFailed,
                   outcome.status().ToString());
  WalSyncLocked();
  return outcome.status();
}

util::Status NtcpServer::Cancel(const std::string& transaction_id) {
  util::MutexLock lock(mu_);
  auto it = transactions_.find(transaction_id);
  if (it == transactions_.end()) {
    return util::NotFound("unknown transaction: " + transaction_id);
  }
  TransactionRecord& record = it->second;
  if (record.state == TransactionState::kCancelled) return util::OkStatus();
  if (record.state != TransactionState::kProposed &&
      record.state != TransactionState::kAccepted) {
    return util::FailedPrecondition(
        "cannot cancel a transaction in state " +
        std::string(TransactionStateName(record.state)));
  }
  ++stats_.cancels;
  TransitionLocked(transaction_id, record, TransactionState::kCancelled,
                   "cancelled by client");
  WalSyncLocked();
  plugin_->OnCancel(record.proposal);
  return util::OkStatus();
}

util::Result<TransactionRecord> NtcpServer::GetTransaction(
    const std::string& transaction_id) const {
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan("server.getTransaction", "protocol");
    span.AddTag("endpoint", endpoint());
  }
  util::MutexLock lock(mu_);
  auto it = transactions_.find(transaction_id);
  if (it == transactions_.end()) {
    return util::NotFound("unknown transaction: " + transaction_id);
  }
  return it->second;
}

std::vector<std::string> NtcpServer::ListTransactions() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(transactions_.size());
  for (const auto& [id, record] : transactions_) {
    (void)record;
    ids.push_back(id);
  }
  return ids;
}

int NtcpServer::ExpireStale() {
  util::MutexLock lock(mu_);
  const std::int64_t now = clock_->NowMicros();
  int expired = 0;
  for (auto& [id, record] : transactions_) {
    if (record.state != TransactionState::kProposed &&
        record.state != TransactionState::kAccepted) {
      continue;
    }
    if (ProposalWindowLapsed(record, now)) {
      TransitionLocked(id, record, TransactionState::kExpired,
                       "proposal timeout lapsed");
      NEES_CHECK_INVARIANT(record.state == TransactionState::kExpired,
                           "lapsed-window transaction must end kExpired");
      ++stats_.expired;
      ++expired;
    }
  }
  if (expired > 0) WalSyncLocked();
  return expired;
}

int NtcpServer::GarbageCollect(std::int64_t retention_micros) {
  util::MutexLock lock(mu_);
  const std::int64_t cutoff = clock_->NowMicros() - retention_micros;
  int removed = 0;
  for (auto it = transactions_.begin(); it != transactions_.end();) {
    std::int64_t last_change = 0;
    for (const auto& [state, micros] : it->second.state_timestamps) {
      last_change = std::max(last_change, micros);
    }
    if (IsTerminal(it->second.state) && last_change < cutoff) {
      service_->RemoveServiceData("txn." + it->first);
      it = transactions_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

util::Result<WalRecovery> NtcpServer::AttachWal(wal::Log* log) {
  util::MutexLock lock(mu_);
  WalRecovery recovery;
  NEES_ASSIGN_OR_RETURN(std::vector<wal::Record> records, log->Open());
  recovery.records_replayed = records.size();
  recovery.torn_bytes_truncated = log->open_stats().truncated_bytes;

  // Replay is *silent*: re-emitting three-month-old transitions would make
  // nees-lint see every transaction created twice. The table is rebuilt
  // directly; only the summary event and the crash-marks below are traced.
  for (const wal::Record& rec : records) {
    util::ByteReader reader(rec.payload);
    if (rec.type == kWalTxnCreate) {
      NEES_ASSIGN_OR_RETURN(Proposal proposal, DecodeProposal(reader));
      NEES_ASSIGN_OR_RETURN(std::int64_t at, reader.ReadI64());
      auto [it, inserted] =
          transactions_.try_emplace(proposal.transaction_id);
      if (!inserted) continue;  // double recovery: upsert, don't clobber
      it->second.proposal = std::move(proposal);
      it->second.state = TransactionState::kProposed;
      if (at >= 0) {
        it->second.state_timestamps[TransactionStateName(
            TransactionState::kProposed)] = at;
      }
      ++recovery.transactions_recovered;
    } else if (rec.type == kWalTxnTransition) {
      NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
      NEES_ASSIGN_OR_RETURN(std::uint8_t state_raw, reader.ReadU8());
      NEES_ASSIGN_OR_RETURN(std::int64_t at, reader.ReadI64());
      NEES_ASSIGN_OR_RETURN(std::string detail, reader.ReadString());
      NEES_ASSIGN_OR_RETURN(bool has_result, reader.ReadBool());
      if (state_raw > static_cast<std::uint8_t>(TransactionState::kExpired)) {
        return util::DataLoss(util::Format(
            "WAL transition for %s names unknown state %u", id.c_str(),
            static_cast<unsigned>(state_raw)));
      }
      auto it = transactions_.find(id);
      if (it == transactions_.end()) {
        // Creates are synced before any transition is appended, so a
        // transition without its create means the log is not ours.
        return util::DataLoss("WAL transition for unknown transaction: " + id);
      }
      it->second.state = static_cast<TransactionState>(state_raw);
      if (!detail.empty()) it->second.detail = detail;
      it->second.state_timestamps[TransactionStateName(
          it->second.state)] = at;
      if (has_result) {
        NEES_ASSIGN_OR_RETURN(it->second.result,
                              DecodeTransactionResult(reader));
      }
    } else {
      return util::DataLoss(util::Format(
          "WAL record has unknown type %u", static_cast<unsigned>(rec.type)));
    }
  }

  // Only attach once replay succeeded: a corrupt log must not be appended to.
  wal_ = log;

  std::vector<std::string> inflight;
  for (const auto& [id, record] : transactions_) {
    if (record.state == TransactionState::kExecuting) inflight.push_back(id);
  }

  if (!records.empty() && tracer_ != nullptr) {
    tracer_->RecordEvent(
        "ntcp.recover", "txn", 0,
        {{"endpoint", endpoint()},
         {"records", std::to_string(recovery.records_replayed)},
         {"transactions", std::to_string(recovery.transactions_recovered)},
         {"inflight", std::to_string(inflight.size())},
         {"truncated_bytes",
          std::to_string(recovery.torn_bytes_truncated)}});
  }

  // Crash-mark: a transaction caught mid-execute left the specimen in an
  // unknown state. Never silently re-execute it — fail it (a legal
  // executing -> failed edge) and let the coordinator re-propose under a
  // fresh attempt id. These transitions ARE traced (cause=crash-recovery)
  // and logged, so a second crash replays them instead of re-deciding.
  for (const std::string& id : inflight) {
    auto it = transactions_.find(id);
    ++stats_.failures;
    TransitionLocked(id, it->second, TransactionState::kFailed,
                     "site crashed during execution; specimen state unknown",
                     "crash-recovery");
    ++recovery.inflight_failed;
  }
  WalSyncLocked();

  // Republish every recovered transaction's SDE so OGSI inspection of the
  // new incarnation sees the full table, not just post-restart changes.
  for (const auto& [id, record] : transactions_) {
    PublishSdeLocked(id, record);
  }
  return recovery;
}

NtcpServerStats NtcpServer::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void NtcpServer::BindRpcMethods() {
  rpc_server_.RegisterMethod(
      "ntcp.propose",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(Proposal proposal, DecodeProposal(reader));
        const ProposeOutcome outcome = Propose(std::move(proposal));
        util::ByteWriter writer(util::AcquireFrame());
        writer.WriteBool(outcome.accepted);
        writer.WriteString(outcome.reason);
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "ntcp.execute",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(TransactionResult result, Execute(id));
        util::ByteWriter writer(util::AcquireFrame());
        EncodeTransactionResult(result, writer);
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "ntcp.cancel",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_RETURN_IF_ERROR(Cancel(id));
        return net::Bytes{};
      });
  rpc_server_.RegisterMethod(
      "ntcp.getTransaction",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(TransactionRecord record, GetTransaction(id));
        util::ByteWriter writer(util::AcquireFrame());
        EncodeTransactionRecord(record, writer);
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "ntcp.listTransactions",
      [this](const net::CallContext&,
             const net::Bytes&) -> util::Result<net::Bytes> {
        const auto ids = ListTransactions();
        util::ByteWriter writer(util::AcquireFrame());
        writer.WriteU32(static_cast<std::uint32_t>(ids.size()));
        for (const std::string& id : ids) writer.WriteString(id);
        return writer.Take();
      });
}

}  // namespace nees::ntcp
