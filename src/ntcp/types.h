// NTCP (NEESgrid Teleoperation Control Protocol) data model, after
// NEESgrid TR-2003-07 as summarized in the paper (§2.1).
//
// A *proposal* names a transaction and requests actions on control points
// (geometric boundary DOFs of a substructure): target displacements and/or
// forces. The transaction then walks the Fig. 1 state machine:
//
//    Proposed --accept--> Accepted --execute--> Executing --> Completed
//        \--reject--> Rejected        \--cancel--> Cancelled      \--> Failed
//
// plus Expired for transactions whose proposal timeout lapses before
// execution. Every state change is timestamped and published as an OGSI
// service data element, so any participant can inspect any transaction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace nees::ntcp {

/// Requested action on one control point.
struct ControlPointRequest {
  std::string control_point;           // e.g. "column-top-x"
  std::vector<double> target_displacement;  // meters, per DOF
  std::vector<double> target_force;         // newtons, per DOF (may be empty)

  bool operator==(const ControlPointRequest&) const = default;
};

struct Proposal {
  std::string transaction_id;  // client-chosen: the at-most-once key
  std::vector<ControlPointRequest> actions;
  std::int64_t timeout_micros = 60'000'000;  // proposal validity window
  std::int64_t step_index = -1;  // PSD step this belongs to (-1 if N/A)

  bool operator==(const Proposal&) const = default;
};

/// Measured state of one control point after execution.
struct ControlPointResult {
  std::string control_point;
  std::vector<double> measured_displacement;
  std::vector<double> measured_force;

  bool operator==(const ControlPointResult&) const = default;
};

struct TransactionResult {
  std::vector<ControlPointResult> results;

  bool operator==(const TransactionResult&) const = default;

  const ControlPointResult* Find(const std::string& control_point) const;
};

enum class TransactionState : std::uint8_t {
  kProposed = 0,
  kAccepted = 1,
  kRejected = 2,
  kExecuting = 3,
  kCompleted = 4,
  kCancelled = 5,
  kFailed = 6,
  kExpired = 7,
};

std::string_view TransactionStateName(TransactionState state);

/// True if `from` -> `to` is a legal Fig. 1 transition.
bool IsLegalTransition(TransactionState from, TransactionState to);

/// Terminal states admit no further transitions.
bool IsTerminal(TransactionState state);

/// state-name -> micros timestamps, kept as a sorted flat vector. A
/// transaction visits at most a handful of states, so a node-per-entry
/// std::map spent a heap allocation per transition on the server hot path;
/// the flat form allocates once (amortised) per record. API mirrors the
/// std::map subset the codebase uses: operator[], find, contains,
/// iteration in key order, and equality.
class StateTimestamps {
 public:
  using value_type = std::pair<std::string, std::int64_t>;
  using const_iterator = std::vector<value_type>::const_iterator;

  std::int64_t& operator[](std::string_view state);
  const_iterator find(std::string_view state) const;
  bool contains(std::string_view state) const {
    return find(state) != end();
  }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  friend bool operator==(const StateTimestamps&,
                         const StateTimestamps&) = default;

 private:
  std::vector<value_type> entries_;  // sorted by state name
};

/// Full server-side record of a transaction (also the getTransaction reply).
struct TransactionRecord {
  Proposal proposal;
  TransactionState state = TransactionState::kProposed;
  std::string detail;  // rejection reason / failure message
  TransactionResult result;                    // valid when kCompleted
  StateTimestamps state_timestamps;            // state -> micros
};

/// Absolute sim-clock deadline of `record`'s proposal window, or -1 when the
/// proposal carries no timeout (or was never stamped kProposed). The single
/// source of truth for expiry: the execute-path check and the ExpireStale
/// sweep both go through here so the two comparisons cannot drift.
std::int64_t ProposalDeadlineMicros(const TransactionRecord& record);

/// True when `now_micros` is strictly past the proposal window.
bool ProposalWindowLapsed(const TransactionRecord& record,
                          std::int64_t now_micros);

// Wire encodings -------------------------------------------------------------

void EncodeProposal(const Proposal& proposal, util::ByteWriter& writer);
util::Result<Proposal> DecodeProposal(util::ByteReader& reader);

void EncodeTransactionResult(const TransactionResult& result,
                             util::ByteWriter& writer);
util::Result<TransactionResult> DecodeTransactionResult(
    util::ByteReader& reader);

void EncodeTransactionRecord(const TransactionRecord& record,
                             util::ByteWriter& writer);
util::Result<TransactionRecord> DecodeTransactionRecord(
    util::ByteReader& reader);

}  // namespace nees::ntcp
