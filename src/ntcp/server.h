// NTCP server: the generic half of Fig. 2. Owns the transaction table and
// its state machine, guarantees at-most-once execution under client
// retries, enforces proposal timeouts, and publishes every transaction as
// an OGSI service data element (plus the "most recently changed" SDE the
// paper calls out for whole-server monitoring).
//
// RPC surface (on its own network endpoint):
//   ntcp.propose        Proposal -> {accepted, reason}
//   ntcp.execute        txn_id   -> TransactionResult   (idempotent)
//   ntcp.cancel         txn_id   -> {}
//   ntcp.getTransaction txn_id   -> TransactionRecord
//   ntcp.listTransactions {}     -> [txn_id...]
#pragma once

#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"

#include "grid/container.h"
#include "grid/service.h"
#include "net/rpc.h"
#include "ntcp/plugin.h"
#include "ntcp/types.h"
#include "util/clock.h"
#include "wal/wal.h"

namespace nees::ntcp {

struct NtcpServerStats {
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t executions = 0;        // actual plugin Execute() calls
  std::uint64_t duplicate_executes = 0;  // retries served from cache
  std::uint64_t duplicate_proposals = 0;
  std::uint64_t cancels = 0;
  std::uint64_t expired = 0;
  std::uint64_t failures = 0;
  std::uint64_t wal_records = 0;       // transitions logged this incarnation
  std::uint64_t wal_sync_failures = 0;
};

/// What AttachWal reconstructed from the log (docs/RECOVERY.md, step R2).
struct WalRecovery {
  std::size_t records_replayed = 0;
  std::size_t transactions_recovered = 0;
  /// Transactions found in kExecuting — the crash interrupted the plugin
  /// and the specimen's state is unknown, so they are crash-marked kFailed
  /// (never silently re-executed; at-most-once survives the restart).
  std::size_t inflight_failed = 0;
  std::size_t torn_bytes_truncated = 0;
};

class NtcpServer {
 public:
  /// `endpoint` is the server's network name (e.g. "ntcp.uiuc").
  NtcpServer(net::Network* network, std::string endpoint,
             std::unique_ptr<ControlPlugin> plugin,
             util::Clock* clock = &util::SystemClock::Instance());
  ~NtcpServer();

  util::Status Start();
  void Stop();

  /// Hosts this server's state as a GridService in `container` so OGSI
  /// inspection (ogsi.findServiceData on "txn." keys) sees transactions.
  util::Status PublishTo(grid::ServiceContainer& container);

  /// Exposes the RPC server (to attach an AuthService, §4).
  net::RpcServer& rpc() { return rpc_server_; }
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

  // Local (in-process) protocol operations; RPC methods call these.
  struct ProposeOutcome {
    bool accepted = false;
    std::string reason;
  };
  /// By value: the RPC handler moves the freshly decoded proposal straight
  /// into the transaction table; in-process callers pass lvalues (copied).
  ProposeOutcome Propose(Proposal proposal);
  util::Result<TransactionResult> Execute(const std::string& transaction_id);
  util::Status Cancel(const std::string& transaction_id);
  util::Result<TransactionRecord> GetTransaction(
      const std::string& transaction_id) const;
  std::vector<std::string> ListTransactions() const;

  /// Moves proposed/accepted transactions past their timeout to kExpired;
  /// returns how many expired. Call periodically (or before reusing ids).
  int ExpireStale();

  /// kVirtual only: arms a self-rescheduling timer on `network`'s event
  /// loop that runs ExpireStale() every `period_micros` of virtual time, so
  /// proposal expiry joins the same totally ordered, seed-reproducible
  /// schedule as delivery, retries, and heartbeats. Disarmed by Stop() (an
  /// already-queued firing becomes a no-op and does not re-arm).
  void ArmExpiryTimer(net::Network* network, std::int64_t period_micros);

  /// Drops terminal transactions older than `retention_micros`, bounding
  /// the table; returns how many were dropped.
  int GarbageCollect(std::int64_t retention_micros);

  /// Attaches a write-ahead log (docs/RECOVERY.md). Opens `log`, replays
  /// every record into the transaction table (restoring proposals, states,
  /// timestamps, and cached results), crash-marks transactions caught in
  /// kExecuting as kFailed, and from then on logs every transition durably
  /// before the reply that discloses it. Call once, before the server
  /// takes traffic; `log` must outlive the server. Replay is silent (no
  /// re-emitted trace events) except for one "ntcp.recover" summary event
  /// and the crash-mark transitions, which are traced with
  /// cause=crash-recovery so nees-lint can audit the restart.
  util::Result<WalRecovery> AttachWal(wal::Log* log);

  NtcpServerStats stats() const;

  /// Attaches a tracer to the server AND its plugin: protocol-phase spans
  /// here, compute/settle/queue spans in the backend.
  void set_tracer(obs::Tracer* tracer);

  /// The grid service holding the SDEs (for direct inspection in-process).
  grid::GridService& service_data() { return *service_; }

 private:
  void TransitionLocked(const std::string& id, TransactionRecord& record,
                        TransactionState to, const std::string& detail,
                        const std::string& cause = "") NEES_REQUIRES(mu_);
  /// Emits one "ntcp.txn" protocol event per state change (from "none" for
  /// creation) into the trace stream; nees-lint replays these. A non-empty
  /// `cause` is added as a tag (crash-mark transitions carry
  /// cause=crash-recovery).
  void RecordTxnEventLocked(const TransactionRecord& record,
                            std::string_view from, std::string_view to,
                            std::int64_t at_micros,
                            const std::string& cause = "")
      NEES_REQUIRES(mu_);
  /// WAL append helpers; no-ops when no log is attached. Sync failures are
  /// counted and logged but do not fail the operation for MemoryStorage-
  /// style stores (which cannot fail); FileStorage callers watch stats.
  void WalLogCreateLocked(const TransactionRecord& record)
      NEES_REQUIRES(mu_);
  void WalLogTransitionLocked(const std::string& id,
                              const TransactionRecord& record,
                              std::int64_t at_micros) NEES_REQUIRES(mu_);
  void WalSyncLocked() NEES_REQUIRES(mu_);
  /// Emits an "ntcp.dup" event when a retry is served from the
  /// at-most-once cache (kind: propose / propose-mismatch / execute).
  void RecordDupEventLocked(const TransactionRecord& record,
                            std::string_view kind) NEES_REQUIRES(mu_);
  /// Eagerly materialises the three SDE documents (txn.<id>, lastChanged,
  /// serverStats) for one transaction. Only runs on the hot path when the
  /// grid service has subscribers; otherwise transitions just mark the
  /// table dirty and FlushSde() rebuilds the documents on the next OGSI
  /// read (publish-on-read via GridService::SetRefreshHook).
  void PublishSdeLocked(const std::string& id,
                        const TransactionRecord& record) NEES_REQUIRES(mu_);
  void PublishTxnSdeLocked(const std::string& id,
                           const TransactionRecord& record)
      NEES_REQUIRES(mu_);
  void PublishServerStatsLocked() NEES_REQUIRES(mu_);
  /// Records that SDE documents are stale and captures the most recent
  /// change for the lastChanged SDE without allocating.
  void MarkSdeDirtyLocked(const std::string& id, TransactionState state,
                          std::int64_t at_micros) NEES_REQUIRES(mu_);
  /// Refresh-hook target: republishes every transaction plus lastChanged
  /// and serverStats iff something changed since the last flush.
  void FlushSde();
  void FlushSdeLocked() NEES_REQUIRES(mu_);
  void BindRpcMethods();

  net::RpcServer rpc_server_;
  std::unique_ptr<ControlPlugin> plugin_;
  util::Clock* clock_;
  obs::Tracer* tracer_ = nullptr;
  std::shared_ptr<grid::GridService> service_;

  mutable util::Mutex mu_{"ntcp.Server"};
  std::map<std::string, TransactionRecord> transactions_
      NEES_GUARDED_BY(mu_);
  NtcpServerStats stats_ NEES_GUARDED_BY(mu_);
  wal::Log* wal_ NEES_GUARDED_BY(mu_) = nullptr;

  // Lazy-SDE state: set by MarkSdeDirtyLocked, consumed by FlushSdeLocked.
  // last_changed_id_ reuses its capacity across steps, so marking a
  // transition dirty performs no heap allocation in steady state.
  bool sde_dirty_ NEES_GUARDED_BY(mu_) = false;
  std::string last_changed_id_ NEES_GUARDED_BY(mu_);
  TransactionState last_changed_state_ NEES_GUARDED_BY(mu_) =
      TransactionState::kProposed;
  std::int64_t last_changed_at_ NEES_GUARDED_BY(mu_) = 0;

  // Liveness flag captured by armed expiry timers; cleared on Stop() so a
  // queued firing after shutdown is a safe no-op.
  std::shared_ptr<bool> expiry_armed_;
};

}  // namespace nees::ntcp
