// The NTCP control plugin interface (Fig. 2, TR-2003-16): the boundary
// between the generic NTCP server (transaction state, at-most-once, SDEs)
// and the site-specific backend (vendor controller, Matlab simulation,
// LabVIEW rig). A site retains control by rejecting proposals in Validate
// — the negotiation step that lets a client learn a step is unacceptable
// *before* any irreversible motion happens anywhere (§2.1).
#pragma once

#include "ntcp/types.h"
#include "util/result.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::ntcp {

class ControlPlugin {
 public:
  virtual ~ControlPlugin() = default;

  /// Attaches a tracer so backends can record compute/settle/queue spans.
  /// Wrapper plugins override this to forward to the wrapped plugin.
  virtual void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Policy/feasibility check at proposal time. Must have NO side effects
  /// on the specimen. Returning non-OK rejects the proposal.
  virtual util::Status Validate(const Proposal& proposal) = 0;

  /// Performs the proposed actions and returns measured results. Called at
  /// most once per transaction (the server guarantees it).
  virtual util::Result<TransactionResult> Execute(const Proposal& proposal) = 0;

  /// Invoked when an accepted (never-executed) transaction is cancelled.
  virtual void OnCancel(const Proposal& proposal) { (void)proposal; }

  /// Short human-readable type tag for SDEs/logs ("simulation", "mplugin"...)
  virtual std::string_view kind() const = 0;

 protected:
  obs::Tracer* tracer_ = nullptr;  // optional; null means no tracing
};

}  // namespace nees::ntcp
