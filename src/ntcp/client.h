// NTCP client: the coordinator-facing API (the paper's "NTCP Java API",
// here in C++). Layered on RPC with a retry policy that exploits the
// protocol's at-most-once semantics: a request whose reply was lost can be
// re-sent "without any danger of the same action being executed twice"
// (§2.1). Retries cover kTimeout/kUnavailable only; definitive answers
// (rejection, policy violation, safety interlock) are never retried.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "ntcp/types.h"
#include "util/clock.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::ntcp {

struct RetryPolicy {
  int max_attempts = 5;                    // total tries per operation
  std::int64_t initial_backoff_micros = 100'000;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_micros = 5'000'000;
  std::int64_t rpc_timeout_micros = 2'000'000;
};

struct NtcpClientStats {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;  // operations that succeeded after >=1 retry
  std::uint64_t gave_up = 0;    // transient failures that exhausted retries
};

class NtcpClient {
 public:
  /// `rpc` must outlive the client; it carries the auth token if any.
  NtcpClient(net::RpcClient* rpc, std::string server_endpoint,
             RetryPolicy policy = RetryPolicy(),
             util::Clock* clock = &util::SystemClock::Instance());

  /// Sends the proposal; Ok means *accepted*. A rejected proposal returns
  /// kPolicyViolation with the site's reason.
  util::Status Propose(const Proposal& proposal);

  /// Executes an accepted transaction and returns measured results.
  util::Result<TransactionResult> Execute(const std::string& transaction_id);

  util::Status Cancel(const std::string& transaction_id);
  util::Result<TransactionRecord> GetTransaction(
      const std::string& transaction_id);
  util::Result<std::vector<std::string>> ListTransactions();

  const std::string& server() const { return server_; }
  NtcpClientStats stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Optional: records one "protocol" span per operation when set.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  using SpanTags = std::vector<std::pair<std::string, std::string>>;

  /// Runs `call` with transient-error retry + exponential backoff. `tags`
  /// (e.g. the transaction id and step) annotate the operation's span.
  util::Result<net::Bytes> CallWithRetry(const std::string& method,
                                         const net::Bytes& body,
                                         const SpanTags& tags = {});

  net::RpcClient* rpc_;
  std::string server_;
  RetryPolicy policy_;
  util::Clock* clock_;
  NtcpClientStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace nees::ntcp
