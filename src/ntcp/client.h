// NTCP client: the coordinator-facing API (the paper's "NTCP Java API",
// here in C++). Layered on RPC with a retry policy that exploits the
// protocol's at-most-once semantics: a request whose reply was lost can be
// re-sent "without any danger of the same action being executed twice"
// (§2.1). Retries cover kTimeout/kUnavailable only; definitive answers
// (rejection, policy violation, safety interlock) are never retried.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "ntcp/types.h"
#include "util/clock.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::ntcp {

struct RetryPolicy {
  int max_attempts = 5;                    // total tries per operation
  std::int64_t initial_backoff_micros = 100'000;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_micros = 5'000'000;
  std::int64_t rpc_timeout_micros = 2'000'000;
};

struct NtcpClientStats {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;  // operations that succeeded after >=1 retry
  std::uint64_t gave_up = 0;    // transient failures that exhausted retries
  std::uint64_t auth_refreshes = 0;  // credential re-handshakes mid-op
};

class NtcpClient {
 public:
  /// `rpc` must outlive the client; it carries the auth token if any.
  NtcpClient(net::RpcClient* rpc, std::string server_endpoint,
             RetryPolicy policy = RetryPolicy(),
             util::Clock* clock = &util::SystemClock::Instance());
  ~NtcpClient();

  /// Sends the proposal; Ok means *accepted*. A rejected proposal returns
  /// kPolicyViolation with the site's reason.
  util::Status Propose(const Proposal& proposal);

  /// Executes an accepted transaction and returns measured results.
  util::Result<TransactionResult> Execute(const std::string& transaction_id);

  util::Status Cancel(const std::string& transaction_id);
  util::Result<TransactionRecord> GetTransaction(
      const std::string& transaction_id);
  util::Result<std::vector<std::string>> ListTransactions();

  /// Handle to an in-flight asynchronous NTCP operation. The full retry /
  /// backoff / at-most-once state machine of the synchronous API runs
  /// inside the handle: Pump() advances it without blocking (resolving the
  /// current RPC attempt, scheduling backoff, or reissuing), Await() drives
  /// it to completion on the calling thread. Many ops — across sites — can
  /// be multiplexed on one thread with AwaitAll(); no thread is ever
  /// created. Obtain via ProposeAsync/ExecuteAsync/CancelAsync and decode
  /// with the matching Finish* function.
  class AsyncOp {
   public:
    AsyncOp();
    AsyncOp(AsyncOp&&) noexcept;
    AsyncOp& operator=(AsyncOp&&) noexcept;
    ~AsyncOp();

    AsyncOp(const AsyncOp&) = delete;
    AsyncOp& operator=(const AsyncOp&) = delete;

    bool active() const { return state_ != nullptr; }
    bool finished() const;

    /// Advances the retry state machine; never blocks. Returns finished().
    bool Pump();

    /// Client-clock micros of the next self-driven event (current attempt's
    /// deadline, or backoff expiry); INT64_MAX when finished/empty.
    std::int64_t NextEventMicros() const;

    /// Micros from issue to resolution on the client clock (0 until then).
    std::int64_t elapsed_micros() const;

    /// Blocks until the operation resolves (including retries + backoff)
    /// and consumes the outcome. Prefer the typed Finish* helpers.
    util::Result<net::Bytes> Await();

   private:
    friend class NtcpClient;
    struct State;
    std::unique_ptr<State> state_;
  };

  /// Issue an operation without blocking. When `parent_span_id` is 0 the
  /// operation's "protocol" span parents under the calling thread's
  /// current span (matching the synchronous API); pass an explicit id when
  /// driving many sites' ops from one thread, where the thread's span
  /// stack cannot distinguish them.
  AsyncOp ProposeAsync(const Proposal& proposal,
                       std::uint64_t parent_span_id = 0);
  AsyncOp ExecuteAsync(const std::string& transaction_id,
                       std::uint64_t parent_span_id = 0);
  AsyncOp CancelAsync(const std::string& transaction_id,
                      std::uint64_t parent_span_id = 0);

  /// Awaits + decodes an op started by the matching *Async call.
  static util::Status FinishPropose(AsyncOp& op);
  static util::Result<TransactionResult> FinishExecute(AsyncOp& op);
  static util::Status FinishCancel(AsyncOp& op);

  /// Drives every op to completion on the calling thread, overlapping all
  /// their round trips and backoff windows. The ops may target different
  /// sites; they should share one underlying RpcClient so a single batch
  /// wait covers every in-flight attempt.
  static void AwaitAll(std::vector<AsyncOp>& ops);

  const std::string& server() const { return server_; }
  NtcpClientStats stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Optional: records one "protocol" span per operation when set.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Optional credential-refresh hook. When set, an operation rejected with
  /// kUnauthenticated / kPermissionDenied runs this (expected to redo the
  /// GSI handshake and install a fresh token on the RpcClient), then — if
  /// it succeeds — backs off and reissues the request once instead of
  /// failing the operation. One refresh per operation: a rejection *after*
  /// a refresh is a real authorization answer, not a stale credential.
  void set_auth_refresher(std::function<util::Status()> refresher) {
    auth_refresher_ = std::move(refresher);
  }

 private:
  using SpanTags = std::vector<std::pair<std::string, std::string>>;

  /// Starts the retry state machine for one operation (first RPC attempt
  /// issued before returning; pumped once so immediate-mode responses
  /// resolve inline).
  AsyncOp StartOp(net::MethodId method, net::Bytes body, const SpanTags& tags,
                  std::uint64_t parent_span_id);

  /// Runs `call` with transient-error retry + exponential backoff. `tags`
  /// (e.g. the transaction id and step) annotate the operation's span.
  /// Synchronous facade over StartOp + Await.
  util::Result<net::Bytes> CallWithRetry(net::MethodId method,
                                         const net::Bytes& body,
                                         const SpanTags& tags = {});

  net::RpcClient* rpc_;
  std::string server_;
  net::EndpointId server_id_;  // interned once; the hot path never re-hashes
  RetryPolicy policy_;
  util::Clock* clock_;
  NtcpClientStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::function<util::Status()> auth_refresher_;
  /// Recycled AsyncOp state blocks: an op consumed by Await() parks its
  /// block here so the next StartOp reuses it instead of allocating. The
  /// client is driven from one thread at a time (like stats_), so no lock.
  std::vector<std::unique_ptr<AsyncOp::State>> op_pool_;
};

}  // namespace nees::ntcp
