#include "ntcp/types.h"

#include <algorithm>

namespace nees::ntcp {

std::int64_t& StateTimestamps::operator[](std::string_view state) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), state,
      [](const value_type& entry, std::string_view key) {
        return entry.first < key;
      });
  if (it != entries_.end() && it->first == state) return it->second;
  const auto index = it - entries_.begin();  // reserve invalidates `it`
  if (entries_.capacity() == 0) {
    entries_.reserve(4);  // proposed/accepted/executing/terminal
  }
  it = entries_.emplace(entries_.begin() + index, std::string(state), 0);
  return it->second;
}

StateTimestamps::const_iterator StateTimestamps::find(
    std::string_view state) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), state,
      [](const value_type& entry, std::string_view key) {
        return entry.first < key;
      });
  if (it != entries_.end() && it->first == state) return it;
  return entries_.end();
}

const ControlPointResult* TransactionResult::Find(
    const std::string& control_point) const {
  for (const ControlPointResult& result : results) {
    if (result.control_point == control_point) return &result;
  }
  return nullptr;
}

std::string_view TransactionStateName(TransactionState state) {
  switch (state) {
    case TransactionState::kProposed: return "proposed";
    case TransactionState::kAccepted: return "accepted";
    case TransactionState::kRejected: return "rejected";
    case TransactionState::kExecuting: return "executing";
    case TransactionState::kCompleted: return "completed";
    case TransactionState::kCancelled: return "cancelled";
    case TransactionState::kFailed: return "failed";
    case TransactionState::kExpired: return "expired";
  }
  return "unknown";
}

bool IsTerminal(TransactionState state) {
  switch (state) {
    case TransactionState::kRejected:
    case TransactionState::kCompleted:
    case TransactionState::kCancelled:
    case TransactionState::kFailed:
    case TransactionState::kExpired:
      return true;
    default:
      return false;
  }
}

bool IsLegalTransition(TransactionState from, TransactionState to) {
  using S = TransactionState;
  switch (from) {
    case S::kProposed:
      return to == S::kAccepted || to == S::kRejected || to == S::kCancelled ||
             to == S::kExpired;
    case S::kAccepted:
      return to == S::kExecuting || to == S::kCancelled || to == S::kExpired;
    case S::kExecuting:
      return to == S::kCompleted || to == S::kFailed;
    default:
      return false;  // terminal states
  }
}

std::int64_t ProposalDeadlineMicros(const TransactionRecord& record) {
  if (record.proposal.timeout_micros <= 0) return -1;
  const auto proposed_at = record.state_timestamps.find(
      TransactionStateName(TransactionState::kProposed));
  if (proposed_at == record.state_timestamps.end()) return -1;
  return proposed_at->second + record.proposal.timeout_micros;
}

bool ProposalWindowLapsed(const TransactionRecord& record,
                          std::int64_t now_micros) {
  const std::int64_t deadline = ProposalDeadlineMicros(record);
  return deadline >= 0 && now_micros > deadline;
}

namespace {

void EncodeControlPointRequest(const ControlPointRequest& request,
                               util::ByteWriter& writer) {
  writer.WriteString(request.control_point);
  writer.WriteDoubleVector(request.target_displacement);
  writer.WriteDoubleVector(request.target_force);
}

util::Result<ControlPointRequest> DecodeControlPointRequest(
    util::ByteReader& reader) {
  ControlPointRequest request;
  NEES_ASSIGN_OR_RETURN(request.control_point, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(request.target_displacement,
                        reader.ReadDoubleVector());
  NEES_ASSIGN_OR_RETURN(request.target_force, reader.ReadDoubleVector());
  return request;
}

void EncodeControlPointResult(const ControlPointResult& result,
                              util::ByteWriter& writer) {
  writer.WriteString(result.control_point);
  writer.WriteDoubleVector(result.measured_displacement);
  writer.WriteDoubleVector(result.measured_force);
}

util::Result<ControlPointResult> DecodeControlPointResult(
    util::ByteReader& reader) {
  ControlPointResult result;
  NEES_ASSIGN_OR_RETURN(result.control_point, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(result.measured_displacement,
                        reader.ReadDoubleVector());
  NEES_ASSIGN_OR_RETURN(result.measured_force, reader.ReadDoubleVector());
  return result;
}

}  // namespace

void EncodeProposal(const Proposal& proposal, util::ByteWriter& writer) {
  writer.WriteString(proposal.transaction_id);
  writer.WriteU32(static_cast<std::uint32_t>(proposal.actions.size()));
  for (const ControlPointRequest& action : proposal.actions) {
    EncodeControlPointRequest(action, writer);
  }
  writer.WriteI64(proposal.timeout_micros);
  writer.WriteI64(proposal.step_index);
}

util::Result<Proposal> DecodeProposal(util::ByteReader& reader) {
  Proposal proposal;
  NEES_ASSIGN_OR_RETURN(proposal.transaction_id, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(ControlPointRequest action,
                          DecodeControlPointRequest(reader));
    proposal.actions.push_back(std::move(action));
  }
  NEES_ASSIGN_OR_RETURN(proposal.timeout_micros, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(proposal.step_index, reader.ReadI64());
  return proposal;
}

void EncodeTransactionResult(const TransactionResult& result,
                             util::ByteWriter& writer) {
  writer.WriteU32(static_cast<std::uint32_t>(result.results.size()));
  for (const ControlPointResult& entry : result.results) {
    EncodeControlPointResult(entry, writer);
  }
}

util::Result<TransactionResult> DecodeTransactionResult(
    util::ByteReader& reader) {
  TransactionResult result;
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(ControlPointResult entry,
                          DecodeControlPointResult(reader));
    result.results.push_back(std::move(entry));
  }
  return result;
}

void EncodeTransactionRecord(const TransactionRecord& record,
                             util::ByteWriter& writer) {
  EncodeProposal(record.proposal, writer);
  writer.WriteU8(static_cast<std::uint8_t>(record.state));
  writer.WriteString(record.detail);
  EncodeTransactionResult(record.result, writer);
  writer.WriteU32(static_cast<std::uint32_t>(record.state_timestamps.size()));
  for (const auto& [state, micros] : record.state_timestamps) {
    writer.WriteString(state);
    writer.WriteI64(micros);
  }
}

util::Result<TransactionRecord> DecodeTransactionRecord(
    util::ByteReader& reader) {
  TransactionRecord record;
  NEES_ASSIGN_OR_RETURN(record.proposal, DecodeProposal(reader));
  NEES_ASSIGN_OR_RETURN(std::uint8_t state, reader.ReadU8());
  if (state > static_cast<std::uint8_t>(TransactionState::kExpired)) {
    return util::DataLoss("invalid transaction state byte");
  }
  record.state = static_cast<TransactionState>(state);
  NEES_ASSIGN_OR_RETURN(record.detail, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(record.result, DecodeTransactionResult(reader));
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(std::int64_t micros, reader.ReadI64());
    record.state_timestamps[key] = micros;
  }
  return record;
}

}  // namespace nees::ntcp
