#include "ntcp/client.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace nees::ntcp {

NtcpClient::NtcpClient(net::RpcClient* rpc, std::string server_endpoint,
                       RetryPolicy policy, util::Clock* clock)
    : rpc_(rpc),
      server_(std::move(server_endpoint)),
      policy_(policy),
      clock_(clock) {}

util::Result<net::Bytes> NtcpClient::CallWithRetry(const std::string& method,
                                                   const net::Bytes& body,
                                                   const SpanTags& tags) {
  ++stats_.calls;
  obs::Span span;
  std::int64_t t0 = 0;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan(method, "protocol");
    span.AddTag("server", server_);
    for (const auto& [key, value] : tags) span.AddTag(key, value);
    t0 = tracer_->NowMicros();
  }
  std::int64_t backoff = policy_.initial_backoff_micros;
  util::Status last_error = util::Internal("retry loop did not run");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    auto result =
        rpc_->Call(server_, method, body, policy_.rpc_timeout_micros);
    if (result.ok()) {
      if (attempt > 1) ++stats_.recovered;
      if (tracer_ != nullptr) {
        span.AddTag("attempts", std::to_string(attempt));
        tracer_->metrics().Observe(
            "ntcp.client.call_micros",
            static_cast<double>(tracer_->NowMicros() - t0));
      }
      return result;
    }
    last_error = result.status();
    if (!last_error.transient()) {  // definitive answer
      if (tracer_ != nullptr) {
        span.AddTag("error", std::string(util::ErrorCodeName(
                                 last_error.code())));
        tracer_->metrics().Observe(
            "ntcp.client.call_micros",
            static_cast<double>(tracer_->NowMicros() - t0));
      }
      return last_error;
    }
    if (attempt == policy_.max_attempts) break;
    ++stats_.retries;
    NEES_LOG_WARN("ntcp.client")
        << method << " to " << server_ << " attempt " << attempt
        << " failed transiently (" << last_error.ToString() << "); retrying";
    clock_->SleepMicros(backoff);
    backoff = std::min<std::int64_t>(
        static_cast<std::int64_t>(backoff * policy_.backoff_multiplier),
        policy_.max_backoff_micros);
  }
  ++stats_.gave_up;
  if (tracer_ != nullptr) {
    span.AddTag("error", "exhausted");
    tracer_->metrics().Observe(
        "ntcp.client.call_micros",
        static_cast<double>(tracer_->NowMicros() - t0));
  }
  return last_error;
}

util::Status NtcpClient::Propose(const Proposal& proposal) {
  util::ByteWriter writer;
  EncodeProposal(proposal, writer);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes response,
      CallWithRetry("ntcp.propose", writer.Take(),
                    {{"txn", proposal.transaction_id},
                     {"step", std::to_string(proposal.step_index)}}));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(bool accepted, reader.ReadBool());
  NEES_ASSIGN_OR_RETURN(std::string reason, reader.ReadString());
  if (!accepted) {
    return util::PolicyViolation("proposal rejected by " + server_ + ": " +
                                 reason);
  }
  return util::OkStatus();
}

util::Result<TransactionResult> NtcpClient::Execute(
    const std::string& transaction_id) {
  util::ByteWriter writer;
  writer.WriteString(transaction_id);
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        CallWithRetry("ntcp.execute", writer.Take(),
                                      {{"txn", transaction_id}}));
  util::ByteReader reader(response);
  return DecodeTransactionResult(reader);
}

util::Status NtcpClient::Cancel(const std::string& transaction_id) {
  util::ByteWriter writer;
  writer.WriteString(transaction_id);
  return CallWithRetry("ntcp.cancel", writer.Take(),
                       {{"txn", transaction_id}})
      .status();
}

util::Result<TransactionRecord> NtcpClient::GetTransaction(
    const std::string& transaction_id) {
  util::ByteWriter writer;
  writer.WriteString(transaction_id);
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        CallWithRetry("ntcp.getTransaction", writer.Take()));
  util::ByteReader reader(response);
  return DecodeTransactionRecord(reader);
}

util::Result<std::vector<std::string>> NtcpClient::ListTransactions() {
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        CallWithRetry("ntcp.listTransactions", {}));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::string> ids;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
    ids.push_back(std::move(id));
  }
  return ids;
}

}  // namespace nees::ntcp
