#include "ntcp/client.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "util/frame_pool.h"
#include "util/logging.h"

namespace nees::ntcp {
namespace {

// Method names interned once per process; the per-call hot path carries
// only the 4-byte ids.
net::MethodId ProposeMethod() {
  static const net::MethodId id("ntcp.propose");
  return id;
}
net::MethodId ExecuteMethod() {
  static const net::MethodId id("ntcp.execute");
  return id;
}
net::MethodId CancelMethod() {
  static const net::MethodId id("ntcp.cancel");
  return id;
}
net::MethodId GetTransactionMethod() {
  static const net::MethodId id("ntcp.getTransaction");
  return id;
}
net::MethodId ListTransactionsMethod() {
  static const net::MethodId id("ntcp.listTransactions");
  return id;
}

}  // namespace

NtcpClient::NtcpClient(net::RpcClient* rpc, std::string server_endpoint,
                       RetryPolicy policy, util::Clock* clock)
    : rpc_(rpc),
      server_(std::move(server_endpoint)),
      server_id_(server_),
      policy_(policy),
      clock_(clock) {}

// One in-flight NTCP operation. The retry loop of the old synchronous
// CallWithRetry lives here as an explicit state machine so that many
// operations (one per site) can be interleaved on a single thread.
struct NtcpClient::AsyncOp::State {
  enum class Phase { kInFlight, kBackoff, kDone };

  NtcpClient* client = nullptr;
  net::MethodId method;
  net::Bytes body;  // kept for reissue on retry; pooled, released on finish
  int attempt = 1;
  std::int64_t backoff_micros = 0;
  bool auth_refreshed = false;  // one credential refresh per operation
  Phase phase = Phase::kInFlight;
  net::RpcClient::AsyncCall call;
  std::int64_t resume_at_micros = 0;  // backoff expiry (client clock)
  util::Result<net::Bytes> outcome = util::Internal("unresolved");
  std::uint64_t span_id = 0;
  std::int64_t trace_t0 = 0;       // tracer clock at issue
  std::int64_t start_micros = 0;   // client clock at issue
  std::int64_t finish_micros = 0;  // client clock at resolution
};

// Defined where AsyncOp::State is complete (op_pool_'s deleter needs it).
NtcpClient::~NtcpClient() = default;

NtcpClient::AsyncOp::AsyncOp() = default;
NtcpClient::AsyncOp::AsyncOp(AsyncOp&&) noexcept = default;
NtcpClient::AsyncOp& NtcpClient::AsyncOp::operator=(AsyncOp&&) noexcept =
    default;
NtcpClient::AsyncOp::~AsyncOp() = default;

bool NtcpClient::AsyncOp::finished() const {
  return state_ == nullptr || state_->phase == State::Phase::kDone;
}

std::int64_t NtcpClient::AsyncOp::NextEventMicros() const {
  if (finished()) return std::numeric_limits<std::int64_t>::max();
  if (state_->phase == State::Phase::kInFlight) {
    return state_->call.deadline_micros();
  }
  return state_->resume_at_micros;
}

std::int64_t NtcpClient::AsyncOp::elapsed_micros() const {
  if (state_ == nullptr || state_->phase != State::Phase::kDone) return 0;
  return state_->finish_micros - state_->start_micros;
}

bool NtcpClient::AsyncOp::Pump() {
  if (state_ == nullptr) return true;
  State& s = *state_;
  if (s.phase == State::Phase::kDone) return true;
  NtcpClient* client = s.client;

  auto finish = [&](util::Result<net::Bytes> outcome,
                    const std::string& error_tag) {
    s.outcome = std::move(outcome);
    s.phase = State::Phase::kDone;
    s.finish_micros = client->clock_->NowMicros();
    util::ReleaseFrame(std::move(s.body));  // no more reissues from here
    if (client->tracer_ != nullptr) {
      if (!error_tag.empty()) {
        client->tracer_->AddTagById(s.span_id, "error", error_tag);
      } else {
        client->tracer_->AddTagById(s.span_id, "attempts",
                                    std::to_string(s.attempt));
      }
      client->tracer_->metrics().Observe(
          "ntcp.client.call_micros",
          static_cast<double>(client->tracer_->NowMicros() - s.trace_t0));
      client->tracer_->EndSpanId(s.span_id);
    }
  };

  for (;;) {
    if (s.phase == State::Phase::kInFlight) {
      util::Result<net::Bytes> result = util::Internal("unresolved");
      if (!s.call.TryResolve(&result)) return false;
      if (result.ok()) {
        if (s.attempt > 1) ++client->stats_.recovered;
        finish(std::move(result), "");
        return true;
      }
      const util::Status error = result.status();
      const bool auth_error =
          error.code() == util::ErrorCode::kUnauthenticated ||
          error.code() == util::ErrorCode::kPermissionDenied;
      if (auth_error && !s.auth_refreshed &&
          client->auth_refresher_ != nullptr) {
        // An auth rejection is definitive for *this credential*, not for
        // the operation: a proxy certificate that expired mid-run (the
        // fuzzer's kCredentialExpiry fault class) is cured by re-running
        // the GSI handshake, after which the reissue below carries a fresh
        // token. Without this hook the client treated every auth error as
        // final and a routine credential rollover killed the whole run.
        s.auth_refreshed = true;
        util::Status refreshed = client->auth_refresher_();
        if (refreshed.ok()) {
          ++client->stats_.retries;
          ++client->stats_.auth_refreshes;
          NEES_LOG_WARN("ntcp.client")
              << s.method << " to " << client->server_
              << " rejected with stale credentials ("
              << error.ToString() << "); refreshed, retrying";
          s.resume_at_micros =
              client->clock_->NowMicros() + s.backoff_micros;
          s.phase = State::Phase::kBackoff;
          if (client->clock_->NowMicros() < s.resume_at_micros) return false;
          ++s.attempt;
          s.call = client->rpc_->CallAsync(client->server_id_, s.method,
                                           s.body,
                                           client->policy_.rpc_timeout_micros);
          s.phase = State::Phase::kInFlight;
          continue;
        }
        NEES_LOG_WARN("ntcp.client")
            << "credential refresh for " << client->server_
            << " failed: " << refreshed.ToString();
      }
      if (!error.transient()) {  // definitive answer
        finish(error, std::string(util::ErrorCodeName(error.code())));
        return true;
      }
      if (s.attempt == client->policy_.max_attempts) {
        ++client->stats_.gave_up;
        finish(error, "exhausted");
        return true;
      }
      ++client->stats_.retries;
      NEES_LOG_WARN("ntcp.client")
          << s.method << " to " << client->server_ << " attempt " << s.attempt
          << " failed transiently (" << error.ToString() << "); retrying";
      s.resume_at_micros = client->clock_->NowMicros() + s.backoff_micros;
      s.backoff_micros = std::min<std::int64_t>(
          static_cast<std::int64_t>(s.backoff_micros *
                                    client->policy_.backoff_multiplier),
          client->policy_.max_backoff_micros);
      s.phase = State::Phase::kBackoff;
      // Fall through: with a SimClock the backoff may already have lapsed.
    }
    if (client->clock_->NowMicros() < s.resume_at_micros) return false;
    ++s.attempt;
    s.call = client->rpc_->CallAsync(client->server_id_, s.method, s.body,
                                     client->policy_.rpc_timeout_micros);
    s.phase = State::Phase::kInFlight;
    // Loop: in immediate mode the reissued call already resolved inline.
  }
}

util::Result<net::Bytes> NtcpClient::AsyncOp::Await() {
  if (state_ == nullptr) return util::Internal("Await() on an empty AsyncOp");
  while (!Pump()) {
    State& s = *state_;
    NtcpClient* client = s.client;
    if (s.phase == State::Phase::kInFlight) {
      client->rpc_->WaitAnyUntil({&s.call}, s.call.deadline_micros());
    } else {
      const std::int64_t now = client->clock_->NowMicros();
      if (s.resume_at_micros > now) {
        client->clock_->SleepMicros(s.resume_at_micros - now);
      }
    }
  }
  util::Result<net::Bytes> outcome = std::move(state_->outcome);
  // Park the spent block for the owning client's next StartOp. Resetting
  // in place is allocation-free: the body frame was already released, the
  // RPC handle was consumed, and the placeholder status fits in-line.
  NtcpClient* client = state_->client;
  constexpr std::size_t kMaxPooledOps = 64;
  if (client->op_pool_.size() < kMaxPooledOps) {
    *state_ = State();
    client->op_pool_.push_back(std::move(state_));
  } else {
    state_.reset();
  }
  return outcome;
}

NtcpClient::AsyncOp NtcpClient::StartOp(net::MethodId method, net::Bytes body,
                                        const SpanTags& tags,
                                        std::uint64_t parent_span_id) {
  ++stats_.calls;
  AsyncOp op;
  if (!op_pool_.empty()) {
    op.state_ = std::move(op_pool_.back());
    op_pool_.pop_back();
  } else {
    op.state_ = std::make_unique<AsyncOp::State>();
  }
  AsyncOp::State& s = *op.state_;
  s.client = this;
  s.method = method;
  s.body = std::move(body);
  s.backoff_micros = policy_.initial_backoff_micros;
  if (tracer_ != nullptr) {
    if (parent_span_id == 0) parent_span_id = tracer_->CurrentSpanId();
    s.span_id = tracer_->BeginSpanId(method.str(), "protocol", parent_span_id);
    tracer_->AddTagById(s.span_id, "server", server_);
    for (const auto& [key, value] : tags) {
      tracer_->AddTagById(s.span_id, key, value);
    }
    s.trace_t0 = tracer_->NowMicros();
  }
  s.start_micros = clock_->NowMicros();
  s.call =
      rpc_->CallAsync(server_id_, method, s.body, policy_.rpc_timeout_micros);
  // Pump once so immediate-mode delivery (response already in the slot)
  // resolves without a wait; in scheduled mode this is a cheap no-op.
  op.Pump();
  return op;
}

void NtcpClient::AwaitAll(std::vector<AsyncOp>& ops) {
  for (;;) {
    bool all_done = true;
    for (AsyncOp& op : ops) all_done &= op.Pump();
    if (all_done) return;

    // Collect the in-flight attempts and the earliest self-driven event
    // (attempt deadline or backoff expiry) across unfinished ops.
    std::vector<net::RpcClient::AsyncCall*> calls;
    std::int64_t wake = std::numeric_limits<std::int64_t>::max();
    net::RpcClient* rpc = nullptr;
    util::Clock* clock = nullptr;
    for (AsyncOp& op : ops) {
      if (op.finished()) continue;
      AsyncOp::State& s = *op.state_;
      rpc = s.client->rpc_;
      clock = s.client->clock_;
      wake = std::min(wake, op.NextEventMicros());
      if (s.phase == AsyncOp::State::Phase::kInFlight) {
        calls.push_back(&s.call);
      }
    }
    if (rpc == nullptr) return;  // nothing unfinished after all
    if (!calls.empty()) {
      // Sleep until any in-flight attempt completes, a deadline lapses, or
      // the earliest backoff expires — whichever is first.
      rpc->WaitAnyUntil(calls, wake);
    } else {
      // Only backoff timers remain; sleeping advances a SimClock instantly.
      const std::int64_t now = clock->NowMicros();
      if (wake > now) clock->SleepMicros(wake - now);
    }
  }
}

util::Result<net::Bytes> NtcpClient::CallWithRetry(net::MethodId method,
                                                   const net::Bytes& body,
                                                   const SpanTags& tags) {
  AsyncOp op = StartOp(method, body, tags, /*parent_span_id=*/0);
  return op.Await();
}

NtcpClient::AsyncOp NtcpClient::ProposeAsync(const Proposal& proposal,
                                             std::uint64_t parent_span_id) {
  util::ByteWriter writer(util::AcquireFrame());
  EncodeProposal(proposal, writer);
  // Tags annotate the operation's span; skip building them untraced.
  SpanTags tags;
  if (tracer_ != nullptr) {
    tags = {{"txn", proposal.transaction_id},
            {"step", std::to_string(proposal.step_index)}};
  }
  return StartOp(ProposeMethod(), writer.Take(), tags, parent_span_id);
}

NtcpClient::AsyncOp NtcpClient::ExecuteAsync(
    const std::string& transaction_id, std::uint64_t parent_span_id) {
  util::ByteWriter writer(util::AcquireFrame(transaction_id.size() + 4));
  writer.WriteString(transaction_id);
  SpanTags tags;
  if (tracer_ != nullptr) tags = {{"txn", transaction_id}};
  return StartOp(ExecuteMethod(), writer.Take(), tags, parent_span_id);
}

NtcpClient::AsyncOp NtcpClient::CancelAsync(const std::string& transaction_id,
                                            std::uint64_t parent_span_id) {
  util::ByteWriter writer(util::AcquireFrame(transaction_id.size() + 4));
  writer.WriteString(transaction_id);
  SpanTags tags;
  if (tracer_ != nullptr) tags = {{"txn", transaction_id}};
  return StartOp(CancelMethod(), writer.Take(), tags, parent_span_id);
}

util::Status NtcpClient::FinishPropose(AsyncOp& op) {
  const std::string server =
      op.state_ != nullptr ? op.state_->client->server_ : "";
  NEES_ASSIGN_OR_RETURN(net::Bytes response, op.Await());
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(bool accepted, reader.ReadBool());
  NEES_ASSIGN_OR_RETURN(std::string reason, reader.ReadString());
  util::ReleaseFrame(std::move(response));
  if (!accepted) {
    return util::PolicyViolation("proposal rejected by " + server + ": " +
                                 reason);
  }
  return util::OkStatus();
}

util::Result<TransactionResult> NtcpClient::FinishExecute(AsyncOp& op) {
  NEES_ASSIGN_OR_RETURN(net::Bytes response, op.Await());
  util::ByteReader reader(response);
  util::Result<TransactionResult> result = DecodeTransactionResult(reader);
  util::ReleaseFrame(std::move(response));
  return result;
}

util::Status NtcpClient::FinishCancel(AsyncOp& op) {
  util::Result<net::Bytes> response = op.Await();
  if (response.ok()) util::ReleaseFrame(std::move(response.value()));
  return response.status();
}

util::Status NtcpClient::Propose(const Proposal& proposal) {
  AsyncOp op = ProposeAsync(proposal);
  return FinishPropose(op);
}

util::Result<TransactionResult> NtcpClient::Execute(
    const std::string& transaction_id) {
  AsyncOp op = ExecuteAsync(transaction_id);
  return FinishExecute(op);
}

util::Status NtcpClient::Cancel(const std::string& transaction_id) {
  AsyncOp op = CancelAsync(transaction_id);
  return FinishCancel(op);
}

util::Result<TransactionRecord> NtcpClient::GetTransaction(
    const std::string& transaction_id) {
  util::ByteWriter writer(util::AcquireFrame(transaction_id.size() + 4));
  writer.WriteString(transaction_id);
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        CallWithRetry(GetTransactionMethod(), writer.Take()));
  util::ByteReader reader(response);
  return DecodeTransactionRecord(reader);
}

util::Result<std::vector<std::string>> NtcpClient::ListTransactions() {
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        CallWithRetry(ListTransactionsMethod(), {}));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::string> ids;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
    ids.push_back(std::move(id));
  }
  return ids;
}

}  // namespace nees::ntcp
