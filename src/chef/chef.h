// CHEF-based collaboration environment (§3, Fig. 8): remote participants
// log in, chat, keep an electronic notebook and message board, and watch
// near-real-time data viewers — time series, hysteresis plots, and a
// VCR-style playback cursor (play/pause/rewind/fast-forward over the
// recorded response). During MOST "over 130 remote participants logged on";
// ParticipantSwarm reproduces that load.
//
// RPC surface (all session-scoped calls carry the session id):
//   chef.login {user}                  -> {session}
//   chef.logout {session}
//   chef.presence {}                   -> {active users}
//   chef.chat.post {session, room, text}
//   chef.chat.history {room, from}     -> [messages]
//   chef.board.post {session, topic, text}
//   chef.board.read {topic}            -> [posts]
//   chef.notebook.append {session, text}
//   chef.notebook.read {}              -> [entries]
//   chef.viewer.series {channel, max}  -> [(t, v)]
//   chef.viewer.hysteresis {d, f, max} -> [(d, f)]
//   chef.viewer.vcr {session, command} -> {cursor}
//   chef.viewer.at {session, channel}  -> {t, v}
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "nsds/nsds.h"
#include "util/clock.h"
#include "util/result.h"

namespace nees::chef {

struct ChatMessage {
  std::string room;
  std::string user;
  std::string text;
  std::int64_t time_micros = 0;
};

struct BoardPost {
  std::string topic;
  std::string user;
  std::string text;
  std::int64_t time_micros = 0;
};

struct NotebookEntry {
  std::string user;
  std::string text;
  std::int64_t time_micros = 0;
};

struct TimePoint {
  std::int64_t time_micros = 0;
  double value = 0.0;
};

/// A saved set of views (Fig. 8: "Arrangements of one or more views can be
/// saved or viewed, and the Data Viewer automatically organizes a given
/// arrangement").
struct ViewArrangement {
  std::string name;
  std::string creator;
  std::vector<std::string> channels;
};

enum class VcrCommand : std::uint8_t {
  kPlay = 0,
  kPause = 1,
  kRewind = 2,
  kFastForward = 3,
  kStep = 4,       // advance one sample (play mode ticks)
  kSeekStart = 5,
  kSeekEnd = 6,
};

/// Aggregated time-series store behind the viewers.
class DataViewerStore {
 public:
  void Feed(const nsds::DataSample& sample);
  void FeedFrame(const nsds::DataFrame& frame);

  std::vector<TimePoint> Series(const std::string& channel,
                                std::size_t max_points) const;
  /// Pairs displacement/force samples by timestamp for hysteresis plots.
  std::vector<std::pair<double, double>> Hysteresis(
      const std::string& displacement_channel,
      const std::string& force_channel, std::size_t max_points) const;
  std::size_t SampleCount(const std::string& channel) const;
  std::vector<std::string> Channels() const;

 private:
  mutable util::Mutex mu_{"chef.DataViewerStore"};
  std::map<std::string, std::vector<TimePoint>> series_;
};

struct ChefStats {
  std::uint64_t logins = 0;
  std::uint64_t peak_concurrent = 0;
  std::uint64_t chat_messages = 0;
  std::uint64_t viewer_reads = 0;
};

class ChefServer {
 public:
  ChefServer(net::Network* network, std::string endpoint,
             util::Clock* clock = &util::SystemClock::Instance());

  util::Status Start();

  /// Wires the viewer store to a live NSDS subscription.
  void ConnectStream(nsds::NsdsSubscriber& subscriber);

  /// Downloads an archived DAQ file from the repository through the https
  /// bridge and loads its samples into the viewers (§3: "access the
  /// metadata catalog and download experimental data so that it could be
  /// viewed immediately by remote participants"). Returns samples loaded.
  util::Result<std::size_t> LoadArchivedData(net::RpcClient* rpc,
                                             const std::string& https_bridge,
                                             const std::string& logical_name);

  DataViewerStore& viewer() { return viewer_; }
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

  std::vector<std::string> ActiveUsers() const;
  ChefStats stats() const;
  net::RpcServer& rpc() { return rpc_server_; }

 private:
  struct Session {
    std::string user;
    std::size_t vcr_cursor = 0;
    bool playing = false;
  };

  util::Result<Session*> FindSessionLocked(const std::string& session_id);

  net::RpcServer rpc_server_;
  util::Clock* clock_;
  DataViewerStore viewer_;
  mutable util::Mutex mu_{"chef.ChefServer"};
  std::map<std::string, Session> sessions_;
  std::map<std::string, ViewArrangement> arrangements_;
  std::vector<ChatMessage> chat_;
  std::vector<BoardPost> board_;
  std::vector<NotebookEntry> notebook_;
  ChefStats stats_;
  std::uint64_t next_session_ = 1;
};

class ChefClient {
 public:
  ChefClient(net::Network* network, std::string endpoint,
             std::string chef_server);

  util::Status Login(const std::string& user);
  util::Status Logout();
  bool logged_in() const { return !session_.empty(); }

  util::Status PostChat(const std::string& room, const std::string& text);
  util::Result<std::vector<ChatMessage>> ChatHistory(const std::string& room,
                                                     std::size_t from = 0);
  util::Status PostBoard(const std::string& topic, const std::string& text);
  util::Result<std::vector<BoardPost>> ReadBoard(const std::string& topic);
  util::Status AppendNotebook(const std::string& text);
  util::Result<std::vector<NotebookEntry>> ReadNotebook();
  util::Result<std::vector<std::string>> Presence();

  util::Result<std::vector<TimePoint>> ViewerSeries(const std::string& channel,
                                                    std::size_t max = 10000);
  util::Result<std::vector<std::pair<double, double>>> ViewerHysteresis(
      const std::string& displacement_channel,
      const std::string& force_channel, std::size_t max = 10000);
  /// Issues a VCR command; returns the new cursor position.
  util::Result<std::size_t> Vcr(VcrCommand command);
  /// Sample at the current VCR cursor of `channel`.
  util::Result<TimePoint> ViewAt(const std::string& channel);

  /// Saves a named arrangement of views, shared with all participants.
  util::Status SaveArrangement(const std::string& name,
                               const std::vector<std::string>& channels);
  util::Result<std::vector<std::string>> ListArrangements();
  /// Opens an arrangement: each channel with its most recent sample.
  util::Result<std::vector<std::pair<std::string, TimePoint>>>
  OpenArrangement(const std::string& name);

 private:
  net::RpcClient rpc_;
  std::string server_;
  std::string session_;
};

/// Scripted remote-participation load: N users log in, chat, read the
/// viewers, and stay connected (the 130-participant story).
struct SwarmReport {
  int participants = 0;
  int chat_posts = 0;
  int viewer_reads = 0;
  int failures = 0;
};

SwarmReport RunParticipantSwarm(net::Network* network,
                                const std::string& chef_server,
                                int participants, int actions_per_user = 3);

}  // namespace nees::chef
