#include "chef/chef.h"

#include <algorithm>

#include "daq/daq.h"
#include "repo/facade.h"
#include "util/strings.h"
#include "util/uuid.h"

namespace nees::chef {

// ---------------------------------------------------------------------------
// DataViewerStore

void DataViewerStore::Feed(const nsds::DataSample& sample) {
  util::MutexLock lock(mu_);
  series_[sample.channel].push_back({sample.time_micros, sample.value});
}

void DataViewerStore::FeedFrame(const nsds::DataFrame& frame) {
  util::MutexLock lock(mu_);
  for (const nsds::DataSample& sample : frame.samples) {
    series_[sample.channel].push_back({sample.time_micros, sample.value});
  }
}

std::vector<TimePoint> DataViewerStore::Series(const std::string& channel,
                                               std::size_t max_points) const {
  util::MutexLock lock(mu_);
  auto it = series_.find(channel);
  if (it == series_.end()) return {};
  const auto& points = it->second;
  if (points.size() <= max_points) return points;
  return {points.end() - static_cast<std::ptrdiff_t>(max_points),
          points.end()};
}

std::vector<std::pair<double, double>> DataViewerStore::Hysteresis(
    const std::string& displacement_channel, const std::string& force_channel,
    std::size_t max_points) const {
  util::MutexLock lock(mu_);
  auto d_it = series_.find(displacement_channel);
  auto f_it = series_.find(force_channel);
  if (d_it == series_.end() || f_it == series_.end()) return {};

  // Pair samples with identical timestamps (both channels are produced by
  // the same step observer, so timestamps align exactly).
  std::vector<std::pair<double, double>> loop;
  std::size_t fi = 0;
  for (const TimePoint& d : d_it->second) {
    while (fi < f_it->second.size() &&
           f_it->second[fi].time_micros < d.time_micros) {
      ++fi;
    }
    if (fi < f_it->second.size() &&
        f_it->second[fi].time_micros == d.time_micros) {
      loop.emplace_back(d.value, f_it->second[fi].value);
    }
  }
  if (loop.size() > max_points) {
    loop.erase(loop.begin(),
               loop.end() - static_cast<std::ptrdiff_t>(max_points));
  }
  return loop;
}

std::size_t DataViewerStore::SampleCount(const std::string& channel) const {
  util::MutexLock lock(mu_);
  auto it = series_.find(channel);
  return it == series_.end() ? 0 : it->second.size();
}

std::vector<std::string> DataViewerStore::Channels() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, points] : series_) {
    (void)points;
    names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// ChefServer

ChefServer::ChefServer(net::Network* network, std::string endpoint,
                       util::Clock* clock)
    : rpc_server_(network, std::move(endpoint)), clock_(clock) {}

void ChefServer::ConnectStream(nsds::NsdsSubscriber& subscriber) {
  subscriber.SetFrameCallback(
      [this](const nsds::DataFrame& frame) { viewer_.FeedFrame(frame); });
}

util::Result<std::size_t> ChefServer::LoadArchivedData(
    net::RpcClient* rpc, const std::string& https_bridge,
    const std::string& logical_name) {
  NEES_ASSIGN_OR_RETURN(repo::Bytes content,
                        repo::HttpsGet(rpc, https_bridge, logical_name));
  NEES_ASSIGN_OR_RETURN(
      std::vector<nsds::DataSample> samples,
      daq::ParseDropCsv(std::string_view(
          reinterpret_cast<const char*>(content.data()), content.size())));
  for (const nsds::DataSample& sample : samples) viewer_.Feed(sample);
  return samples.size();
}

util::Result<ChefServer::Session*> ChefServer::FindSessionLocked(
    const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return util::Unauthenticated("no such CHEF session");
  }
  return &it->second;
}

std::vector<std::string> ChefServer::ActiveUsers() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> users;
  users.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    (void)id;
    users.push_back(session.user);
  }
  std::sort(users.begin(), users.end());
  return users;
}

ChefStats ChefServer::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

util::Status ChefServer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());

  rpc_server_.RegisterMethod(
      "chef.login",
      [this](const net::CallContext& context,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string user, reader.ReadString());
        // A GSI-authenticated subject overrides the claimed user name.
        if (!context.subject.empty()) user = context.subject;
        if (user.empty()) return util::InvalidArgument("user required");
        util::MutexLock lock(mu_);
        const std::string session_id =
            "chef-" + std::to_string(next_session_++) + "-" + util::NewUuid();
        sessions_[session_id] = Session{user, 0, false};
        ++stats_.logins;
        stats_.peak_concurrent =
            std::max<std::uint64_t>(stats_.peak_concurrent, sessions_.size());
        util::ByteWriter writer;
        writer.WriteString(session_id);
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.logout",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        util::MutexLock lock(mu_);
        if (sessions_.erase(session) == 0) {
          return util::Unauthenticated("no such CHEF session");
        }
        return net::Bytes{};
      });

  rpc_server_.RegisterMethod(
      "chef.presence",
      [this](const net::CallContext&,
             const net::Bytes&) -> util::Result<net::Bytes> {
        const auto users = ActiveUsers();
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(users.size()));
        for (const std::string& user : users) writer.WriteString(user);
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.chat.post",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string room, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string text, reader.ReadString());
        util::MutexLock lock(mu_);
        NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                              FindSessionLocked(session));
        chat_.push_back(
            {room, session_ptr->user, text, clock_->NowMicros()});
        ++stats_.chat_messages;
        return net::Bytes{};
      });

  rpc_server_.RegisterMethod(
      "chef.chat.history",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string room, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t from, reader.ReadU32());
        util::MutexLock lock(mu_);
        util::ByteWriter writer;
        std::vector<const ChatMessage*> matching;
        for (const ChatMessage& message : chat_) {
          if (message.room == room) matching.push_back(&message);
        }
        const std::size_t start = std::min<std::size_t>(from, matching.size());
        writer.WriteU32(static_cast<std::uint32_t>(matching.size() - start));
        for (std::size_t i = start; i < matching.size(); ++i) {
          writer.WriteString(matching[i]->user);
          writer.WriteString(matching[i]->text);
          writer.WriteI64(matching[i]->time_micros);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.board.post",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string topic, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string text, reader.ReadString());
        util::MutexLock lock(mu_);
        NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                              FindSessionLocked(session));
        board_.push_back(
            {topic, session_ptr->user, text, clock_->NowMicros()});
        return net::Bytes{};
      });

  rpc_server_.RegisterMethod(
      "chef.board.read",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string topic, reader.ReadString());
        util::MutexLock lock(mu_);
        util::ByteWriter writer;
        std::vector<const BoardPost*> matching;
        for (const BoardPost& post : board_) {
          if (post.topic == topic) matching.push_back(&post);
        }
        writer.WriteU32(static_cast<std::uint32_t>(matching.size()));
        for (const BoardPost* post : matching) {
          writer.WriteString(post->user);
          writer.WriteString(post->text);
          writer.WriteI64(post->time_micros);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.notebook.append",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string text, reader.ReadString());
        util::MutexLock lock(mu_);
        NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                              FindSessionLocked(session));
        notebook_.push_back({session_ptr->user, text, clock_->NowMicros()});
        return net::Bytes{};
      });

  rpc_server_.RegisterMethod(
      "chef.notebook.read",
      [this](const net::CallContext&,
             const net::Bytes&) -> util::Result<net::Bytes> {
        util::MutexLock lock(mu_);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(notebook_.size()));
        for (const NotebookEntry& entry : notebook_) {
          writer.WriteString(entry.user);
          writer.WriteString(entry.text);
          writer.WriteI64(entry.time_micros);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.series",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string channel, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t max_points, reader.ReadU32());
        const auto points = viewer_.Series(channel, max_points);
        {
          util::MutexLock lock(mu_);
          ++stats_.viewer_reads;
        }
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(points.size()));
        for (const TimePoint& point : points) {
          writer.WriteI64(point.time_micros);
          writer.WriteDouble(point.value);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.hysteresis",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string d_channel, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string f_channel, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t max_points, reader.ReadU32());
        const auto loop = viewer_.Hysteresis(d_channel, f_channel, max_points);
        {
          util::MutexLock lock(mu_);
          ++stats_.viewer_reads;
        }
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(loop.size()));
        for (const auto& [d, f] : loop) {
          writer.WriteDouble(d);
          writer.WriteDouble(f);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.vcr",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint8_t raw_command, reader.ReadU8());
        NEES_ASSIGN_OR_RETURN(std::string channel, reader.ReadString());
        if (raw_command > static_cast<std::uint8_t>(VcrCommand::kSeekEnd)) {
          return util::InvalidArgument("bad VCR command");
        }
        const auto command = static_cast<VcrCommand>(raw_command);
        const std::size_t total = viewer_.SampleCount(channel);

        util::MutexLock lock(mu_);
        NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                              FindSessionLocked(session));
        switch (command) {
          case VcrCommand::kPlay:
            session_ptr->playing = true;
            break;
          case VcrCommand::kPause:
            session_ptr->playing = false;
            break;
          case VcrCommand::kRewind:
            session_ptr->vcr_cursor =
                session_ptr->vcr_cursor >= 10 ? session_ptr->vcr_cursor - 10
                                              : 0;
            break;
          case VcrCommand::kFastForward:
            session_ptr->vcr_cursor =
                std::min(session_ptr->vcr_cursor + 10,
                         total == 0 ? 0 : total - 1);
            break;
          case VcrCommand::kStep:
            if (session_ptr->playing && total > 0) {
              session_ptr->vcr_cursor =
                  std::min(session_ptr->vcr_cursor + 1, total - 1);
            }
            break;
          case VcrCommand::kSeekStart:
            session_ptr->vcr_cursor = 0;
            break;
          case VcrCommand::kSeekEnd:
            session_ptr->vcr_cursor = total == 0 ? 0 : total - 1;
            break;
        }
        util::ByteWriter writer;
        writer.WriteU64(session_ptr->vcr_cursor);
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.at",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string channel, reader.ReadString());
        std::size_t cursor = 0;
        {
          util::MutexLock lock(mu_);
          NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                                FindSessionLocked(session));
          cursor = session_ptr->vcr_cursor;
        }
        const auto points =
            viewer_.Series(channel, std::numeric_limits<std::size_t>::max());
        if (points.empty()) return util::NotFound("no data for " + channel);
        const TimePoint& point = points[std::min(cursor, points.size() - 1)];
        util::ByteWriter writer;
        writer.WriteI64(point.time_micros);
        writer.WriteDouble(point.value);
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.saveArrangement",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string session, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
        ViewArrangement arrangement;
        arrangement.name = name;
        for (std::uint32_t i = 0; i < count; ++i) {
          NEES_ASSIGN_OR_RETURN(std::string channel, reader.ReadString());
          arrangement.channels.push_back(std::move(channel));
        }
        if (arrangement.channels.empty()) {
          return util::InvalidArgument("arrangement needs >= 1 view");
        }
        util::MutexLock lock(mu_);
        NEES_ASSIGN_OR_RETURN(Session * session_ptr,
                              FindSessionLocked(session));
        arrangement.creator = session_ptr->user;
        arrangements_[name] = std::move(arrangement);
        return net::Bytes{};
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.listArrangements",
      [this](const net::CallContext&,
             const net::Bytes&) -> util::Result<net::Bytes> {
        util::MutexLock lock(mu_);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(arrangements_.size()));
        for (const auto& [name, arrangement] : arrangements_) {
          (void)arrangement;
          writer.WriteString(name);
        }
        return writer.Take();
      });

  rpc_server_.RegisterMethod(
      "chef.viewer.openArrangement",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        ViewArrangement arrangement;
        {
          util::MutexLock lock(mu_);
          auto it = arrangements_.find(name);
          if (it == arrangements_.end()) {
            return util::NotFound("no arrangement named " + name);
          }
          arrangement = it->second;
        }
        // "The Data Viewer automatically organizes a given arrangement":
        // return each view with its freshest sample.
        util::ByteWriter writer;
        writer.WriteU32(
            static_cast<std::uint32_t>(arrangement.channels.size()));
        for (const std::string& channel : arrangement.channels) {
          writer.WriteString(channel);
          const auto points = viewer_.Series(channel, 1);
          writer.WriteBool(!points.empty());
          if (!points.empty()) {
            writer.WriteI64(points.back().time_micros);
            writer.WriteDouble(points.back().value);
          }
        }
        return writer.Take();
      });

  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// ChefClient

ChefClient::ChefClient(net::Network* network, std::string endpoint,
                       std::string chef_server)
    : rpc_(network, std::move(endpoint)), server_(std::move(chef_server)) {}

util::Status ChefClient::Login(const std::string& user) {
  util::ByteWriter writer;
  writer.WriteString(user);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.login", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(session_, reader.ReadString());
  return util::OkStatus();
}

util::Status ChefClient::Logout() {
  util::ByteWriter writer;
  writer.WriteString(session_);
  NEES_RETURN_IF_ERROR(rpc_.Call(server_, "chef.logout", writer.Take())
                           .status());
  session_.clear();
  return util::OkStatus();
}

util::Status ChefClient::PostChat(const std::string& room,
                                  const std::string& text) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteString(room);
  writer.WriteString(text);
  return rpc_.Call(server_, "chef.chat.post", writer.Take()).status();
}

util::Result<std::vector<ChatMessage>> ChefClient::ChatHistory(
    const std::string& room, std::size_t from) {
  util::ByteWriter writer;
  writer.WriteString(room);
  writer.WriteU32(static_cast<std::uint32_t>(from));
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_.Call(server_, "chef.chat.history", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<ChatMessage> messages;
  for (std::uint32_t i = 0; i < count; ++i) {
    ChatMessage message;
    message.room = room;
    NEES_ASSIGN_OR_RETURN(message.user, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(message.text, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(message.time_micros, reader.ReadI64());
    messages.push_back(std::move(message));
  }
  return messages;
}

util::Status ChefClient::PostBoard(const std::string& topic,
                                   const std::string& text) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteString(topic);
  writer.WriteString(text);
  return rpc_.Call(server_, "chef.board.post", writer.Take()).status();
}

util::Result<std::vector<BoardPost>> ChefClient::ReadBoard(
    const std::string& topic) {
  util::ByteWriter writer;
  writer.WriteString(topic);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.board.read", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<BoardPost> posts;
  for (std::uint32_t i = 0; i < count; ++i) {
    BoardPost post;
    post.topic = topic;
    NEES_ASSIGN_OR_RETURN(post.user, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(post.text, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(post.time_micros, reader.ReadI64());
    posts.push_back(std::move(post));
  }
  return posts;
}

util::Status ChefClient::AppendNotebook(const std::string& text) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteString(text);
  return rpc_.Call(server_, "chef.notebook.append", writer.Take()).status();
}

util::Result<std::vector<NotebookEntry>> ChefClient::ReadNotebook() {
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.notebook.read", {}));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<NotebookEntry> entries;
  for (std::uint32_t i = 0; i < count; ++i) {
    NotebookEntry entry;
    NEES_ASSIGN_OR_RETURN(entry.user, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(entry.text, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(entry.time_micros, reader.ReadI64());
    entries.push_back(std::move(entry));
  }
  return entries;
}

util::Result<std::vector<std::string>> ChefClient::Presence() {
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.presence", {}));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::string> users;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string user, reader.ReadString());
    users.push_back(std::move(user));
  }
  return users;
}

util::Result<std::vector<TimePoint>> ChefClient::ViewerSeries(
    const std::string& channel, std::size_t max) {
  util::ByteWriter writer;
  writer.WriteString(channel);
  writer.WriteU32(static_cast<std::uint32_t>(max));
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_.Call(server_, "chef.viewer.series", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<TimePoint> points;
  for (std::uint32_t i = 0; i < count; ++i) {
    TimePoint point;
    NEES_ASSIGN_OR_RETURN(point.time_micros, reader.ReadI64());
    NEES_ASSIGN_OR_RETURN(point.value, reader.ReadDouble());
    points.push_back(point);
  }
  return points;
}

util::Result<std::vector<std::pair<double, double>>>
ChefClient::ViewerHysteresis(const std::string& displacement_channel,
                             const std::string& force_channel,
                             std::size_t max) {
  util::ByteWriter writer;
  writer.WriteString(displacement_channel);
  writer.WriteString(force_channel);
  writer.WriteU32(static_cast<std::uint32_t>(max));
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_.Call(server_, "chef.viewer.hysteresis", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::pair<double, double>> loop;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(double d, reader.ReadDouble());
    NEES_ASSIGN_OR_RETURN(double f, reader.ReadDouble());
    loop.emplace_back(d, f);
  }
  return loop;
}

util::Result<std::size_t> ChefClient::Vcr(VcrCommand command) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteU8(static_cast<std::uint8_t>(command));
  writer.WriteString("most.displacement");
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.viewer.vcr", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint64_t cursor, reader.ReadU64());
  return static_cast<std::size_t>(cursor);
}

util::Result<TimePoint> ChefClient::ViewAt(const std::string& channel) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteString(channel);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_.Call(server_, "chef.viewer.at", writer.Take()));
  util::ByteReader reader(reply);
  TimePoint point;
  NEES_ASSIGN_OR_RETURN(point.time_micros, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(point.value, reader.ReadDouble());
  return point;
}

util::Status ChefClient::SaveArrangement(
    const std::string& name, const std::vector<std::string>& channels) {
  util::ByteWriter writer;
  writer.WriteString(session_);
  writer.WriteString(name);
  writer.WriteU32(static_cast<std::uint32_t>(channels.size()));
  for (const std::string& channel : channels) writer.WriteString(channel);
  return rpc_.Call(server_, "chef.viewer.saveArrangement", writer.Take())
      .status();
}

util::Result<std::vector<std::string>> ChefClient::ListArrangements() {
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_.Call(server_, "chef.viewer.listArrangements", {}));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    names.push_back(std::move(name));
  }
  return names;
}

util::Result<std::vector<std::pair<std::string, TimePoint>>>
ChefClient::OpenArrangement(const std::string& name) {
  util::ByteWriter writer;
  writer.WriteString(name);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_.Call(server_, "chef.viewer.openArrangement", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::pair<std::string, TimePoint>> views;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string channel, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(bool has_data, reader.ReadBool());
    TimePoint point;
    if (has_data) {
      NEES_ASSIGN_OR_RETURN(point.time_micros, reader.ReadI64());
      NEES_ASSIGN_OR_RETURN(point.value, reader.ReadDouble());
    }
    views.emplace_back(std::move(channel), point);
  }
  return views;
}

// ---------------------------------------------------------------------------
// ParticipantSwarm

SwarmReport RunParticipantSwarm(net::Network* network,
                                const std::string& chef_server,
                                int participants, int actions_per_user) {
  SwarmReport report;
  report.participants = participants;
  std::vector<std::unique_ptr<ChefClient>> clients;
  for (int i = 0; i < participants; ++i) {
    auto client = std::make_unique<ChefClient>(
        network, "participant." + std::to_string(i), chef_server);
    if (!client->Login("user" + std::to_string(i)).ok()) {
      ++report.failures;
      continue;
    }
    for (int action = 0; action < actions_per_user; ++action) {
      if (action % 3 == 0) {
        if (client->PostChat("most", "observing step data").ok()) {
          ++report.chat_posts;
        } else {
          ++report.failures;
        }
      } else {
        if (client->ViewerSeries("most.displacement", 100).ok()) {
          ++report.viewer_reads;
        } else {
          ++report.failures;
        }
      }
    }
    clients.push_back(std::move(client));  // stay logged in (presence)
  }
  return report;
}

}  // namespace nees::chef
