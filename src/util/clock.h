// Time sources. The experiment stack is written against the Clock interface
// so tests run against a manually-advanced SimClock (deterministic, fast)
// while benches and examples run against the wall clock — the same split the
// DESIGN.md ablation list calls "immediate vs scheduled delivery".
#pragma once

#include <chrono>
#include <cstdint>

#include "util/mutex.h"

namespace nees::util {

/// Monotonic microsecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since an arbitrary epoch; monotonic non-decreasing.
  virtual std::int64_t NowMicros() const = 0;
  /// Sleeps (really or virtually) for the given duration.
  virtual void SleepMicros(std::int64_t micros) = 0;
};

/// Real wall/monotonic clock.
class SystemClock final : public Clock {
 public:
  static SystemClock& Instance();
  std::int64_t NowMicros() const override;
  void SleepMicros(std::int64_t micros) override;
};

/// Manually advanced virtual clock. SleepMicros advances time immediately;
/// there is no real waiting, which keeps fault-schedule tests instantaneous.
class SimClock final : public Clock {
 public:
  explicit SimClock(std::int64_t start_micros = 0) : now_(start_micros) {}

  std::int64_t NowMicros() const override {
    MutexLock lock(mu_);
    return now_;
  }

  void SleepMicros(std::int64_t micros) override { Advance(micros); }

  void Advance(std::int64_t micros) {
    MutexLock lock(mu_);
    now_ += micros;
  }

  void SetMicros(std::int64_t micros) {
    MutexLock lock(mu_);
    now_ = micros;
  }

 private:
  mutable Mutex mu_{"util.SimClock"};
  std::int64_t now_ NEES_GUARDED_BY(mu_);
};

/// A clock that reads `base` plus a settable offset — a site whose NTP
/// discipline slipped. The fuzzer's kClockSkew fault class jumps a site's
/// offset forward mid-run; offsets only ever grow, so the skewed clock
/// stays monotonic and every per-server timestamp comparison (proposal
/// expiry, token lifetimes) remains internally consistent while drifting
/// relative to the rest of the grid. Sleeps delegate to the base clock:
/// skew changes what time a site *reports*, not how fast time passes.
class SkewedClock final : public Clock {
 public:
  explicit SkewedClock(Clock* base, std::int64_t offset_micros = 0)
      : base_(base), offset_micros_(offset_micros) {}

  std::int64_t NowMicros() const override {
    MutexLock lock(mu_);
    return base_->NowMicros() + offset_micros_;
  }
  void SleepMicros(std::int64_t micros) override {
    base_->SleepMicros(micros);
  }

  std::int64_t offset_micros() const {
    MutexLock lock(mu_);
    return offset_micros_;
  }
  /// Jumps the reported time forward. Negative deltas are clamped to zero:
  /// a backward step would break the monotonicity contract.
  void AdvanceOffset(std::int64_t delta_micros) {
    MutexLock lock(mu_);
    if (delta_micros > 0) offset_micros_ += delta_micros;
  }

 private:
  Clock* base_;
  mutable Mutex mu_{"util.SkewedClock"};
  std::int64_t offset_micros_ NEES_GUARDED_BY(mu_);
};

/// Wall-clock stopwatch for benches and run reports.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nees::util
