#include "util/bytes.h"

namespace nees::util {

void ByteWriter::WriteU8(std::uint8_t value) { data_.push_back(value); }

void ByteWriter::WriteU16(std::uint16_t value) {
  data_.push_back(static_cast<std::uint8_t>(value));
  data_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void ByteWriter::WriteU32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    data_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    data_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteI64(std::int64_t value) {
  WriteU64(static_cast<std::uint64_t>(value));
}

void ByteWriter::WriteDouble(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void ByteWriter::WriteString(std::string_view value) {
  WriteU32(static_cast<std::uint32_t>(value.size()));
  data_.insert(data_.end(), value.begin(), value.end());
}

void ByteWriter::WriteBytes(const std::vector<std::uint8_t>& value) {
  WriteBytes(value.data(), value.size());
}

void ByteWriter::WriteBytes(const std::uint8_t* data, std::size_t size) {
  WriteU32(static_cast<std::uint32_t>(size));
  data_.insert(data_.end(), data, data + size);
}

void ByteWriter::WriteBytes(std::span<const std::uint8_t> value) {
  WriteBytes(value.data(), value.size());
}

void ByteWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU32(static_cast<std::uint32_t>(values.size()));
  for (double value : values) WriteDouble(value);
}

Status ByteReader::Need(std::size_t bytes) const {
  if (size_ - offset_ < bytes) {
    return DataLoss("byte reader underrun: need " + std::to_string(bytes) +
                    " bytes, have " + std::to_string(size_ - offset_));
  }
  return OkStatus();
}

Result<std::uint8_t> ByteReader::ReadU8() {
  NEES_RETURN_IF_ERROR(Need(1));
  return data_[offset_++];
}

Result<std::uint16_t> ByteReader::ReadU16() {
  NEES_RETURN_IF_ERROR(Need(2));
  std::uint16_t value = static_cast<std::uint16_t>(data_[offset_]) |
                        static_cast<std::uint16_t>(data_[offset_ + 1]) << 8;
  offset_ += 2;
  return value;
}

Result<std::uint32_t> ByteReader::ReadU32() {
  NEES_RETURN_IF_ERROR(Need(4));
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return value;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  NEES_RETURN_IF_ERROR(Need(8));
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return value;
}

Result<std::int64_t> ByteReader::ReadI64() {
  NEES_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  return static_cast<std::int64_t>(bits);
}

Result<double> ByteReader::ReadDouble() {
  NEES_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<bool> ByteReader::ReadBool() {
  NEES_ASSIGN_OR_RETURN(std::uint8_t byte, ReadU8());
  return byte != 0;
}

Result<std::string> ByteReader::ReadString() {
  NEES_ASSIGN_OR_RETURN(std::uint32_t length, ReadU32());
  NEES_RETURN_IF_ERROR(Need(length));
  std::string value(reinterpret_cast<const char*>(data_ + offset_), length);
  offset_ += length;
  return value;
}

Result<std::vector<std::uint8_t>> ByteReader::ReadBytes() {
  NEES_ASSIGN_OR_RETURN(std::uint32_t length, ReadU32());
  NEES_RETURN_IF_ERROR(Need(length));
  std::vector<std::uint8_t> value(data_ + offset_, data_ + offset_ + length);
  offset_ += length;
  return value;
}

Result<std::span<const std::uint8_t>> ByteReader::ReadBytesView() {
  NEES_ASSIGN_OR_RETURN(std::uint32_t length, ReadU32());
  NEES_RETURN_IF_ERROR(Need(length));
  std::span<const std::uint8_t> view(data_ + offset_, length);
  offset_ += length;
  return view;
}

Result<std::vector<double>> ByteReader::ReadDoubleVector() {
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, ReadU32());
  NEES_RETURN_IF_ERROR(Need(static_cast<std::size_t>(count) * 8));
  std::vector<double> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(double value, ReadDouble());
    values.push_back(value);
  }
  return values;
}

}  // namespace nees::util
