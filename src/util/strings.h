// Small string utilities shared by the line-protocol emulators
// (Shore-Western controller), CSV exports from benches, and metadata keys.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nees::util {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lowercases ASCII.
std::string ToLower(std::string_view text);

/// printf-style formatting into std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a double; returns false on any trailing junk.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt(std::string_view text, long long* out);

}  // namespace nees::util
