// Open-addressed hash map for the message hot path: linear probing over a
// power-of-two slot array, key 0 reserved as the empty sentinel, and
// backward-shift deletion so probe chains never accumulate tombstones.
// Used for RPC correlation tables (u64 correlation id -> pending call),
// method dispatch (interned method id -> dense handler index), and the
// network's endpoint/link lookups — all places a std::map's node
// allocation and pointer chasing used to dominate per-message cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace nees::util {

/// Final avalanche of splitmix64: full 64-bit mixing so sequential ids
/// (correlation counters, interned names) spread across the table.
inline std::uint64_t MixHash64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Open-addressed map from a nonzero unsigned key to Value. Key 0 is the
/// empty-slot sentinel and must never be inserted (interned ids and
/// correlation ids both start at 1). References returned by Find/operator[]
/// are invalidated by the next insert (rehash) or erase (backward shift).
template <typename Key, typename Value>
class OpenHashMap {
  static_assert(std::is_unsigned_v<Key>, "keys must be unsigned integers");

 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehashing on the way.
  void Reserve(std::size_t n) { Grow(SlotCountFor(n)); }

  Value* Find(Key key) {
    if (slots_.empty() || key == 0) return nullptr;
    std::size_t mask = slots_.size() - 1;
    for (std::size_t i = IndexFor(key);; i = (i + 1) & mask) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == 0) return nullptr;
    }
  }
  const Value* Find(Key key) const {
    return const_cast<OpenHashMap*>(this)->Find(key);
  }

  /// Finds or default-inserts.
  Value& operator[](Key key) {
    MaybeGrow();
    std::size_t mask = slots_.size() - 1;
    for (std::size_t i = IndexFor(key);; i = (i + 1) & mask) {
      if (slots_[i].key == key) return slots_[i].value;
      if (slots_[i].key == 0) {
        slots_[i].key = key;
        ++size_;
        return slots_[i].value;
      }
    }
  }

  /// Returns true if the key was present.
  bool Erase(Key key) {
    if (slots_.empty() || key == 0) return false;
    std::size_t mask = slots_.size() - 1;
    for (std::size_t i = IndexFor(key);; i = (i + 1) & mask) {
      if (slots_[i].key == key) {
        EraseAt(i);
        return true;
      }
      if (slots_[i].key == 0) return false;
    }
  }

  /// Calls fn(key, value&) for every entry, in table (not insertion) order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key = 0;
    Value value{};
  };

  std::size_t IndexFor(Key key) const {
    return static_cast<std::size_t>(MixHash64(key)) & (slots_.size() - 1);
  }

  static std::size_t SlotCountFor(std::size_t entries) {
    std::size_t slots = 16;
    // Keep load below 3/4.
    while (slots * 3 < entries * 4) slots <<= 1;
    return slots;
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      slots_.resize(16);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Grow(slots_.size() * 2);
    }
  }

  void Grow(std::size_t new_slot_count) {
    if (new_slot_count <= slots_.size()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    std::size_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (slot.key == 0) continue;
      for (std::size_t i = IndexFor(slot.key);; i = (i + 1) & mask) {
        if (slots_[i].key == 0) {
          slots_[i] = std::move(slot);
          break;
        }
      }
    }
  }

  /// Backward-shift deletion: scan forward from the hole, moving back any
  /// entry whose probe chain crosses it, until an empty slot closes the run.
  void EraseAt(std::size_t hole) {
    std::size_t mask = slots_.size() - 1;
    --size_;
    std::size_t i = hole;
    while (true) {
      slots_[hole].key = 0;
      slots_[hole].value = Value{};
      while (true) {
        i = (i + 1) & mask;
        if (slots_[i].key == 0) return;
        std::size_t ideal = IndexFor(slots_[i].key);
        // Movable iff the entry's probe distance at i reaches back to the
        // hole (its ideal slot is not inside (hole, i]).
        if (((i - ideal) & mask) >= ((i - hole) & mask)) {
          slots_[hole] = std::move(slots_[i]);
          hole = i;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace nees::util
