// A background task that invokes a callback at a fixed real-time interval —
// the housekeeping loop real deployments run for soft-state sweeps
// (expiring grid services, stale registry entries, NTCP proposal timeouts).
// RAII: the thread stops and joins on destruction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/mutex.h"

namespace nees::util {

class PeriodicTask {
 public:
  /// Starts immediately; `work` runs on the background thread every
  /// `interval`; the first run happens after one interval.
  PeriodicTask(std::chrono::microseconds interval, std::function<void()> work)
      : interval_(interval), work_(std::move(work)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops and joins; idempotent.
  void Stop() NEES_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      cv_.NotifyAll();
    }
    if (thread_.joinable()) thread_.join();
  }

  /// Runs the work immediately on the caller's thread (testing/manual).
  void TriggerNow() { work_(); }

  std::uint64_t runs() const { return runs_.load(); }

 private:
  void Loop() NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (;;) {
      // One interval's sleep, cut short only by Stop().
      const auto deadline = std::chrono::steady_clock::now() + interval_;
      while (!stopping_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        cv_.WaitFor(mu_,
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline - now)
                        .count());
      }
      if (stopping_) return;
      lock.Unlock();
      work_();
      ++runs_;
      lock.Lock();
    }
  }

  const std::chrono::microseconds interval_;
  const std::function<void()> work_;
  Mutex mu_{"util.PeriodicTask"};
  CondVar cv_;
  bool stopping_ NEES_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> runs_{0};
  std::thread thread_;
};

}  // namespace nees::util
