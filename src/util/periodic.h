// A background task that invokes a callback at a fixed real-time interval —
// the housekeeping loop real deployments run for soft-state sweeps
// (expiring grid services, stale registry entries, NTCP proposal timeouts).
// RAII: the thread stops and joins on destruction.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace nees::util {

class PeriodicTask {
 public:
  /// Starts immediately; `work` runs on the background thread every
  /// `interval`; the first run happens after one interval.
  PeriodicTask(std::chrono::microseconds interval, std::function<void()> work)
      : interval_(interval), work_(std::move(work)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops and joins; idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  /// Runs the work immediately on the caller's thread (testing/manual).
  void TriggerNow() { work_(); }

  std::uint64_t runs() const { return runs_.load(); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
        return;
      }
      lock.unlock();
      work_();
      ++runs_;
      lock.lock();
    }
  }

  const std::chrono::microseconds interval_;
  const std::function<void()> work_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> runs_{0};
  std::thread thread_;
};

}  // namespace nees::util
