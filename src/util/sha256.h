// From-scratch SHA-256 (FIPS 180-4). Used by the security module for toy
// certificate signatures and by the GridFTP-like transport for transfer
// integrity checksums. Not intended as a hardened crypto implementation —
// the paper's GSI stack is simulated (see DESIGN.md substitutions).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nees::util {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const void* data, std::size_t length);
  void Update(std::string_view text) { Update(text.data(), text.size()); }
  void Update(const std::vector<std::uint8_t>& bytes) {
    Update(bytes.data(), bytes.size());
  }

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Sha256Digest Finish();

  /// One-shot helpers.
  static Sha256Digest Hash(std::string_view text);
  static Sha256Digest Hash(const std::vector<std::uint8_t>& bytes);
  static std::string HexHash(std::string_view text);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_size_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// Lowercase hex encoding of arbitrary bytes.
std::string ToHex(const std::uint8_t* data, std::size_t length);
std::string ToHex(const Sha256Digest& digest);

/// HMAC-SHA256; `key` may be any length.
Sha256Digest HmacSha256(std::string_view key, std::string_view message);

}  // namespace nees::util
