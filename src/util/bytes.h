// Byte-buffer serialization used for all on-the-wire message encodings in
// the simulated network: fixed-width little-endian integers, IEEE doubles,
// length-prefixed strings and vectors. Readers are bounds-checked and
// return Status rather than throwing, so malformed frames degrade into
// protocol errors (which NTCP treats as transient faults).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace nees::util {

/// Append-only encoder.
///
/// For hot paths the writer supports a reusable-buffer idiom: construct it
/// over a recycled frame (util::AcquireFrame), Reserve() the expected size
/// once, encode, Take() the buffer into the message, and hand it back to
/// the pool after delivery — steady state then runs with zero heap
/// allocation per frame.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopts `buffer` as backing storage: contents are discarded, capacity
  /// is kept. Pairs with util::AcquireFrame for allocation-free encoding.
  explicit ByteWriter(std::vector<std::uint8_t> buffer)
      : data_(std::move(buffer)) {
    data_.clear();
  }

  /// Ensures total capacity for `bytes` bytes (amortizes growth to one
  /// allocation — or none, on a recycled buffer — per frame).
  void Reserve(std::size_t bytes) { data_.reserve(bytes); }

  void WriteU8(std::uint8_t value);
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI64(std::int64_t value);
  void WriteDouble(double value);
  void WriteBool(bool value);
  /// Length-prefixed (u32) string.
  void WriteString(std::string_view value);
  /// Length-prefixed (u32) raw bytes.
  void WriteBytes(const std::vector<std::uint8_t>& value);
  void WriteBytes(const std::uint8_t* data, std::size_t size);
  void WriteBytes(std::span<const std::uint8_t> value);
  /// Length-prefixed (u32) vector of doubles.
  void WriteDoubleVector(const std::vector<double>& values);

  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t> Take() { return std::move(data_); }
  std::size_t size() const { return data_.size(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Bounds-checked decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<std::vector<std::uint8_t>> ReadBytes();
  /// Zero-copy variant: a view into the borrowed buffer, valid only while
  /// the underlying frame lives and is unmodified.
  Result<std::span<const std::uint8_t>> ReadBytesView();
  Result<std::vector<double>> ReadDoubleVector();

  std::size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }
  /// Cursor position and borrowed base pointer, for callers that checksum
  /// the raw byte range a structured decode just consumed.
  std::size_t offset() const { return offset_; }
  const std::uint8_t* base() const { return data_; }

 private:
  Status Need(std::size_t bytes) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace nees::util
