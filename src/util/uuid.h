// Deterministic unique identifiers. Grid services use these for service
// handles; NTCP uses them for transaction names when the client does not
// supply one. A process-wide atomic counter combined with a per-process
// seed keeps ids unique without global locking.
#pragma once

#include <string>

#include "util/rng.h"

namespace nees::util {

/// Returns a 32-hex-char unique id, e.g. "3f2a...". Thread safe.
std::string NewUuid();

/// Deterministic variant for tests: ids derived from the given generator.
std::string NewUuidFrom(Rng& rng);

}  // namespace nees::util
