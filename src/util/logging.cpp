#include "util/logging.h"

#include <chrono>
#include <cstdio>

namespace nees::util {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger* logger = new Logger();  // leaked singleton, never destroyed
  return *logger;
}

void Logger::SetMinLevel(LogLevel level) {
  MutexLock lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  MutexLock lock(mu_);
  return min_level_;
}

int Logger::AddSink(Sink sink) {
  MutexLock lock(mu_);
  int id = next_sink_id_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void Logger::RemoveSink(int id) {
  MutexLock lock(mu_);
  std::erase_if(sinks_, [id](const auto& entry) { return entry.first == id; });
}

void Logger::EnableStderr(bool enabled) {
  MutexLock lock(mu_);
  stderr_enabled_ = enabled;
}

void Logger::Log(LogLevel level, std::string component, std::string message) {
  LogRecord record;
  record.level = level;
  record.component = std::move(component);
  record.message = std::move(message);
  record.wall_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();

  MutexLock lock(mu_);
  if (level < min_level_) return;
  if (stderr_enabled_) {
    std::fprintf(stderr, "[%s] %s: %s\n",
                 std::string(LogLevelName(level)).c_str(),
                 record.component.c_str(), record.message.c_str());
  }
  for (const auto& [id, sink] : sinks_) {
    (void)id;
    sink(record);
  }
}

LogCapture::LogCapture() {
  sink_id_ = Logger::Instance().AddSink([this](const LogRecord& record) {
    MutexLock lock(mu_);
    records_.push_back(record);
  });
}

LogCapture::~LogCapture() { Logger::Instance().RemoveSink(sink_id_); }

std::vector<LogRecord> LogCapture::records() const {
  MutexLock lock(mu_);
  return records_;
}

int LogCapture::CountContaining(std::string_view needle) const {
  MutexLock lock(mu_);
  int count = 0;
  for (const auto& record : records_) {
    if (record.message.find(needle) != std::string::npos) ++count;
  }
  return count;
}

}  // namespace nees::util
