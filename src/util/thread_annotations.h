// Clang thread-safety analysis macros (-Wthread-safety). Under any other
// compiler every macro expands to nothing, so the annotations are free on
// the GCC build and enforced on the Clang CI leg (NEES_THREAD_SAFETY).
//
// Conventions (docs/ANALYSIS.md):
//  * every lock-protected field is NEES_GUARDED_BY(mu_);
//  * helpers named *Locked carry NEES_REQUIRES(mu_) instead of locking;
//  * public entry points that must not be called with the lock held are
//    NEES_EXCLUDES(mu_);
//  * util::Mutex / util::MutexLock / util::CondVar (util/mutex.h) carry the
//    capability attributes, so user code rarely needs more than the three
//    macros above.
#pragma once

#if defined(__clang__)
#define NEES_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEES_THREAD_ANNOTATION(x)  // compiled away outside Clang
#endif

#define NEES_CAPABILITY(x) NEES_THREAD_ANNOTATION(capability(x))
#define NEES_SCOPED_CAPABILITY NEES_THREAD_ANNOTATION(scoped_lockable)

#define NEES_GUARDED_BY(x) NEES_THREAD_ANNOTATION(guarded_by(x))
#define NEES_PT_GUARDED_BY(x) NEES_THREAD_ANNOTATION(pt_guarded_by(x))

#define NEES_ACQUIRED_BEFORE(...) \
  NEES_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NEES_ACQUIRED_AFTER(...) \
  NEES_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define NEES_REQUIRES(...) \
  NEES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NEES_REQUIRES_SHARED(...) \
  NEES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define NEES_ACQUIRE(...) \
  NEES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NEES_RELEASE(...) \
  NEES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NEES_TRY_ACQUIRE(...) \
  NEES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define NEES_EXCLUDES(...) NEES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NEES_RETURN_CAPABILITY(x) NEES_THREAD_ANNOTATION(lock_returned(x))

#define NEES_NO_THREAD_SAFETY_ANALYSIS \
  NEES_THREAD_ANNOTATION(no_thread_safety_analysis)
