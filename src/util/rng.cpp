#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace nees::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::Split() { return Rng(NextU64()); }

Rng Rng::Fork(std::uint64_t stream_id) const {
  // Hash the full 256-bit state with the stream id through SplitMix64 so
  // nearby ids land in unrelated streams; const — no draws are consumed.
  std::uint64_t mix = stream_id ^ 0x6A09E667F3BCC909ULL;
  std::uint64_t seed = 0;
  for (const std::uint64_t word : state_) {
    mix ^= word;
    seed ^= SplitMix64(mix);
  }
  return Rng(seed);
}

}  // namespace nees::util
