#include "util/crc32.h"

#include <array>

namespace nees::util {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace nees::util
