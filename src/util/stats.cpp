#include "util/stats.h"

#include <cmath>

#include "util/strings.h"

namespace nees::util {

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double accum = 0.0;
  for (double s : samples_) accum += (s - m) * (s - m);
  return std::sqrt(accum / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::string SampleStats::Summary() const {
  return Format("n=%zu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
                count(), mean(), Percentile(50), Percentile(95),
                Percentile(99), max());
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += " " + cells[i];
      line.append(widths[i] - cells[i].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };
  std::string out = emit_row(headers_);
  std::string rule = "|";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

}  // namespace nees::util
