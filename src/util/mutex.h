// Annotated locking primitives plus a lockdep-style lock-order checker.
//
// util::Mutex / util::MutexLock / util::CondVar wrap the std primitives and
// carry Clang thread-safety capability annotations, so the whole grid stack
// is statically checkable with -Wthread-safety (NEES_THREAD_SAFETY CMake
// knob). Every mutex names a *lock class* ("net.Network", "ntcp.Server",
// ...); all instances of a class share one node in the lock-order graph.
//
// When built with NEES_LOCKDEP (on outside Release by default) every
// acquisition also feeds a runtime lockdep: per-thread held-lock stacks are
// folded into a global directed graph of lock classes, and the checker
// reports a *potential* deadlock on the first inverted edge — even if no
// execution ever interleaves into the actual deadlock. Two further rules
// catch latent convoy/deadlock shapes:
//   * waiting on a CondVar while holding any lock besides the one being
//     waited on ("wait <held-class>" allowlist entries exempt a pair);
//   * blocking inside an instrumented call — RpcClient::Call/Wait — while
//     holding any lock ("rpc <held-class>" entries exempt a class).
// Violations are deduplicated, printed to stderr once, and queryable
// (lockdep::Violations) so tests and the fuzz oracle can assert on them.
// tools/nees_locks dumps the graph and replays an injected inversion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace nees::util {

class Mutex;

namespace lockdep {

#ifdef NEES_LOCKDEP
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// One node in the lock-order graph. Interned by name; never freed.
struct LockClass {
  std::string name;
  int id = 0;
};

/// Interns `name` (all mutexes constructed with the same name share the
/// class). Safe before main() — the registry is a function-local static.
const LockClass* RegisterClass(const char* name);

struct Violation {
  enum class Kind { kOrder, kWaitWhileHolding, kBlockingCallWhileHolding };
  Kind kind = Kind::kOrder;
  std::string description;
};

/// Violations recorded since the last Reset(), in discovery order.
std::vector<Violation> Violations();
std::size_t ViolationCount();

/// Clears the order graph, violation list, and per-thread edge caches (via
/// an epoch bump). Lock classes and the allowlist survive. Test isolation
/// only — never call while other threads hold instrumented locks.
void Reset();

/// Adds one allowlist rule. Formats ("#" starts a comment):
///   wait <held-class>            waiting on any condvar is legal while
///                                holding <held-class>
///   rpc <held-class>             blocking RPCs are legal under <held-class>
///   order <class-a> <class-b>    the a->b edge never closes a reportable
///                                cycle (also "order X X" for same-class
///                                nesting)
/// Returns false on a malformed line.
bool AllowRule(const std::string& line);

/// Loads one rule per line from `path`; returns false if unreadable.
bool LoadAllowlistFile(const std::string& path);
void ClearAllowlist();

/// Instrumentation hook for blocking entry points (RpcClient::Call/Wait):
/// records a violation if this thread holds any non-allowlisted lock.
/// `what` names the call site in the report. No-op without NEES_LOCKDEP.
void CheckBlockingCall(const char* what);

/// Lock classes currently held by the calling thread, outermost first.
std::vector<std::string> HeldLockNames();

/// Human-readable dump: every class, every recorded edge (with the classes
/// that first produced it), and every violation so far.
void DumpGraph(std::ostream& out);

/// Graph counters, for reports and tests.
std::size_t EdgeCount();
std::size_t ClassCount();

}  // namespace lockdep

/// Annotated std::mutex wrapper. `lock_class` names this mutex's node in
/// the lockdep order graph; instances sharing a name share the node.
class NEES_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* lock_class = "mutex")
#ifdef NEES_LOCKDEP
      : class_(lockdep::RegisterClass(lock_class))
#endif
  {
    (void)lock_class;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NEES_ACQUIRE();
  void Unlock() NEES_RELEASE();
  bool TryLock() NEES_TRY_ACQUIRE(true);

  const char* lock_class_name() const {
#ifdef NEES_LOCKDEP
    return class_->name.c_str();
#else
    return "mutex";
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef NEES_LOCKDEP
  const lockdep::LockClass* class_;
#endif
};

/// RAII scoped lock over util::Mutex. Relockable: CondVar-style juggling
/// (`lock.Unlock(); work(); lock.Lock();`) stays visible to the static
/// analysis through the NEES_RELEASE/NEES_ACQUIRE annotations.
class NEES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NEES_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
    held_ = true;
  }

  ~MutexLock() NEES_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. around a callback that must not run under the
  /// lock). The destructor then does nothing unless Lock() re-acquires.
  void Unlock() NEES_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Re-acquires after Unlock().
  void Lock() NEES_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Annotated std::condition_variable wrapper. Waits take the util::Mutex
/// the caller holds; with NEES_LOCKDEP the held-lock stack is maintained
/// across the internal release/reacquire, and waiting while holding any
/// *other* lock is reported (see the wait rule above).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); callers re-check their
  /// predicate in a loop, as with std::condition_variable.
  void Wait(Mutex& mu) NEES_REQUIRES(mu);

  /// Waits up to `timeout_micros`. Returns false if the wait timed out
  /// without a notification, true otherwise (including spurious wakes).
  bool WaitFor(Mutex& mu, std::int64_t timeout_micros) NEES_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nees::util
