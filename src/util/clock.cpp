#include "util/clock.h"

#include <thread>

namespace nees::util {

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

std::int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMicros(std::int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace nees::util
