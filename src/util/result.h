// Lightweight error-handling vocabulary used across all NEESgrid modules.
//
// Status carries an error code plus a human-readable message; Result<T>
// carries either a value or a Status. Neither throws: distributed-control
// code paths (NTCP, coordinator) must be able to treat every failure as a
// recoverable event, which is the paper's central fault-tolerance claim.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nees::util {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kTimeout,
  kUnavailable,       // transient: retry may succeed (network outage, busy)
  kAborted,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kUnauthenticated,
  kPolicyViolation,   // site policy rejected a proposal (NTCP negotiation)
  kSafetyInterlock,   // hardware safety limit tripped
};

/// Human-readable name of an ErrorCode ("Ok", "Timeout", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// A success/error status. Cheap to copy on the success path.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for errors where a retry of the same request is reasonable.
  bool transient() const {
    return code_ == ErrorCode::kTimeout || code_ == ErrorCode::kUnavailable;
  }

  /// "Timeout: link down" or "Ok".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {ErrorCode::kPermissionDenied, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status TimeoutError(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {ErrorCode::kAborted, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {ErrorCode::kDataLoss, std::move(msg)};
}
inline Status Unauthenticated(std::string msg) {
  return {ErrorCode::kUnauthenticated, std::move(msg)};
}
inline Status PolicyViolation(std::string msg) {
  return {ErrorCode::kPolicyViolation, std::move(msg)};
}
inline Status SafetyInterlock(std::string msg) {
  return {ErrorCode::kSafetyInterlock, std::move(msg)};
}

/// Value-or-Status. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}         // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {   // NOLINT(implicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from an OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise the supplied default.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace nees::util

/// Early-return helpers in the style of common HPC service codebases.
#define NEES_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::nees::util::Status nees_status_ = (expr);           \
    if (!nees_status_.ok()) return nees_status_;          \
  } while (false)

#define NEES_ASSIGN_OR_RETURN(lhs, expr)                  \
  NEES_ASSIGN_OR_RETURN_IMPL_(                            \
      NEES_CONCAT_(nees_result_, __LINE__), lhs, expr)

#define NEES_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr)       \
  auto var = (expr);                                      \
  if (!var.ok()) return var.status();                     \
  lhs = std::move(var).value()

#define NEES_CONCAT_(a, b) NEES_CONCAT_IMPL_(a, b)
#define NEES_CONCAT_IMPL_(a, b) a##b
