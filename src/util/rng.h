// Deterministic random number generation. All stochastic behaviour in the
// reproduction (sensor noise, network jitter, drop decisions, ground-motion
// synthesis) flows through explicitly-seeded Rng instances so that every
// experiment run is bit-reproducible — a property the paper's operational
// story (fault at step 1493) depends on for regeneration.
#pragma once

#include <cstdint>
#include <random>

namespace nees::util {

/// xoshiro256** — small, fast, high-quality; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t UniformU64(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Spawn an independent stream (deterministic from this stream's state).
  /// Mutates this stream: it consumes one draw.
  Rng Split();

  /// Derive an independent stream for `stream_id` WITHOUT consuming draws
  /// from this stream. Same state + same id -> same stream, so adding a
  /// forked lane never shifts the draws of existing lanes — the hygiene
  /// the fuzz scenario generator needs (each scenario dimension gets its
  /// own lane; extending one dimension leaves the others' values intact).
  Rng Fork(std::uint64_t stream_id) const;

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextU64(); }

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace nees::util
