#include "util/result.h"

namespace nees::util {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kPermissionDenied: return "PermissionDenied";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kTimeout: return "Timeout";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kAborted: return "Aborted";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kUnimplemented: return "Unimplemented";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kDataLoss: return "DataLoss";
    case ErrorCode::kUnauthenticated: return "Unauthenticated";
    case ErrorCode::kPolicyViolation: return "PolicyViolation";
    case ErrorCode::kSafetyInterlock: return "SafetyInterlock";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nees::util
