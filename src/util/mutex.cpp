#include "util/mutex.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace nees::util {
namespace lockdep {

// The checker's own state is guarded by a raw std::mutex (never a
// util::Mutex — instrumenting the instrumentation would recurse), and all
// reporting uses fprintf, not util::Logger (whose sink lock is itself a
// tracked util::Mutex).
namespace {

struct HeldLock {
  const LockClass* cls;
  const void* mu;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, LockClass*> classes;  // interned, never freed
  std::vector<const LockClass*> by_id;
  // Directed lock-order edges between class ids. `allowlisted` edges stay
  // in the dump but are invisible to cycle detection.
  struct Edge {
    bool allowlisted = false;
  };
  std::map<std::pair<int, int>, Edge> edges;
  std::vector<std::vector<int>> adjacency;  // non-allowlisted edges only
  std::vector<Violation> violations;
  std::set<std::string> reported;   // dedup keys
  std::set<std::string> allowlist;  // "wait:A", "rpc:A", "order:A:B"
  std::atomic<std::uint64_t> epoch{1};
};

Registry& Global() {
  static Registry* registry = new Registry();  // immortal: outlives statics
  return *registry;
}

struct ThreadState {
  std::uint64_t epoch = 0;
  std::vector<HeldLock> held;
  // Per-thread cache of already-recorded (from, to) class edges, so the
  // steady state never touches the global registry lock.
  std::unordered_set<std::uint64_t> edge_cache;
};

ThreadState& Thread() {
  thread_local ThreadState state;
  Registry& registry = Global();
  const std::uint64_t epoch = registry.epoch.load(std::memory_order_acquire);
  if (state.epoch != epoch) {
    state.epoch = epoch;
    state.edge_cache.clear();
  }
  return state;
}

std::uint64_t EdgeKey(int from, int to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

// registry.mu held. Records the violation once and prints it to stderr.
void ReportLocked(Registry& registry, Violation::Kind kind,
                  const std::string& dedup_key,
                  const std::string& description) {
  if (!registry.reported.insert(dedup_key).second) return;
  registry.violations.push_back(Violation{kind, description});
  std::fprintf(stderr, "nees-lockdep: %s\n", description.c_str());
}

// registry.mu held. Finds a path to_id -> ... -> from_id over the
// non-allowlisted adjacency, proving the new from->to edge closes a cycle.
// Returns the class-id path starting at to_id, or empty if none.
std::vector<int> FindPathLocked(const Registry& registry, int start,
                                int goal) {
  std::vector<int> parent(registry.adjacency.size(), -1);
  std::vector<int> stack{start};
  std::vector<bool> seen(registry.adjacency.size(), false);
  seen[static_cast<std::size_t>(start)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == goal) {
      std::vector<int> path;
      for (int walk = goal; walk != -1; walk = parent[static_cast<std::size_t>(walk)]) {
        path.push_back(walk);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int next : registry.adjacency[static_cast<std::size_t>(node)]) {
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      parent[static_cast<std::size_t>(next)] = node;
      stack.push_back(next);
    }
  }
  return {};
}

// Records held->acquiring edges and flags inversions. Called before the
// underlying mutex blocks, so a *potential* deadlock is reported even if
// this particular schedule would have squeaked through.
void RecordAcquireEdges(const LockClass* acquiring) {
  ThreadState& state = Thread();
  if (state.held.empty()) return;
  Registry& registry = Global();
  for (const HeldLock& held : state.held) {
    const std::uint64_t key = EdgeKey(held.cls->id, acquiring->id);
    if (state.edge_cache.contains(key)) continue;
    std::lock_guard<std::mutex> lock(registry.mu);
    state.edge_cache.insert(key);
    if (held.cls == acquiring) {
      if (!registry.allowlist.contains("order:" + held.cls->name + ":" +
                                       acquiring->name)) {
        ReportLocked(registry, Violation::Kind::kOrder,
                     "order-self:" + held.cls->name,
                     "same-class nesting: acquiring a second \"" +
                         acquiring->name + "\" lock while one is held");
      }
      continue;
    }
    auto [it, inserted] =
        registry.edges.try_emplace({held.cls->id, acquiring->id});
    if (!inserted) continue;  // another thread cached it first
    it->second.allowlisted = registry.allowlist.contains(
        "order:" + held.cls->name + ":" + acquiring->name);
    if (it->second.allowlisted) continue;
    const std::size_t need =
        static_cast<std::size_t>(
            std::max(held.cls->id, acquiring->id)) + 1;
    if (registry.adjacency.size() < need) registry.adjacency.resize(need);
    // Cycle check BEFORE inserting: any existing path acquiring->...->held
    // plus this edge is an inversion.
    const std::vector<int> path =
        FindPathLocked(registry, acquiring->id, held.cls->id);
    registry.adjacency[static_cast<std::size_t>(held.cls->id)].push_back(
        acquiring->id);
    if (!path.empty()) {
      std::string chain = held.cls->name + " -> " + acquiring->name;
      std::string back;
      for (int id : path) {
        if (!back.empty()) back += " -> ";
        back += registry.by_id[static_cast<std::size_t>(id)]->name;
      }
      ReportLocked(
          registry, Violation::Kind::kOrder,
          "order:" + held.cls->name + ":" + acquiring->name,
          "lock-order inversion: this thread acquires " + chain +
              " but the graph already holds " + back +
              " (potential deadlock)");
    }
  }
}

void PushHeld(const LockClass* cls, const void* mu) {
  Thread().held.push_back(HeldLock{cls, mu});
}

void PopHeld(const void* mu) {
  std::vector<HeldLock>& held = Thread().held;
  // Non-LIFO releases are legal (lock juggling); search from the top.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

const LockClass* RegisterClass(const char* name) {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.classes.find(name);
  if (it != registry.classes.end()) return it->second;
  auto* cls = new LockClass{name, static_cast<int>(registry.by_id.size())};
  registry.classes.emplace(cls->name, cls);
  registry.by_id.push_back(cls);
  return cls;
}

std::vector<Violation> Violations() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.violations;
}

std::size_t ViolationCount() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.violations.size();
}

void Reset() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.edges.clear();
  registry.adjacency.clear();
  registry.violations.clear();
  registry.reported.clear();
  registry.epoch.fetch_add(1, std::memory_order_acq_rel);
}

bool AllowRule(const std::string& line) {
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  if (kind.empty() || kind[0] == '#') return true;  // blank / comment
  Registry& registry = Global();
  if (kind == "wait" || kind == "rpc") {
    std::string cls;
    in >> cls;
    if (cls.empty()) return false;
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.allowlist.insert(kind + ":" + cls);
    return true;
  }
  if (kind == "order") {
    std::string a, b;
    in >> a >> b;
    if (a.empty() || b.empty()) return false;
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.allowlist.insert("order:" + a + ":" + b);
    return true;
  }
  return false;
}

bool LoadAllowlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool ok = true;
  while (std::getline(in, line)) ok = AllowRule(line) && ok;
  return ok;
}

void ClearAllowlist() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.allowlist.clear();
  // Allowlist decisions are baked into recorded edges; drop the caches so
  // the next acquisition re-evaluates.
  registry.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void CheckBlockingCall(const char* what) {
#ifdef NEES_LOCKDEP
  ThreadState& state = Thread();
  if (state.held.empty()) return;
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const HeldLock& held : state.held) {
    if (registry.allowlist.contains("rpc:" + held.cls->name)) continue;
    ReportLocked(registry, Violation::Kind::kBlockingCallWhileHolding,
                 std::string("rpc:") + what + ":" + held.cls->name,
                 std::string(what) + " invoked while holding \"" +
                     held.cls->name +
                     "\" (blocking RPC under a lock; see docs/ANALYSIS.md)");
  }
#else
  (void)what;
#endif
}

std::vector<std::string> HeldLockNames() {
  std::vector<std::string> names;
#ifdef NEES_LOCKDEP
  for (const HeldLock& held : Thread().held) names.push_back(held.cls->name);
#endif
  return names;
}

void DumpGraph(std::ostream& out) {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  out << "lock classes: " << registry.by_id.size()
      << ", order edges: " << registry.edges.size()
      << ", violations: " << registry.violations.size() << "\n";
  for (const LockClass* cls : registry.by_id) {
    out << "  class " << cls->id << ": " << cls->name << "\n";
  }
  for (const auto& [key, edge] : registry.edges) {
    out << "  " << registry.by_id[static_cast<std::size_t>(key.first)]->name
        << " -> "
        << registry.by_id[static_cast<std::size_t>(key.second)]->name
        << (edge.allowlisted ? "  [allowlisted]" : "") << "\n";
  }
  for (const Violation& violation : registry.violations) {
    out << "  VIOLATION: " << violation.description << "\n";
  }
}

std::size_t EdgeCount() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.edges.size();
}

std::size_t ClassCount() {
  Registry& registry = Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.by_id.size();
}

namespace internal {

// Hooks used by Mutex/CondVar below; separated so the fast path (no other
// locks held) stays a couple of thread-local reads.
void BeforeBlockingAcquire(const LockClass* cls) { RecordAcquireEdges(cls); }
void OnAcquired(const LockClass* cls, const void* mu) { PushHeld(cls, mu); }
void OnReleased(const void* mu) { PopHeld(mu); }

void OnCondVarWait(const LockClass* cls, const void* mu) {
  ThreadState& state = Thread();
  if (state.held.size() > 1) {
    Registry& registry = Global();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const HeldLock& held : state.held) {
      if (held.mu == mu) continue;
      if (registry.allowlist.contains("wait:" + held.cls->name)) continue;
      ReportLocked(registry, Violation::Kind::kWaitWhileHolding,
                   "wait:" + held.cls->name + ":" + cls->name,
                   "condvar wait on \"" + cls->name +
                       "\" while holding \"" + held.cls->name +
                       "\" (stalls every waiter of the held lock)");
    }
  }
  // The wait releases `mu` inside the std primitive; mirror that in the
  // held stack so locks taken by *other* code this thread runs while
  // blocked... (it cannot run code while blocked, but the reacquire below
  // must re-record edges as a fresh blocking acquisition).
  PopHeld(mu);
}

void OnCondVarResume(const LockClass* cls, const void* mu) {
  RecordAcquireEdges(cls);
  PushHeld(cls, mu);
}

}  // namespace internal
}  // namespace lockdep

void Mutex::Lock() {
#ifdef NEES_LOCKDEP
  lockdep::internal::BeforeBlockingAcquire(class_);
#endif
  mu_.lock();
#ifdef NEES_LOCKDEP
  lockdep::internal::OnAcquired(class_, this);
#endif
}

void Mutex::Unlock() {
#ifdef NEES_LOCKDEP
  lockdep::internal::OnReleased(this);
#endif
  mu_.unlock();
}

bool Mutex::TryLock() {
  // TryLock cannot block, so it contributes no order edges; once held it
  // still constrains later blocking acquisitions via the held stack.
  if (!mu_.try_lock()) return false;
#ifdef NEES_LOCKDEP
  lockdep::internal::OnAcquired(class_, this);
#endif
  return true;
}

void CondVar::Wait(Mutex& mu) {
#ifdef NEES_LOCKDEP
  lockdep::internal::OnCondVarWait(mu.class_, &mu);
#endif
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
#ifdef NEES_LOCKDEP
  lockdep::internal::OnCondVarResume(mu.class_, &mu);
#endif
}

bool CondVar::WaitFor(Mutex& mu, std::int64_t timeout_micros) {
#ifdef NEES_LOCKDEP
  lockdep::internal::OnCondVarWait(mu.class_, &mu);
#endif
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(lock, std::chrono::microseconds(
                             std::max<std::int64_t>(timeout_micros, 0)));
  lock.release();
#ifdef NEES_LOCKDEP
  lockdep::internal::OnCondVarResume(mu.class_, &mu);
#endif
  return status == std::cv_status::no_timeout;
}

}  // namespace nees::util
