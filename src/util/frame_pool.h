// Process-wide recycling pool for wire-frame buffers. The message hot path
// (RPC envelope -> network payload -> NTCP body) encodes into
// std::vector<std::uint8_t> frames; without pooling every request/response
// pair mints several fresh heap buffers per transaction. AcquireFrame hands
// back a previously released buffer with its capacity intact (knowdy-style
// reusable fixed buffers), so a steady-state propose/execute step mints
// zero new frames — the property E13's frames_per_step counter gates on.
//
// The pool is a leaf in the lock-order graph: nothing is acquired while
// holding util.FramePool, so it is safe to call from any layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.h"

namespace nees::util {

class FramePool {
 public:
  struct Stats {
    std::uint64_t minted = 0;    // freelist empty: new buffer allocated
    std::uint64_t reused = 0;    // freelist hit
    std::uint64_t returned = 0;  // buffers handed back
  };

  static FramePool& Instance();

  /// Returns an empty buffer, recycled when possible, with at least
  /// `reserve` bytes of capacity.
  std::vector<std::uint8_t> Acquire(std::size_t reserve = 0);

  /// Hands a buffer back for reuse. Contents are discarded; capacity is
  /// kept. Buffers beyond the freelist cap are simply freed.
  void Release(std::vector<std::uint8_t>&& frame);

  Stats stats() const;

 private:
  FramePool() = default;

  static constexpr std::size_t kMaxPooled = 4096;
  /// Buffers at or below this capacity go on the small freelist. Keeping
  /// two size classes stops a large request (batch envelope, multi-KB
  /// payload) from repeatedly regrowing a recycled small buffer: a large
  /// request that finds only small frames mints fresh instead, and after
  /// warm-up each class recycles within itself.
  static constexpr std::size_t kSmallBytes = 512;

  mutable Mutex mu_{"util.FramePool"};
  std::vector<std::vector<std::uint8_t>> small_ NEES_GUARDED_BY(mu_);
  std::vector<std::vector<std::uint8_t>> large_ NEES_GUARDED_BY(mu_);
  Stats stats_ NEES_GUARDED_BY(mu_);
};

/// Shorthands for the process-wide pool.
inline std::vector<std::uint8_t> AcquireFrame(std::size_t reserve = 0) {
  return FramePool::Instance().Acquire(reserve);
}
inline void ReleaseFrame(std::vector<std::uint8_t>&& frame) {
  FramePool::Instance().Release(std::move(frame));
}

}  // namespace nees::util
