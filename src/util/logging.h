// Minimal structured logger. Every NEESgrid service logs through this so
// tests can capture and assert on operational events (e.g. "transaction
// retried after timeout"), mirroring how the MOST operators watched logs.
#pragma once

#include <functional>
#include "util/mutex.h"
#include <sstream>
#include <string>
#include <vector>

namespace nees::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

struct LogRecord {
  LogLevel level;
  std::string component;  // e.g. "ntcp.server.UIUC"
  std::string message;
  std::int64_t wall_micros;  // wall-clock microseconds since epoch
};

/// Process-wide logger with pluggable sinks. Thread safe.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  static Logger& Instance();

  void SetMinLevel(LogLevel level);
  LogLevel min_level() const;

  /// Adds a sink; returns an id usable with RemoveSink.
  int AddSink(Sink sink);
  void RemoveSink(int id);

  /// If enabled, records are printed to stderr. Off by default in tests.
  void EnableStderr(bool enabled);

  void Log(LogLevel level, std::string component, std::string message);

 private:
  Logger() = default;

  mutable Mutex mu_{"util.Logger"};
  LogLevel min_level_ NEES_GUARDED_BY(mu_) = LogLevel::kInfo;
  bool stderr_enabled_ NEES_GUARDED_BY(mu_) = false;
  int next_sink_id_ NEES_GUARDED_BY(mu_) = 1;
  std::vector<std::pair<int, Sink>> sinks_ NEES_GUARDED_BY(mu_);
};

/// Captures log records in memory for the lifetime of the object (tests).
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();

  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  std::vector<LogRecord> records() const;
  /// Number of captured records whose message contains `needle`.
  int CountContaining(std::string_view needle) const;

 private:
  mutable Mutex mu_{"util.LogCapture"};
  std::vector<LogRecord> records_ NEES_GUARDED_BY(mu_);
  int sink_id_;
};

namespace internal {
/// Stream-style log statement builder: LogStream(...) << "x=" << x;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() {
    Logger::Instance().Log(level_, std::move(component_), stream_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace nees::util

#define NEES_LOG(level, component) \
  ::nees::util::internal::LogStream(level, component)
#define NEES_LOG_DEBUG(component) \
  NEES_LOG(::nees::util::LogLevel::kDebug, component)
#define NEES_LOG_INFO(component) \
  NEES_LOG(::nees::util::LogLevel::kInfo, component)
#define NEES_LOG_WARN(component) \
  NEES_LOG(::nees::util::LogLevel::kWarn, component)
#define NEES_LOG_ERROR(component) \
  NEES_LOG(::nees::util::LogLevel::kError, component)
