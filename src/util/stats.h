// Streaming summary statistics and percentile estimation for bench harnesses
// (step latencies, transfer throughput) and for the EXPERIMENTS.md tables.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace nees::util {

/// Accumulates samples; percentiles computed on demand (exact, sorts a copy).
class SampleStats {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const { return samples_.empty() ? 0.0 : sum_ / samples_.size(); }
  double min() const { return samples_.empty() ? 0.0 : min_; }
  double max() const { return samples_.empty() ? 0.0 : max_; }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;

  /// p in [0, 100]; exact order statistic with linear interpolation.
  double Percentile(double p) const;

  /// "n=100 mean=1.23 p50=1.1 p95=2.0 max=3.4" — for bench reports.
  std::string Summary() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Fixed-width ASCII table writer used by bench binaries to print the
/// regenerated paper tables/series in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nees::util
