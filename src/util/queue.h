// Bounded/unbounded blocking queue used for inter-thread hand-off in the
// simulated network delivery loop, DAQ sampling pipeline, and the MPlugin's
// buffered request queue (the Matlab-poll pattern from the paper, §3.1).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace nees::util {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Pushes; blocks while the queue is full. Returns false if closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  /// Waits up to `timeout`; returns nullopt on timeout or closed+empty.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return PopLocked();
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue; Push fails, Pop drains then returns nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace nees::util
