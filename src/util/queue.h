// Bounded/unbounded blocking queue used for inter-thread hand-off in the
// simulated network delivery loop, DAQ sampling pipeline, and the MPlugin's
// buffered request queue (the Matlab-poll pattern from the paper, §3.1).
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "util/mutex.h"

namespace nees::util {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Pushes; blocks while the queue is full. Returns false if closed.
  bool Push(T item) NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.Wait(mu_);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    return PopLocked();
  }

  /// Waits up to `timeout`; returns nullopt on timeout or closed+empty.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout)
      NEES_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      not_empty_.WaitFor(
          mu_, std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                     now)
                   .count());
    }
    return PopLocked();
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue; Push fails, Pop drains then returns nullopt.
  void Close() NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const NEES_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  std::optional<T> PopLocked() NEES_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  mutable Mutex mu_{"util.BlockingQueue"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ NEES_GUARDED_BY(mu_);
  const std::size_t capacity_;
  bool closed_ NEES_GUARDED_BY(mu_) = false;
};

}  // namespace nees::util
