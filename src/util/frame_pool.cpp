#include "util/frame_pool.h"

#include <utility>

namespace nees::util {

FramePool& FramePool::Instance() {
  static FramePool* pool = new FramePool();  // leaked: outlives all users
  return *pool;
}

std::vector<std::uint8_t> FramePool::Acquire(std::size_t reserve) {
  std::vector<std::uint8_t> frame;
  {
    MutexLock lock(mu_);
    std::vector<std::vector<std::uint8_t>>& primary =
        reserve > kSmallBytes ? large_ : small_;
    if (!primary.empty()) {
      frame = std::move(primary.back());
      primary.pop_back();
      ++stats_.reused;
    } else if (reserve <= kSmallBytes && !large_.empty()) {
      // A small request is happy with a large frame; it comes back on the
      // large list when released.
      frame = std::move(large_.back());
      large_.pop_back();
      ++stats_.reused;
    } else {
      // A large request with only small frames available mints fresh: a
      // realloc of a small frame would cost the same allocation and lose
      // the small buffer.
      ++stats_.minted;
    }
  }
  if (frame.capacity() < reserve) frame.reserve(reserve);
  return frame;
}

void FramePool::Release(std::vector<std::uint8_t>&& frame) {
  if (frame.capacity() == 0) return;  // nothing worth recycling
  frame.clear();
  MutexLock lock(mu_);
  std::vector<std::vector<std::uint8_t>>& list =
      frame.capacity() > kSmallBytes ? large_ : small_;
  if (list.size() >= kMaxPooled) return;  // frame freed on scope exit
  ++stats_.returned;
  list.push_back(std::move(frame));
}

FramePool::Stats FramePool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace nees::util
