// CRC-32 (IEEE 802.3 polynomial, reflected). One shared implementation for
// every layer that frames bytes over an unreliable medium: the write-ahead
// log's record framing and the network message frame's integrity trailer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nees::util {

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

}  // namespace nees::util
