#include "util/uuid.h"

#include <atomic>

#include "util/sha256.h"

namespace nees::util {

std::string NewUuid() {
  static std::atomic<std::uint64_t> counter{1};
  static const std::uint64_t process_seed = [] {
    Rng seed_rng(0xC0FFEEULL ^
                 static_cast<std::uint64_t>(
                     reinterpret_cast<std::uintptr_t>(&counter)));
    return seed_rng.NextU64();
  }();
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t raw[16];
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(process_seed >> (8 * i));
    raw[8 + i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return ToHex(raw, sizeof(raw));
}

std::string NewUuidFrom(Rng& rng) {
  std::uint8_t raw[16];
  const std::uint64_t a = rng.NextU64();
  const std::uint64_t b = rng.NextU64();
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(a >> (8 * i));
    raw[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  return ToHex(raw, sizeof(raw));
}

}  // namespace nees::util
