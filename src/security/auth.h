// GSI-style mutual authentication and per-call authorization.
//
// Flow (the paper's "securely authenticated and authorized via GSI", §2):
//   1. A client presents its certificate chain plus a fresh signature over
//      a server-bound challenge ("gsi.handshake").
//   2. The server verifies the chain against its TrustStore, maps the
//      subject through the gridmap, and returns a bearer session token.
//   3. The token rides in every subsequent RPC; the server's authenticator
//      hook validates it and enforces the AccessControl list per method.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "util/mutex.h"

#include "net/rpc.h"
#include "security/certificate.h"
#include "util/clock.h"

namespace nees::security {

/// DN -> local account mapping (the classic GSI grid-mapfile).
class GridMap {
 public:
  void Add(const std::string& subject, const std::string& local_user);
  /// Resolves a (possibly proxy) subject to a local user.
  util::Result<std::string> Lookup(const std::string& subject) const;
  bool empty() const;

 private:
  mutable util::Mutex mu_{"security.GridMap"};
  std::map<std::string, std::string> entries_;
};

/// Method-level ACL: (subject or "*") may call methods with a given prefix.
class AccessControl {
 public:
  void Allow(const std::string& subject, const std::string& method_prefix);
  void Revoke(const std::string& subject, const std::string& method_prefix);
  bool Check(const std::string& subject, const std::string& method) const;

 private:
  mutable util::Mutex mu_{"security.AccessControl"};
  std::set<std::pair<std::string, std::string>> rules_;
};

/// Issues and validates HMAC-signed bearer session tokens.
class SessionTokenIssuer {
 public:
  explicit SessionTokenIssuer(std::string secret);

  std::string Issue(const std::string& subject,
                    std::int64_t expires_micros) const;
  /// Returns the subject if the token is authentic and unexpired.
  util::Result<std::string> Validate(const std::string& token,
                                     std::int64_t now_micros) const;

 private:
  const std::string secret_;
};

/// Server-side authentication service. Binds "gsi.handshake" on an
/// RpcServer and installs a token-validating authenticator that also
/// consults the AccessControl list (if any rules are present).
struct AuthOptions {
  std::int64_t token_lifetime_micros = 3'600'000'000;  // 1 hour
  std::int64_t challenge_window_micros = 300'000'000;  // +/- 5 minutes
  /// Methods callable without a token (the handshake itself is always open).
  std::set<std::string> open_methods;
};

class AuthService {
 public:
  using Options = AuthOptions;

  AuthService(TrustStore trust, util::Clock* clock, util::Rng rng,
              Options options = Options());

  /// Installs gsi.handshake + the authenticator on `server`.
  void Attach(net::RpcServer& server);

  GridMap& gridmap() { return gridmap_; }
  AccessControl& acl() { return acl_; }
  const SessionTokenIssuer& tokens() const { return tokens_; }

 private:
  util::Result<net::Bytes> HandleHandshake(const net::Bytes& body,
                                           const std::string& server_endpoint);

  TrustStore trust_;
  util::Clock* clock_;
  util::Mutex rng_mu_{"security.AuthService.rng"};
  util::Rng rng_;
  Options options_;
  SessionTokenIssuer tokens_;
  GridMap gridmap_;
  AccessControl acl_;
};

/// Client-side login helper: runs the handshake and installs the returned
/// token on the RpcClient.
class AuthClient {
 public:
  AuthClient(net::RpcClient* rpc, Credential credential, util::Clock* clock,
             util::Rng rng);

  /// Authenticates to `server_endpoint`; on success the RpcClient carries
  /// the session token for all later calls.
  util::Status Login(const std::string& server_endpoint,
                     std::int64_t timeout_micros = 1'000'000);

  const std::string& token() const { return token_; }
  std::int64_t token_expiry_micros() const { return token_expiry_micros_; }

 private:
  net::RpcClient* rpc_;
  Credential credential_;
  util::Clock* clock_;
  util::Rng rng_;
  std::string token_;
  std::int64_t token_expiry_micros_ = 0;
};

/// Builds the canonical challenge string both sides sign/verify.
std::string HandshakeChallenge(const std::string& server_endpoint,
                               std::int64_t timestamp_micros);

}  // namespace nees::security
