#include "security/certificate.h"

#include "util/strings.h"

namespace nees::security {

std::string Certificate::CanonicalPayload() const {
  return util::Format(
      "subject=%s;issuer=%s;pk=%llu;from=%lld;to=%lld;ca=%d;proxy=%d;"
      "serial=%llu",
      subject.c_str(), issuer.c_str(),
      static_cast<unsigned long long>(public_key),
      static_cast<long long>(valid_from_micros),
      static_cast<long long>(valid_to_micros), is_ca ? 1 : 0, is_proxy ? 1 : 0,
      static_cast<unsigned long long>(serial));
}

void EncodeCertificate(const Certificate& certificate,
                       util::ByteWriter& writer) {
  writer.WriteString(certificate.subject);
  writer.WriteString(certificate.issuer);
  writer.WriteU64(certificate.public_key);
  writer.WriteI64(certificate.valid_from_micros);
  writer.WriteI64(certificate.valid_to_micros);
  writer.WriteBool(certificate.is_ca);
  writer.WriteBool(certificate.is_proxy);
  writer.WriteU64(certificate.serial);
  writer.WriteU64(certificate.signature.challenge);
  writer.WriteU64(certificate.signature.response);
}

util::Result<Certificate> DecodeCertificate(util::ByteReader& reader) {
  Certificate certificate;
  NEES_ASSIGN_OR_RETURN(certificate.subject, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(certificate.issuer, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(certificate.public_key, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(certificate.valid_from_micros, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(certificate.valid_to_micros, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(certificate.is_ca, reader.ReadBool());
  NEES_ASSIGN_OR_RETURN(certificate.is_proxy, reader.ReadBool());
  NEES_ASSIGN_OR_RETURN(certificate.serial, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(certificate.signature.challenge, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(certificate.signature.response, reader.ReadU64());
  return certificate;
}

Credential Credential::CreateProxy(std::int64_t lifetime_micros,
                                   const util::Clock& clock,
                                   util::Rng& rng) const {
  const SigningKey proxy_key = GenerateKey(rng);
  Certificate proxy;
  proxy.subject = leaf().subject + "/proxy";
  proxy.issuer = leaf().subject;
  proxy.public_key = proxy_key.public_key;
  proxy.valid_from_micros = clock.NowMicros();
  proxy.valid_to_micros =
      lifetime_micros == 0 ? 0 : clock.NowMicros() + lifetime_micros;
  proxy.is_proxy = true;
  proxy.serial = rng.NextU64();
  proxy.signature = Sign(proxy.CanonicalPayload(), rng);

  std::vector<Certificate> proxy_chain = chain_;
  proxy_chain.push_back(std::move(proxy));
  return Credential(std::move(proxy_chain), proxy_key);
}

CertificateAuthority::CertificateAuthority(std::string subject,
                                           const util::Clock& clock,
                                           util::Rng& rng)
    : clock_(clock) {
  const SigningKey root_key = GenerateKey(rng);
  Certificate root;
  root.subject = subject;
  root.issuer = subject;  // self-signed
  root.public_key = root_key.public_key;
  root.valid_from_micros = clock.NowMicros();
  root.valid_to_micros = 0;
  root.is_ca = true;
  root.serial = 1;
  root.signature = security::Sign(root_key, root.CanonicalPayload(), rng);
  root_ = Credential({std::move(root)}, root_key);
}

Credential CertificateAuthority::IssueIdentity(const std::string& subject,
                                               std::int64_t lifetime_micros,
                                               util::Rng& rng, bool is_ca) {
  const SigningKey key = GenerateKey(rng);
  Certificate certificate;
  certificate.subject = subject;
  certificate.issuer = root_.subject();
  certificate.public_key = key.public_key;
  certificate.valid_from_micros = clock_.NowMicros();
  certificate.valid_to_micros =
      lifetime_micros == 0 ? 0 : clock_.NowMicros() + lifetime_micros;
  certificate.is_ca = is_ca;
  certificate.serial = next_serial_++;
  certificate.signature =
      root_.Sign(certificate.CanonicalPayload(), rng);

  std::vector<Certificate> chain = root_.chain();
  chain.push_back(std::move(certificate));
  return Credential(std::move(chain), key);
}

void TrustStore::AddRoot(const Certificate& root) { roots_.push_back(root); }

std::string BaseIdentity(const std::string& subject) {
  std::string base = subject;
  const std::string kProxySuffix = "/proxy";
  while (util::EndsWith(base, kProxySuffix)) {
    base.resize(base.size() - kProxySuffix.size());
  }
  return base;
}

util::Result<std::string> TrustStore::VerifyChain(
    const std::vector<Certificate>& chain, std::int64_t now_micros,
    const VerifyOptions& options) const {
  if (chain.empty()) return util::Unauthenticated("empty certificate chain");

  // 1. The chain must start at a trusted root (matched by subject AND key —
  //    a forged root with the right name but wrong key is rejected).
  const Certificate& root = chain.front();
  bool trusted = false;
  for (const Certificate& anchor : roots_) {
    if (anchor.subject == root.subject &&
        anchor.public_key == root.public_key) {
      trusted = true;
      break;
    }
  }
  if (!trusted) {
    return util::Unauthenticated("untrusted root: " + root.subject);
  }
  if (!root.is_ca) return util::Unauthenticated("root is not a CA");
  if (!Verify(root.public_key, root.CanonicalPayload(), root.signature)) {
    return util::Unauthenticated("root self-signature invalid");
  }
  if (!root.ValidAt(now_micros)) {
    return util::Unauthenticated("root certificate expired");
  }

  int proxy_depth = 0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Certificate& parent = chain[i - 1];
    const Certificate& child = chain[i];

    if (child.issuer != parent.subject) {
      return util::Unauthenticated("chain break: " + child.subject +
                                   " not issued by " + parent.subject);
    }
    if (!Verify(parent.public_key, child.CanonicalPayload(),
                child.signature)) {
      return util::Unauthenticated("bad signature on " + child.subject);
    }
    if (!child.ValidAt(now_micros)) {
      return util::Unauthenticated("certificate expired: " + child.subject);
    }
    if (child.is_proxy) {
      // GSI proxy rules: subject extends the issuer; proxies are not CAs;
      // once a proxy appears, everything below must be a proxy.
      if (child.subject != parent.subject + "/proxy") {
        return util::Unauthenticated("proxy subject malformed: " +
                                     child.subject);
      }
      if (child.is_ca) {
        return util::Unauthenticated("proxy cannot be a CA: " + child.subject);
      }
      if (++proxy_depth > options.max_proxy_depth) {
        return util::Unauthenticated("proxy chain too deep");
      }
    } else {
      if (proxy_depth > 0) {
        return util::Unauthenticated(
            "identity certificate below a proxy: " + child.subject);
      }
      // Identity certificates must be signed by a CA certificate.
      if (!parent.is_ca) {
        return util::Unauthenticated("issuer is not a CA: " + parent.subject);
      }
    }
  }

  return BaseIdentity(chain.back().subject);
}

}  // namespace nees::security
