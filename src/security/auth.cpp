#include "security/auth.h"

#include "util/logging.h"
#include "util/sha256.h"
#include "util/strings.h"

namespace nees::security {

// ---------------------------------------------------------------------------
// GridMap

void GridMap::Add(const std::string& subject, const std::string& local_user) {
  util::MutexLock lock(mu_);
  entries_[subject] = local_user;
}

util::Result<std::string> GridMap::Lookup(const std::string& subject) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(BaseIdentity(subject));
  if (it == entries_.end()) {
    return util::PermissionDenied("no gridmap entry for " + subject);
  }
  return it->second;
}

bool GridMap::empty() const {
  util::MutexLock lock(mu_);
  return entries_.empty();
}

// ---------------------------------------------------------------------------
// AccessControl

void AccessControl::Allow(const std::string& subject,
                          const std::string& method_prefix) {
  util::MutexLock lock(mu_);
  rules_.insert({subject, method_prefix});
}

void AccessControl::Revoke(const std::string& subject,
                           const std::string& method_prefix) {
  util::MutexLock lock(mu_);
  rules_.erase({subject, method_prefix});
}

bool AccessControl::Check(const std::string& subject,
                          const std::string& method) const {
  util::MutexLock lock(mu_);
  if (rules_.empty()) return true;  // no rules configured: open service
  for (const auto& [rule_subject, prefix] : rules_) {
    if (rule_subject != "*" && rule_subject != subject) continue;
    if (util::StartsWith(method, prefix)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SessionTokenIssuer

SessionTokenIssuer::SessionTokenIssuer(std::string secret)
    : secret_(std::move(secret)) {}

std::string SessionTokenIssuer::Issue(const std::string& subject,
                                      std::int64_t expires_micros) const {
  const std::string body =
      subject + "|" + std::to_string(expires_micros);
  const std::string mac = util::ToHex(util::HmacSha256(secret_, body));
  return body + "|" + mac;
}

util::Result<std::string> SessionTokenIssuer::Validate(
    const std::string& token, std::int64_t now_micros) const {
  const auto parts = util::Split(token, '|');
  if (parts.size() != 3) return util::Unauthenticated("malformed token");
  const std::string body = parts[0] + "|" + parts[1];
  const std::string expected = util::ToHex(util::HmacSha256(secret_, body));
  if (expected != parts[2]) return util::Unauthenticated("token MAC mismatch");
  long long expires = 0;
  if (!util::ParseInt(parts[1], &expires)) {
    return util::Unauthenticated("bad token expiry");
  }
  if (expires != 0 && now_micros >= expires) {
    return util::Unauthenticated("token expired");
  }
  return parts[0];
}

// ---------------------------------------------------------------------------
// AuthService

std::string HandshakeChallenge(const std::string& server_endpoint,
                               std::int64_t timestamp_micros) {
  return "gsi-handshake|" + server_endpoint + "|" +
         std::to_string(timestamp_micros);
}

AuthService::AuthService(TrustStore trust, util::Clock* clock, util::Rng rng,
                         Options options)
    : trust_(std::move(trust)),
      clock_(clock),
      rng_(rng),
      options_(std::move(options)),
      tokens_([&] {
        // Derive a fresh random session secret for this service instance.
        util::Rng secret_rng = rng_.Split();
        return std::to_string(secret_rng.NextU64()) +
               std::to_string(secret_rng.NextU64());
      }()) {}

void AuthService::Attach(net::RpcServer& server) {
  const std::string endpoint = server.endpoint();
  server.RegisterMethod(
      "gsi.handshake",
      [this, endpoint](const net::CallContext&, const net::Bytes& body) {
        return HandleHandshake(body, endpoint);
      });
  server.SetAuthenticator(
      [this](const std::string& token,
             const std::string& method) -> util::Result<std::string> {
        if (method == "gsi.handshake" || options_.open_methods.contains(method)) {
          return std::string();  // anonymous ok
        }
        NEES_ASSIGN_OR_RETURN(std::string subject,
                              tokens_.Validate(token, clock_->NowMicros()));
        if (!acl_.Check(subject, method)) {
          return util::PermissionDenied(subject + " may not call " + method);
        }
        return subject;
      });
}

util::Result<net::Bytes> AuthService::HandleHandshake(
    const net::Bytes& body, const std::string& server_endpoint) {
  util::ByteReader reader(body);
  NEES_ASSIGN_OR_RETURN(std::uint32_t chain_length, reader.ReadU32());
  std::vector<Certificate> chain;
  for (std::uint32_t i = 0; i < chain_length; ++i) {
    NEES_ASSIGN_OR_RETURN(Certificate certificate, DecodeCertificate(reader));
    chain.push_back(std::move(certificate));
  }
  NEES_ASSIGN_OR_RETURN(std::int64_t timestamp, reader.ReadI64());
  Signature signature;
  NEES_ASSIGN_OR_RETURN(signature.challenge, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(signature.response, reader.ReadU64());

  const std::int64_t now = clock_->NowMicros();
  if (timestamp > now + options_.challenge_window_micros ||
      timestamp < now - options_.challenge_window_micros) {
    return util::Unauthenticated("handshake challenge timestamp stale");
  }

  NEES_ASSIGN_OR_RETURN(std::string subject, trust_.VerifyChain(chain, now));
  if (chain.empty() ||
      !Verify(chain.back().public_key,
              HandshakeChallenge(server_endpoint, timestamp), signature)) {
    return util::Unauthenticated("possession proof failed for " + subject);
  }

  if (!gridmap_.empty()) {
    NEES_RETURN_IF_ERROR(gridmap_.Lookup(subject).status());
  }

  const std::int64_t expiry = now + options_.token_lifetime_micros;
  const std::string token = tokens_.Issue(subject, expiry);
  NEES_LOG_INFO("security.auth." + server_endpoint)
      << "issued session token for " << subject;

  util::ByteWriter writer;
  writer.WriteString(token);
  writer.WriteI64(expiry);
  return writer.Take();
}

// ---------------------------------------------------------------------------
// AuthClient

AuthClient::AuthClient(net::RpcClient* rpc, Credential credential,
                       util::Clock* clock, util::Rng rng)
    : rpc_(rpc),
      credential_(std::move(credential)),
      clock_(clock),
      rng_(rng) {}

util::Status AuthClient::Login(const std::string& server_endpoint,
                               std::int64_t timeout_micros) {
  const std::int64_t timestamp = clock_->NowMicros();
  const Signature signature = credential_.Sign(
      HandshakeChallenge(server_endpoint, timestamp), rng_);

  util::ByteWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(credential_.chain().size()));
  for (const Certificate& certificate : credential_.chain()) {
    EncodeCertificate(certificate, writer);
  }
  writer.WriteI64(timestamp);
  writer.WriteU64(signature.challenge);
  writer.WriteU64(signature.response);

  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        rpc_->Call(server_endpoint, "gsi.handshake",
                                   writer.Take(), timeout_micros));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(token_, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(token_expiry_micros_, reader.ReadI64());
  // Per-target: each site issues its own tokens, and one client (the
  // coordinator) may hold sessions with several sites at once.
  rpc_->SetAuthTokenFor(server_endpoint, token_);
  return util::OkStatus();
}

}  // namespace nees::security
