// Toy Schnorr signatures over the multiplicative group mod p = 2^61 - 1.
//
// This gives the reproduction a *structurally* asymmetric signature scheme:
// certificate chains verify using public keys only, exactly like GSI/X.509,
// while remaining a few dozen lines of dependency-free code. It is NOT
// cryptographically secure (61-bit discrete logs are trivially breakable);
// the paper's own implementation disclaims provable security too (§4) and
// the substitution table in DESIGN.md records this.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace nees::security {

/// Group parameters: p = 2^61 - 1 (Mersenne prime), generator g = 3.
inline constexpr std::uint64_t kPrime = (1ULL << 61) - 1;
inline constexpr std::uint64_t kGenerator = 3;

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b);
std::uint64_t PowMod(std::uint64_t base, std::uint64_t exponent);

struct SigningKey {
  std::uint64_t secret = 0;      // x in [1, p-2]
  std::uint64_t public_key = 0;  // y = g^x mod p
};

struct Signature {
  std::uint64_t challenge = 0;  // e = H(r || message) mod (p - 1)
  std::uint64_t response = 0;   // s = (k + x * e) mod (p - 1)

  bool operator==(const Signature&) const = default;
};

/// Generates a fresh keypair from the supplied deterministic generator.
SigningKey GenerateKey(util::Rng& rng);

/// Signs a message. The nonce k is drawn from `rng`.
Signature Sign(const SigningKey& key, std::string_view message,
               util::Rng& rng);

/// Verifies against the signer's public key.
bool Verify(std::uint64_t public_key, std::string_view message,
            const Signature& signature);

}  // namespace nees::security
