#include "security/schnorr.h"

#include "util/sha256.h"

namespace nees::security {
namespace {

constexpr std::uint64_t kOrder = kPrime - 1;  // exponent modulus

/// e = SHA256(r || message) reduced mod (p-1), never 0.
std::uint64_t Challenge(std::uint64_t commitment, std::string_view message) {
  util::Sha256 hasher;
  std::uint8_t r_bytes[8];
  for (int i = 0; i < 8; ++i) {
    r_bytes[i] = static_cast<std::uint8_t>(commitment >> (8 * i));
  }
  hasher.Update(r_bytes, sizeof(r_bytes));
  hasher.Update(message);
  const util::Sha256Digest digest = hasher.Finish();
  std::uint64_t e = 0;
  for (int i = 0; i < 8; ++i) {
    e = (e << 8) | digest[i];
  }
  e %= kOrder;
  return e == 0 ? 1 : e;
}

}  // namespace

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kPrime);
}

std::uint64_t PowMod(std::uint64_t base, std::uint64_t exponent) {
  std::uint64_t result = 1;
  base %= kPrime;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exponent >>= 1;
  }
  return result;
}

SigningKey GenerateKey(util::Rng& rng) {
  SigningKey key;
  key.secret = 1 + rng.UniformU64(kOrder - 1);  // [1, p-2]
  key.public_key = PowMod(kGenerator, key.secret);
  return key;
}

Signature Sign(const SigningKey& key, std::string_view message,
               util::Rng& rng) {
  const std::uint64_t k = 1 + rng.UniformU64(kOrder - 1);
  const std::uint64_t r = PowMod(kGenerator, k);
  Signature signature;
  signature.challenge = Challenge(r, message);
  // s = k + x*e mod (p-1); 128-bit intermediate avoids overflow.
  const unsigned __int128 xe =
      static_cast<unsigned __int128>(key.secret) * signature.challenge;
  signature.response =
      static_cast<std::uint64_t>((xe + k) % kOrder);
  return signature;
}

bool Verify(std::uint64_t public_key, std::string_view message,
            const Signature& signature) {
  if (public_key == 0 || public_key >= kPrime) return false;
  if (signature.response >= kOrder) return false;
  // r' = g^s * y^{-e} = g^s * y^{order - e}
  const std::uint64_t gs = PowMod(kGenerator, signature.response);
  const std::uint64_t ye_inv =
      PowMod(public_key, kOrder - (signature.challenge % kOrder));
  const std::uint64_t r = MulMod(gs, ye_inv);
  return Challenge(r, message) == signature.challenge;
}

}  // namespace nees::security
