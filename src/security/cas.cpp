#include "security/cas.h"

#include "util/sha256.h"
#include "util/strings.h"

namespace nees::security {

std::string Capability::CanonicalPayload() const {
  return "cas-cap|" + subject + "|" + resource + "|" + action + "|" +
         std::to_string(expires_micros);
}

void EncodeCapability(const Capability& capability, util::ByteWriter& writer) {
  writer.WriteString(capability.subject);
  writer.WriteString(capability.resource);
  writer.WriteString(capability.action);
  writer.WriteI64(capability.expires_micros);
  writer.WriteU64(capability.signature.challenge);
  writer.WriteU64(capability.signature.response);
}

util::Result<Capability> DecodeCapability(util::ByteReader& reader) {
  Capability capability;
  NEES_ASSIGN_OR_RETURN(capability.subject, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(capability.resource, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(capability.action, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(capability.expires_micros, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(capability.signature.challenge, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(capability.signature.response, reader.ReadU64());
  return capability;
}

std::string CapabilityToToken(const Capability& capability) {
  util::ByteWriter writer;
  EncodeCapability(capability, writer);
  return util::ToHex(writer.data().data(), writer.size());
}

util::Result<Capability> CapabilityFromToken(const std::string& token) {
  if (token.size() % 2 != 0) return util::InvalidArgument("odd hex length");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(token.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < token.size(); i += 2) {
    const int hi = nibble(token[i]);
    const int lo = nibble(token[i + 1]);
    if (hi < 0 || lo < 0) return util::InvalidArgument("bad hex digit");
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  util::ByteReader reader(bytes);
  return DecodeCapability(reader);
}

util::Status VerifyCapability(const Capability& capability,
                              std::uint64_t cas_public_key,
                              std::int64_t now_micros) {
  if (capability.expires_micros != 0 &&
      now_micros >= capability.expires_micros) {
    return util::PermissionDenied("capability expired");
  }
  if (!Verify(cas_public_key, capability.CanonicalPayload(),
              capability.signature)) {
    return util::PermissionDenied("capability signature invalid");
  }
  return util::OkStatus();
}

CommunityAuthorizationService::CommunityAuthorizationService(
    Credential credential, util::Clock* clock, util::Rng rng,
    std::int64_t default_ttl_micros)
    : credential_(std::move(credential)),
      clock_(clock),
      rng_(rng),
      default_ttl_micros_(default_ttl_micros) {}

void CommunityAuthorizationService::Grant(const std::string& subject,
                                          const std::string& resource,
                                          const std::string& action) {
  util::MutexLock lock(mu_);
  policy_.insert({subject, resource, action});
}

void CommunityAuthorizationService::Revoke(const std::string& subject,
                                           const std::string& resource,
                                           const std::string& action) {
  util::MutexLock lock(mu_);
  policy_.erase({subject, resource, action});
}

bool CommunityAuthorizationService::IsGranted(const std::string& subject,
                                              const std::string& resource,
                                              const std::string& action) const {
  util::MutexLock lock(mu_);
  return policy_.contains({subject, resource, action}) ||
         policy_.contains({"*", resource, action});
}

util::Result<Capability> CommunityAuthorizationService::Issue(
    const std::string& subject, const std::string& resource,
    const std::string& action) {
  if (!IsGranted(subject, resource, action)) {
    return util::PermissionDenied("community policy denies " + subject + " " +
                                  action + " on " + resource);
  }
  Capability capability;
  capability.subject = subject;
  capability.resource = resource;
  capability.action = action;
  capability.expires_micros = clock_->NowMicros() + default_ttl_micros_;
  util::MutexLock lock(mu_);
  capability.signature =
      credential_.Sign(capability.CanonicalPayload(), rng_);
  return capability;
}

void CommunityAuthorizationService::Attach(net::RpcServer& server) {
  server.RegisterMethod(
      "cas.request",
      [this](const net::CallContext& context,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        if (context.subject.empty()) {
          return util::Unauthenticated("cas.request requires authentication");
        }
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string resource, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::string action, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(Capability capability,
                              Issue(context.subject, resource, action));
        util::ByteWriter writer;
        EncodeCapability(capability, writer);
        return writer.Take();
      });
}

}  // namespace nees::security
