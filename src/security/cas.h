// Community Authorization Service (paper §2.3: "We plan to add support for
// the Community Authorization Service" — built here as the planned
// extension, following Pearlman et al., POLICY 2002).
//
// The CAS holds the community's policy (who may do what to which logical
// resource) and issues signed, time-limited capability assertions. Resource
// servers verify a capability with the CAS public key alone — no callback
// to the CAS — so authorization survives network partitions, matching the
// fault-tolerance posture of the rest of the system.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "util/mutex.h"

#include "net/rpc.h"
#include "security/certificate.h"
#include "util/clock.h"

namespace nees::security {

struct Capability {
  std::string subject;   // who the capability empowers
  std::string resource;  // logical resource name, e.g. "repo.metadata"
  std::string action;    // e.g. "write"
  std::int64_t expires_micros = 0;  // 0 = never
  Signature signature;   // by the CAS over CanonicalPayload()

  std::string CanonicalPayload() const;
};

void EncodeCapability(const Capability& capability, util::ByteWriter& writer);
util::Result<Capability> DecodeCapability(util::ByteReader& reader);

/// Serialized form for carrying a capability in request bodies.
std::string CapabilityToToken(const Capability& capability);
util::Result<Capability> CapabilityFromToken(const std::string& token);

/// Verifies signature + expiry against the CAS public key.
util::Status VerifyCapability(const Capability& capability,
                              std::uint64_t cas_public_key,
                              std::int64_t now_micros);

class CommunityAuthorizationService {
 public:
  CommunityAuthorizationService(Credential credential, util::Clock* clock,
                                util::Rng rng,
                                std::int64_t default_ttl_micros =
                                    3'600'000'000);

  /// Community policy management.
  void Grant(const std::string& subject, const std::string& resource,
             const std::string& action);
  void Revoke(const std::string& subject, const std::string& resource,
              const std::string& action);
  bool IsGranted(const std::string& subject, const std::string& resource,
                 const std::string& action) const;

  /// Issues a signed capability if policy allows; kPermissionDenied if not.
  util::Result<Capability> Issue(const std::string& subject,
                                 const std::string& resource,
                                 const std::string& action);

  /// Binds "cas.request" on an (authenticated) RpcServer. The caller's
  /// handshake-derived subject is used; the body carries resource + action.
  void Attach(net::RpcServer& server);

  std::uint64_t public_key() const { return credential_.key().public_key; }

 private:
  Credential credential_;
  util::Clock* clock_;
  mutable util::Mutex mu_{"security.Cas"};
  util::Rng rng_;
  std::int64_t default_ttl_micros_;
  std::set<std::tuple<std::string, std::string, std::string>> policy_;
};

}  // namespace nees::security
