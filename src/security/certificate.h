// GSI-analog certificates, credentials, proxy delegation, and chain
// verification (paper §2, §4: "communications within the NEESgrid system
// are securely authenticated and authorized via the use of Grid Security
// Infrastructure mechanisms").
//
// Identities are X.509-style distinguished names ("/O=NEES/CN=coordinator").
// A CertificateAuthority issues identity certificates; a Credential (cert
// chain + signing key) can mint limited-lifetime *proxy* certificates, the
// GSI delegation mechanism remote experiment clients use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "security/schnorr.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/result.h"

namespace nees::security {

struct Certificate {
  std::string subject;            // DN, e.g. "/O=NEES/CN=spencer"
  std::string issuer;             // DN of the signer
  std::uint64_t public_key = 0;   // subject's Schnorr public key
  std::int64_t valid_from_micros = 0;
  std::int64_t valid_to_micros = 0;  // 0 = no expiry
  bool is_ca = false;             // may sign identity certificates
  bool is_proxy = false;          // delegated credential
  std::uint64_t serial = 0;
  Signature signature;            // by the issuer over CanonicalPayload()

  /// The byte string the issuer signs.
  std::string CanonicalPayload() const;

  bool ValidAt(std::int64_t now_micros) const {
    return now_micros >= valid_from_micros &&
           (valid_to_micros == 0 || now_micros < valid_to_micros);
  }
};

void EncodeCertificate(const Certificate& certificate,
                       util::ByteWriter& writer);
util::Result<Certificate> DecodeCertificate(util::ByteReader& reader);

/// A certificate chain (root first, leaf last) plus the leaf's signing key.
class Credential {
 public:
  Credential() = default;
  Credential(std::vector<Certificate> chain, SigningKey key)
      : chain_(std::move(chain)), key_(key) {}

  const std::vector<Certificate>& chain() const { return chain_; }
  const Certificate& leaf() const { return chain_.back(); }
  const SigningKey& key() const { return key_; }
  const std::string& subject() const { return leaf().subject; }

  /// Signs arbitrary bytes with the leaf key.
  Signature Sign(std::string_view message, util::Rng& rng) const {
    return security::Sign(key_, message, rng);
  }

  /// Mints a proxy credential: subject = "<subject>/proxy", signed by this
  /// credential, valid for `lifetime_micros` from now. The proxy carries a
  /// fresh keypair so the long-term key never leaves the owner.
  Credential CreateProxy(std::int64_t lifetime_micros,
                         const util::Clock& clock, util::Rng& rng) const;

 private:
  std::vector<Certificate> chain_;
  SigningKey key_;
};

/// Root certificate authority for a virtual organization.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string subject, const util::Clock& clock,
                       util::Rng& rng);

  const Certificate& root_certificate() const { return root_.leaf(); }

  /// Issues an identity credential. `lifetime_micros` 0 = no expiry.
  Credential IssueIdentity(const std::string& subject,
                           std::int64_t lifetime_micros, util::Rng& rng,
                           bool is_ca = false);

 private:
  const util::Clock& clock_;
  Credential root_;
  std::uint64_t next_serial_ = 2;
};

/// Verification policy knobs.
struct VerifyOptions {
  int max_proxy_depth = 8;
};

/// Trust anchors: root certificates keyed by subject.
class TrustStore {
 public:
  void AddRoot(const Certificate& root);

  /// Verifies a root-first chain: trusted root, every signature, validity
  /// windows at `now`, CA flags on intermediates, and GSI proxy rules
  /// (proxy subject must extend issuer subject; proxies cannot act as CAs).
  /// Returns the *effective* subject: the identity the leaf speaks for
  /// (proxy subjects collapse to their base identity).
  util::Result<std::string> VerifyChain(const std::vector<Certificate>& chain,
                                        std::int64_t now_micros,
                                        const VerifyOptions& options = {}) const;

 private:
  std::vector<Certificate> roots_;
};

/// Strips any number of trailing "/proxy" components from a DN.
std::string BaseIdentity(const std::string& subject);

}  // namespace nees::security
