#include "grid/registry.h"

#include "util/strings.h"

namespace nees::grid {
namespace {

constexpr std::string_view kSdePrefix = "reg.";

void EncodeRegistration(const Registration& registration,
                        util::ByteWriter& writer) {
  writer.WriteString(registration.service_name);
  writer.WriteString(registration.endpoint);
  writer.WriteString(registration.type);
  writer.WriteString(registration.site);
  writer.WriteI64(registration.expires_micros);
}

util::Result<Registration> DecodeRegistration(util::ByteReader& reader) {
  Registration registration;
  NEES_ASSIGN_OR_RETURN(registration.service_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.endpoint, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.type, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.site, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.expires_micros, reader.ReadI64());
  return registration;
}

}  // namespace

RegistryService::RegistryService(util::Clock* clock)
    : GridService("registry"), clock_(clock) {}

SdeValue RegistryService::ToSde(const Registration& registration) const {
  SdeValue value;
  value.Set("endpoint", registration.endpoint);
  value.Set("type", registration.type);
  value.Set("site", registration.site);
  value.Set("expires", std::to_string(registration.expires_micros));
  return value;
}

Registration RegistryService::FromSde(const std::string& name,
                                      const SdeValue& value) {
  Registration registration;
  registration.service_name = name.substr(kSdePrefix.size());
  registration.endpoint = value.Get("endpoint");
  registration.type = value.Get("type");
  registration.site = value.Get("site");
  long long expires = 0;
  util::ParseInt(value.Get("expires"), &expires);
  registration.expires_micros = expires;
  return registration;
}

void RegistryService::Register(const Registration& registration,
                               std::int64_t lease_micros) {
  Registration entry = registration;
  entry.expires_micros =
      lease_micros == 0 ? 0 : clock_->NowMicros() + lease_micros;
  SetServiceData(std::string(kSdePrefix) + entry.service_name, ToSde(entry));
}

util::Status RegistryService::Unregister(const std::string& service_name) {
  const std::string key = std::string(kSdePrefix) + service_name;
  if (!GetServiceData(key)) return util::NotFound("not registered: " + service_name);
  RemoveServiceData(key);
  return util::OkStatus();
}

std::optional<Registration> RegistryService::LookupEntry(
    const std::string& service_name) {
  const std::string key = std::string(kSdePrefix) + service_name;
  auto value = GetServiceData(key);
  if (!value) return std::nullopt;
  Registration registration = FromSde(key, *value);
  if (registration.expires_micros != 0 &&
      clock_->NowMicros() >= registration.expires_micros) {
    return std::nullopt;
  }
  return registration;
}

std::vector<Registration> RegistryService::Query(const std::string& type) {
  const std::int64_t now = clock_->NowMicros();
  std::vector<Registration> results;
  for (const auto& [key, value] : FindServiceData(std::string(kSdePrefix))) {
    Registration registration = FromSde(key, value);
    if (registration.expires_micros != 0 && now >= registration.expires_micros)
      continue;
    if (!type.empty() && registration.type != type) continue;
    results.push_back(std::move(registration));
  }
  return results;
}

int RegistryService::SweepExpired() {
  const std::int64_t now = clock_->NowMicros();
  int removed = 0;
  for (const auto& [key, value] : FindServiceData(std::string(kSdePrefix))) {
    const Registration registration = FromSde(key, value);
    if (registration.expires_micros != 0 &&
        now >= registration.expires_micros) {
      RemoveServiceData(key);
      ++removed;
    }
  }
  return removed;
}

void RegistryService::BindRpc(ServiceContainer& container) {
  container.rpc().RegisterMethod(
      "registry.register",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(Registration registration,
                              DecodeRegistration(reader));
        NEES_ASSIGN_OR_RETURN(std::int64_t lease, reader.ReadI64());
        Register(registration, lease);
        return net::Bytes{};
      });
  container.rpc().RegisterMethod(
      "registry.unregister",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        NEES_RETURN_IF_ERROR(Unregister(name));
        return net::Bytes{};
      });
  container.rpc().RegisterMethod(
      "registry.query",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string type, reader.ReadString());
        const auto results = Query(type);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(results.size()));
        for (const auto& registration : results) {
          EncodeRegistration(registration, writer);
        }
        return writer.Take();
      });
}

RegistryClient::RegistryClient(net::RpcClient* rpc,
                               std::string registry_endpoint)
    : rpc_(rpc), registry_endpoint_(std::move(registry_endpoint)) {}

util::Status RegistryClient::Register(const Registration& registration,
                                      std::int64_t lease_micros) {
  util::ByteWriter writer;
  EncodeRegistration(registration, writer);
  writer.WriteI64(lease_micros);
  return rpc_->Call(registry_endpoint_, "registry.register", writer.Take())
      .status();
}

util::Status RegistryClient::Unregister(const std::string& service_name) {
  util::ByteWriter writer;
  writer.WriteString(service_name);
  return rpc_->Call(registry_endpoint_, "registry.unregister", writer.Take())
      .status();
}

util::Result<std::vector<Registration>> RegistryClient::Query(
    const std::string& type) {
  util::ByteWriter writer;
  writer.WriteString(type);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes response,
      rpc_->Call(registry_endpoint_, "registry.query", writer.Take()));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<Registration> results;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(Registration registration,
                          DecodeRegistration(reader));
    results.push_back(std::move(registration));
  }
  return results;
}

}  // namespace nees::grid
