#include "grid/registry.h"

#include <algorithm>

#include "grid/tenant.h"
#include "net/endpoint.h"
#include "util/strings.h"

namespace nees::grid {
namespace {

constexpr std::string_view kSdePrefix = "reg.";

std::uint32_t InternedId(std::string_view name) {
  return net::EndpointTable::Instance().Intern(name);
}

void EncodeRegistration(const Registration& registration,
                        util::ByteWriter& writer) {
  writer.WriteString(registration.service_name);
  writer.WriteString(registration.endpoint);
  writer.WriteString(registration.type);
  writer.WriteString(registration.site);
  writer.WriteI64(registration.expires_micros);
}

util::Result<Registration> DecodeRegistration(util::ByteReader& reader) {
  Registration registration;
  NEES_ASSIGN_OR_RETURN(registration.service_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.endpoint, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.type, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.site, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(registration.expires_micros, reader.ReadI64());
  return registration;
}

}  // namespace

RegistryService::RegistryService(util::Clock* clock)
    : GridService("registry"), clock_(clock) {
  // The SDE mirror is flushed lazily just before any OGSI read: remote
  // inspection is rare next to per-tenant (re-)registration traffic, so
  // writes touch only the open-addressed table.
  SetRefreshHook([this] { RefreshSdes(); });
}

SdeValue RegistryService::ToSde(const Registration& registration) const {
  SdeValue value;
  value.Set("endpoint", registration.endpoint);
  value.Set("type", registration.type);
  value.Set("site", registration.site);
  value.Set("expires", std::to_string(registration.expires_micros));
  return value;
}

void RegistryService::RefreshSdes() {
  std::vector<Registration> live;
  std::vector<std::string> removed;
  {
    util::MutexLock lock(table_mu_);
    if (!sdes_stale_) return;
    sdes_stale_ = false;
    live.reserve(entries_.size());
    entries_.ForEach([&](std::uint32_t, const Registration& entry) {
      live.push_back(entry);
    });
    removed = std::move(removed_names_);
    removed_names_.clear();
  }
  // SDE writes happen outside table_mu_: subscription callbacks (and, via a
  // hosting container, best-effort notify sends) run under no registry lock.
  for (const std::string& name : removed) {
    RemoveServiceData(std::string(kSdePrefix) + name);
  }
  for (const Registration& entry : live) {
    SetServiceData(std::string(kSdePrefix) + entry.service_name,
                   ToSde(entry));
  }
}

void RegistryService::Register(const Registration& registration,
                               std::int64_t lease_micros) {
  Registration entry = registration;
  entry.expires_micros =
      lease_micros == 0 ? 0 : clock_->NowMicros() + lease_micros;
  const std::uint32_t id = InternedId(entry.service_name);
  {
    util::MutexLock lock(table_mu_);
    entries_[id] = entry;
    sdes_stale_ = true;
  }
  // With live SDE subscribers the mirror publishes eagerly so change
  // notifications still fire once per (re-)registration.
  if (HasSdeSubscribers()) {
    SetServiceData(std::string(kSdePrefix) + entry.service_name,
                   ToSde(entry));
  }
}

util::Status RegistryService::Unregister(const std::string& service_name) {
  const std::uint32_t id = InternedId(service_name);
  {
    util::MutexLock lock(table_mu_);
    if (!entries_.Erase(id)) {
      return util::NotFound("not registered: " + service_name);
    }
    sdes_stale_ = true;
    removed_names_.push_back(service_name);
  }
  if (HasSdeSubscribers()) {
    RemoveServiceData(std::string(kSdePrefix) + service_name);
  }
  return util::OkStatus();
}

std::optional<Registration> RegistryService::LookupEntry(
    const std::string& service_name) {
  const std::uint32_t id = InternedId(service_name);
  util::MutexLock lock(table_mu_);
  const Registration* entry = entries_.Find(id);
  if (entry == nullptr) return std::nullopt;
  if (entry->expires_micros != 0 &&
      clock_->NowMicros() >= entry->expires_micros) {
    return std::nullopt;
  }
  return *entry;
}

std::vector<Registration> RegistryService::Query(const std::string& type) {
  const std::int64_t now = clock_->NowMicros();
  std::vector<Registration> results;
  {
    util::MutexLock lock(table_mu_);
    entries_.ForEach([&](std::uint32_t, const Registration& entry) {
      if (entry.expires_micros != 0 && now >= entry.expires_micros) return;
      if (!type.empty() && entry.type != type) return;
      results.push_back(entry);
    });
  }
  std::sort(results.begin(), results.end(),
            [](const Registration& a, const Registration& b) {
              return a.service_name < b.service_name;
            });
  return results;
}

int RegistryService::SweepExpired() {
  const std::int64_t now = clock_->NowMicros();
  std::vector<std::string> doomed;
  {
    util::MutexLock lock(table_mu_);
    entries_.ForEach([&](std::uint32_t, const Registration& entry) {
      if (entry.expires_micros != 0 && now >= entry.expires_micros) {
        doomed.push_back(entry.service_name);
      }
    });
  }
  for (const std::string& name : doomed) (void)Unregister(name);
  return static_cast<int>(doomed.size());
}

int RegistryService::UnregisterTenant(std::string_view tenant) {
  std::vector<std::string> doomed;
  {
    util::MutexLock lock(table_mu_);
    entries_.ForEach([&](std::uint32_t, const Registration& entry) {
      if (TenantOf(entry.service_name) == tenant) {
        doomed.push_back(entry.service_name);
      }
    });
  }
  for (const std::string& name : doomed) (void)Unregister(name);
  return static_cast<int>(doomed.size());
}

std::size_t RegistryService::entry_count() const {
  util::MutexLock lock(table_mu_);
  return entries_.size();
}

void RegistryService::BindRpc(ServiceContainer& container) {
  container.rpc().RegisterMethod(
      "registry.register",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(Registration registration,
                              DecodeRegistration(reader));
        NEES_ASSIGN_OR_RETURN(std::int64_t lease, reader.ReadI64());
        Register(registration, lease);
        return net::Bytes{};
      });
  container.rpc().RegisterMethod(
      "registry.unregister",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        NEES_RETURN_IF_ERROR(Unregister(name));
        return net::Bytes{};
      });
  container.rpc().RegisterMethod(
      "registry.query",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string type, reader.ReadString());
        const auto results = Query(type);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(results.size()));
        for (const auto& registration : results) {
          EncodeRegistration(registration, writer);
        }
        return writer.Take();
      });
}

RegistryClient::RegistryClient(net::RpcClient* rpc,
                               std::string registry_endpoint)
    : rpc_(rpc), registry_endpoint_(std::move(registry_endpoint)) {}

util::Status RegistryClient::Register(const Registration& registration,
                                      std::int64_t lease_micros) {
  util::ByteWriter writer;
  EncodeRegistration(registration, writer);
  writer.WriteI64(lease_micros);
  return rpc_->Call(registry_endpoint_, "registry.register", writer.Take())
      .status();
}

util::Status RegistryClient::Unregister(const std::string& service_name) {
  util::ByteWriter writer;
  writer.WriteString(service_name);
  return rpc_->Call(registry_endpoint_, "registry.unregister", writer.Take())
      .status();
}

util::Result<std::vector<Registration>> RegistryClient::Query(
    const std::string& type) {
  util::ByteWriter writer;
  writer.WriteString(type);
  NEES_ASSIGN_OR_RETURN(
      net::Bytes response,
      rpc_->Call(registry_endpoint_, "registry.query", writer.Take()));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<Registration> results;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(Registration registration,
                          DecodeRegistration(reader));
    results.push_back(std::move(registration));
  }
  return results;
}

}  // namespace nees::grid
