#include "grid/container.h"

#include <algorithm>

#include "grid/tenant.h"
#include "util/logging.h"

namespace nees::grid {
namespace {

std::uint32_t InternedId(std::string_view name) {
  return net::EndpointTable::Instance().Intern(name);
}

std::string_view NameOf(std::uint32_t id) {
  return net::EndpointTable::Instance().Lookup(id);
}

}  // namespace

ServiceContainer::ServiceContainer(net::Network* network, std::string endpoint,
                                   util::Clock* clock)
    : network_(network),
      endpoint_(std::move(endpoint)),
      clock_(clock),
      rpc_server_(network, endpoint_) {}

ServiceContainer::~ServiceContainer() { Stop(); }

util::Status ServiceContainer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "ogsi.list",
      [this](const net::CallContext&, const net::Bytes&)
          -> util::Result<net::Bytes> { return HandleList(); });
  rpc_server_.RegisterMethod(
      "ogsi.findServiceData",
      [this](const net::CallContext&, const net::Bytes& body) {
        return HandleFind(body);
      });
  rpc_server_.RegisterMethod(
      "ogsi.setTermination",
      [this](const net::CallContext&, const net::Bytes& body) {
        return HandleSetTermination(body);
      });
  rpc_server_.RegisterMethod(
      "ogsi.destroy", [this](const net::CallContext&, const net::Bytes& body) {
        return HandleDestroy(body);
      });
  rpc_server_.RegisterMethod(
      "ogsi.subscribe",
      [this](const net::CallContext&, const net::Bytes& body) {
        return HandleSubscribe(body);
      });
  return util::OkStatus();
}

void ServiceContainer::Stop() { rpc_server_.Stop(); }

util::Result<std::string> ServiceContainer::AddService(
    std::shared_ptr<GridService> service) {
  const std::string& name = service->name();
  const std::uint32_t id = InternedId(name);
  util::MutexLock lock(mu_);
  if (services_.Find(id) != nullptr) {
    return util::AlreadyExists("service already hosted: " + name);
  }
  services_[id].service = std::move(service);
  return endpoint_ + "/" + name;
}

util::Status ServiceContainer::DestroyService(const std::string& name) {
  const std::uint32_t id = InternedId(name);
  std::shared_ptr<GridService> victim;
  {
    util::MutexLock lock(mu_);
    Entry* entry = services_.Find(id);
    if (entry == nullptr) return util::NotFound("no service: " + name);
    victim = std::move(entry->service);
    services_.Erase(id);
    std::erase_if(remote_subscriptions_, [&](const RemoteSubscription& sub) {
      return sub.service == name;
    });
  }
  victim->OnDestroy();
  return util::OkStatus();
}

std::shared_ptr<GridService> ServiceContainer::Lookup(
    const std::string& name) const {
  const std::uint32_t id = InternedId(name);
  util::MutexLock lock(mu_);
  const Entry* entry = services_.Find(id);
  return entry == nullptr ? nullptr : entry->service;
}

std::vector<std::string> ServiceContainer::CollectNames(
    std::string_view tenant, bool all) const {
  std::vector<std::string> names;
  {
    util::MutexLock lock(mu_);
    names.reserve(services_.size());
    services_.ForEach([&](std::uint32_t id, const Entry&) {
      const std::string_view name = NameOf(id);
      if (all || TenantOf(name) == tenant) names.emplace_back(name);
    });
  }
  // The open-addressed table iterates in probe order; sort so listings are
  // deterministic (and match the former std::map behavior).
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> ServiceContainer::ListServices() const {
  return CollectNames({}, /*all=*/true);
}

std::vector<std::string> ServiceContainer::ListServices(
    std::string_view tenant) const {
  return CollectNames(tenant, /*all=*/false);
}

std::size_t ServiceContainer::service_count() const {
  util::MutexLock lock(mu_);
  return services_.size();
}

int ServiceContainer::SweepExpiredImpl(std::string_view tenant, bool all) {
  const std::int64_t now = clock_->NowMicros();
  std::vector<std::string> expired;
  {
    util::MutexLock lock(mu_);
    services_.ForEach([&](std::uint32_t id, const Entry& entry) {
      if (!entry.service->Expired(now)) return;
      const std::string_view name = NameOf(id);
      if (all || TenantOf(name) == tenant) expired.emplace_back(name);
    });
  }
  std::sort(expired.begin(), expired.end());
  for (const std::string& name : expired) {
    NEES_LOG_INFO("grid.container." + endpoint_)
        << "soft-state expiry destroying service " << name;
    (void)DestroyService(name);
  }
  return static_cast<int>(expired.size());
}

int ServiceContainer::SweepExpired() {
  return SweepExpiredImpl({}, /*all=*/true);
}

int ServiceContainer::SweepExpired(std::string_view tenant) {
  return SweepExpiredImpl(tenant, /*all=*/false);
}

int ServiceContainer::DestroyTenant(std::string_view tenant) {
  const std::vector<std::string> names = ListServices(tenant);
  int destroyed = 0;
  for (const std::string& name : names) {
    if (DestroyService(name).ok()) ++destroyed;
  }
  return destroyed;
}

net::Bytes ServiceContainer::HandleList() const {
  util::ByteWriter writer;
  const auto names = ListServices();
  writer.WriteU32(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) writer.WriteString(name);
  return writer.Take();
}

util::Result<net::Bytes> ServiceContainer::HandleFind(
    const net::Bytes& body) const {
  util::ByteReader reader(body);
  NEES_ASSIGN_OR_RETURN(std::string service_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::string prefix, reader.ReadString());
  auto service = Lookup(service_name);
  if (!service) return util::NotFound("no service: " + service_name);
  const auto matches = service->FindServiceData(prefix);
  util::ByteWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(matches.size()));
  for (const auto& [key, value] : matches) {
    writer.WriteString(key);
    EncodeSdeValue(value, writer);
  }
  return writer.Take();
}

util::Result<net::Bytes> ServiceContainer::HandleSetTermination(
    const net::Bytes& body) {
  util::ByteReader reader(body);
  NEES_ASSIGN_OR_RETURN(std::string service_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::int64_t micros, reader.ReadI64());
  auto service = Lookup(service_name);
  if (!service) return util::NotFound("no service: " + service_name);
  service->SetTerminationTimeMicros(micros);
  return net::Bytes{};
}

util::Result<net::Bytes> ServiceContainer::HandleDestroy(
    const net::Bytes& body) {
  util::ByteReader reader(body);
  NEES_ASSIGN_OR_RETURN(std::string service_name, reader.ReadString());
  NEES_RETURN_IF_ERROR(DestroyService(service_name));
  return net::Bytes{};
}

util::Result<net::Bytes> ServiceContainer::HandleSubscribe(
    const net::Bytes& body) {
  util::ByteReader reader(body);
  NEES_ASSIGN_OR_RETURN(std::string service_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::string prefix, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::string subscriber, reader.ReadString());
  auto service = Lookup(service_name);
  if (!service) return util::NotFound("no service: " + service_name);

  const int local_id = service->SubscribeSde(
      prefix, [this, service_name, subscriber](const std::string& key,
                                               const SdeValue& value) {
        util::ByteWriter writer;
        writer.WriteString(service_name);
        writer.WriteString(key);
        EncodeSdeValue(value, writer);
        net::Message message;
        message.from = endpoint_;
        message.to = subscriber;
        message.kind = net::MessageKind::kOneWay;
        message.method = "ogsi.notify";
        message.payload =
            net::EncodeRequestEnvelope(/*auth_token=*/"", writer.Take());
        (void)network_->Send(std::move(message));  // best effort
      });

  util::MutexLock lock(mu_);
  remote_subscriptions_.push_back({service_name, subscriber, local_id});
  return net::Bytes{};
}

// ---------------------------------------------------------------------------
// ContainerClient

ContainerClient::ContainerClient(net::Network* network,
                                 std::string client_endpoint)
    : rpc_client_(network, client_endpoint),
      notify_server_(network, client_endpoint + ".notify") {
  (void)notify_server_.Start();
  notify_server_.RegisterOneWay(
      "ogsi.notify", [this](const net::CallContext&, const net::Bytes& body) {
        util::ByteReader reader(body);
        auto service = reader.ReadString();
        auto key = reader.ReadString();
        if (!service.ok() || !key.ok()) return;
        auto value = DecodeSdeValue(reader);
        if (!value.ok()) return;
        std::vector<NotifyCallback> callbacks;
        {
          util::MutexLock lock(mu_);
          callbacks = callbacks_;
        }
        for (const auto& callback : callbacks) {
          callback(*service, *key, *value);
        }
      });
}

util::Result<std::vector<std::string>> ContainerClient::ListServices(
    const std::string& container, std::int64_t timeout_micros) {
  NEES_ASSIGN_OR_RETURN(
      net::Bytes response,
      rpc_client_.Call(container, "ogsi.list", {}, timeout_micros));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    names.push_back(std::move(name));
  }
  return names;
}

util::Result<std::vector<std::pair<std::string, SdeValue>>>
ContainerClient::FindServiceData(const std::string& container,
                                 const std::string& service,
                                 const std::string& key_prefix,
                                 std::int64_t timeout_micros) {
  util::ByteWriter writer;
  writer.WriteString(service);
  writer.WriteString(key_prefix);
  NEES_ASSIGN_OR_RETURN(net::Bytes response,
                        rpc_client_.Call(container, "ogsi.findServiceData",
                                         writer.Take(), timeout_micros));
  util::ByteReader reader(response);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<std::pair<std::string, SdeValue>> matches;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(SdeValue value, DecodeSdeValue(reader));
    matches.emplace_back(std::move(key), std::move(value));
  }
  return matches;
}

util::Status ContainerClient::SetTerminationTime(
    const std::string& container, const std::string& service,
    std::int64_t termination_micros, std::int64_t timeout_micros) {
  util::ByteWriter writer;
  writer.WriteString(service);
  writer.WriteI64(termination_micros);
  return rpc_client_
      .Call(container, "ogsi.setTermination", writer.Take(), timeout_micros)
      .status();
}

util::Status ContainerClient::DestroyService(const std::string& container,
                                             const std::string& service,
                                             std::int64_t timeout_micros) {
  util::ByteWriter writer;
  writer.WriteString(service);
  return rpc_client_.Call(container, "ogsi.destroy", writer.Take(),
                          timeout_micros)
      .status();
}

util::Status ContainerClient::Subscribe(const std::string& container,
                                        const std::string& service,
                                        const std::string& key_prefix,
                                        NotifyCallback callback,
                                        std::int64_t timeout_micros) {
  {
    util::MutexLock lock(mu_);
    callbacks_.push_back(std::move(callback));
  }
  util::ByteWriter writer;
  writer.WriteString(service);
  writer.WriteString(key_prefix);
  writer.WriteString(notify_server_.endpoint());
  return rpc_client_
      .Call(container, "ogsi.subscribe", writer.Take(), timeout_micros)
      .status();
}

}  // namespace nees::grid
