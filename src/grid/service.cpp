#include "grid/service.h"

#include <algorithm>

#include "util/strings.h"

namespace nees::grid {

void EncodeSdeValue(const SdeValue& value, util::ByteWriter& writer) {
  writer.WriteU32(static_cast<std::uint32_t>(value.fields.size()));
  for (const auto& [key, field] : value.fields) {
    writer.WriteString(key);
    writer.WriteString(field);
  }
}

util::Result<SdeValue> DecodeSdeValue(util::ByteReader& reader) {
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  SdeValue value;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(std::string field, reader.ReadString());
    value.fields[std::move(key)] = std::move(field);
  }
  return value;
}

GridService::GridService(std::string name) : name_(std::move(name)) {}

void GridService::SetServiceData(const std::string& key, SdeValue value) {
  std::vector<SdeCallback> to_notify;
  {
    util::MutexLock lock(mu_);
    sdes_[key] = value;
    for (const auto& [id, prefix, callback] : subscriptions_) {
      (void)id;
      if (util::StartsWith(key, prefix)) to_notify.push_back(callback);
    }
  }
  for (const auto& callback : to_notify) callback(key, value);
}

void GridService::RemoveServiceData(const std::string& key) {
  util::MutexLock lock(mu_);
  sdes_.erase(key);
}

std::optional<SdeValue> GridService::GetServiceData(
    const std::string& key) const {
  RunRefreshHook();
  util::MutexLock lock(mu_);
  auto it = sdes_.find(key);
  if (it == sdes_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> GridService::ListServiceData() const {
  RunRefreshHook();
  util::MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(sdes_.size());
  for (const auto& [key, value] : sdes_) {
    (void)value;
    keys.push_back(key);
  }
  return keys;
}

std::vector<std::pair<std::string, SdeValue>> GridService::FindServiceData(
    const std::string& prefix) const {
  RunRefreshHook();
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, SdeValue>> matches;
  for (const auto& [key, value] : sdes_) {
    if (util::StartsWith(key, prefix)) matches.emplace_back(key, value);
  }
  return matches;
}

int GridService::SubscribeSde(std::string prefix, SdeCallback callback) {
  util::MutexLock lock(mu_);
  const int id = next_subscription_id_++;
  subscriptions_.emplace_back(id, std::move(prefix), std::move(callback));
  subscriber_count_.store(static_cast<int>(subscriptions_.size()),
                          std::memory_order_relaxed);
  return id;
}

void GridService::UnsubscribeSde(int id) {
  util::MutexLock lock(mu_);
  std::erase_if(subscriptions_,
                [id](const auto& entry) { return std::get<0>(entry) == id; });
  subscriber_count_.store(static_cast<int>(subscriptions_.size()),
                          std::memory_order_relaxed);
}

void GridService::SetRefreshHook(RefreshHook hook) {
  util::MutexLock lock(mu_);
  refresh_hook_ = std::move(hook);
}

void GridService::RunRefreshHook() const {
  RefreshHook hook;
  {
    util::MutexLock lock(mu_);
    hook = refresh_hook_;
  }
  if (hook) hook();
}

void GridService::SetTerminationTimeMicros(std::int64_t micros) {
  util::MutexLock lock(mu_);
  termination_time_micros_ = micros;
}

std::int64_t GridService::termination_time_micros() const {
  util::MutexLock lock(mu_);
  return termination_time_micros_;
}

void GridService::ExtendLease(std::int64_t lease_micros,
                              const util::Clock& clock) {
  util::MutexLock lock(mu_);
  termination_time_micros_ = clock.NowMicros() + lease_micros;
}

bool GridService::Expired(std::int64_t now_micros) const {
  util::MutexLock lock(mu_);
  return termination_time_micros_ != 0 && now_micros >= termination_time_micros_;
}

}  // namespace nees::grid
