// OGSI-style stateful Grid services (paper §2: "our implementations make
// good use of OGSI mechanisms, such as soft state management and service
// data elements").
//
// A GridService owns a set of named Service Data Elements (SDEs) — small
// structured documents that expose service state for inspection — plus a
// soft-state termination time that a ServiceContainer enforces. NTCP
// publishes one SDE per transaction (Fig. 1 discussion) and a
// "most-recently-changed" SDE used to monitor the server as a whole.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "util/bytes.h"
#include "util/clock.h"
#include "util/result.h"

namespace nees::grid {

/// A service data element value: an ordered set of string fields.
struct SdeValue {
  std::map<std::string, std::string> fields;

  std::string Get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? "" : it->second;
  }
  void Set(std::string key, std::string value) {
    fields[std::move(key)] = std::move(value);
  }
  bool operator==(const SdeValue&) const = default;
};

/// Wire encoding for remote inspection.
void EncodeSdeValue(const SdeValue& value, util::ByteWriter& writer);
util::Result<SdeValue> DecodeSdeValue(util::ByteReader& reader);

/// Base class for stateful services hosted in a ServiceContainer.
class GridService {
 public:
  explicit GridService(std::string name);
  virtual ~GridService() = default;

  GridService(const GridService&) = delete;
  GridService& operator=(const GridService&) = delete;

  const std::string& name() const { return name_; }

  // --- service data -------------------------------------------------------
  void SetServiceData(const std::string& key, SdeValue value);
  void RemoveServiceData(const std::string& key);
  std::optional<SdeValue> GetServiceData(const std::string& key) const;
  /// Sorted keys of all SDEs.
  std::vector<std::string> ListServiceData() const;
  /// All SDEs whose key starts with `prefix` (OGSI findServiceData analog).
  std::vector<std::pair<std::string, SdeValue>> FindServiceData(
      const std::string& prefix) const;

  /// Local change subscription; returns an id for Unsubscribe. The callback
  /// runs synchronously on the mutating thread, outside the SDE lock.
  using SdeCallback =
      std::function<void(const std::string& key, const SdeValue& value)>;
  int SubscribeSde(std::string prefix, SdeCallback callback);
  void UnsubscribeSde(int id);
  /// Cheap (lock-free) check owners use to pick eager vs. lazy publication:
  /// with no subscribers a write-heavy owner may defer SDE materialisation
  /// to the refresh hook below.
  bool HasSdeSubscribers() const {
    return subscriber_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Publish-on-read: the hook runs (unlocked) at the top of every read —
  /// GetServiceData / ListServiceData / FindServiceData — letting an owner
  /// that marks state dirty instead of eagerly publishing flush just before
  /// inspection. The hook must tolerate concurrent invocation and must not
  /// call back into a read method of this service (it MAY call
  /// SetServiceData / RemoveServiceData).
  using RefreshHook = std::function<void()>;
  void SetRefreshHook(RefreshHook hook);

  // --- soft-state lifetime --------------------------------------------------
  /// 0 means "never expires" (the default).
  void SetTerminationTimeMicros(std::int64_t micros);
  std::int64_t termination_time_micros() const;
  /// Pushes the termination time to now + lease (soft-state keepalive).
  void ExtendLease(std::int64_t lease_micros, const util::Clock& clock);
  bool Expired(std::int64_t now_micros) const;

  /// Hook invoked by the container when the service is destroyed or expires.
  virtual void OnDestroy() {}

 private:
  /// Copies the hook under the lock, then runs it with no locks held (the
  /// hook typically takes the owner's mutex and calls SetServiceData).
  void RunRefreshHook() const;

  const std::string name_;
  mutable util::Mutex mu_{"grid.GridService"};
  std::map<std::string, SdeValue> sdes_;
  std::int64_t termination_time_micros_ = 0;
  int next_subscription_id_ = 1;
  std::vector<std::tuple<int, std::string, SdeCallback>> subscriptions_;
  std::atomic<int> subscriber_count_{0};
  RefreshHook refresh_hook_;
};

}  // namespace nees::grid
