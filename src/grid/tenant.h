// Experiment namespaces for the multi-tenant farm host. A tenant's services
// live under "<tenant>/<base>" (e.g. "t0042/ntcp.uiuc"); the empty namespace
// maps to the bare base name, so a standalone experiment keeps exactly the
// endpoint identities it had before tenancy existed. The separator never
// appears in base names, which makes TenantOf a pure prefix parse — the
// container and registry use it to group services per tenant for listing,
// soft-state sweeping, and reaping without any per-service bookkeeping.
#pragma once

#include <string>
#include <string_view>

namespace nees::grid {

inline constexpr char kTenantSeparator = '/';

/// "<ns>/<base>", or just `base` when `ns` is empty.
inline std::string QualifiedName(std::string_view ns, std::string_view base) {
  if (ns.empty()) return std::string(base);
  std::string name;
  name.reserve(ns.size() + 1 + base.size());
  name.append(ns);
  name.push_back(kTenantSeparator);
  name.append(base);
  return name;
}

/// The namespace of a qualified name ("" for un-namespaced names).
inline std::string_view TenantOf(std::string_view qualified) {
  const std::size_t sep = qualified.find(kTenantSeparator);
  return sep == std::string_view::npos ? std::string_view{}
                                       : qualified.substr(0, sep);
}

/// The base name with any tenant prefix stripped.
inline std::string_view BaseNameOf(std::string_view qualified) {
  const std::size_t sep = qualified.find(kTenantSeparator);
  return sep == std::string_view::npos ? qualified
                                       : qualified.substr(sep + 1);
}

}  // namespace nees::grid
