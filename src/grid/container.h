// ServiceContainer: hosts GridServices at a network endpoint and exposes
// the OGSI inspection/lifetime/subscription operations remotely:
//
//   ogsi.list                -> names of hosted services
//   ogsi.findServiceData     -> SDEs of a service matching a key prefix
//   ogsi.setTermination      -> set/extend a service's termination time
//   ogsi.destroy             -> destroy a service immediately
//   ogsi.subscribe           -> push SDE changes to a subscriber endpoint
//
// Soft state: SweepExpired() destroys services whose termination time has
// passed; a remote party keeps a service alive by periodically extending
// its lease — the OGSI pattern the paper's services rely on.
//
// Multi-tenancy: one container hosts the services of many experiments at
// once. Service names carry their experiment namespace ("t0042/ntcp.uiuc",
// grid/tenant.h), and the per-tenant operations — ListServices(tenant),
// SweepExpired(tenant), DestroyTenant — let the farm scheduler list, lease-
// sweep, and reap one experiment's soft state without touching its
// neighbors'. The service table is an open-addressed map keyed by the
// interned service name (net::EndpointTable), so lookups on the
// thousands-of-tenants hot path cost a probe, not a red-black walk.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "grid/service.h"
#include "net/endpoint.h"
#include "net/rpc.h"
#include "util/clock.h"
#include "util/open_hash.h"

namespace nees::grid {

class ServiceContainer {
 public:
  ServiceContainer(net::Network* network, std::string endpoint,
                   util::Clock* clock = &util::SystemClock::Instance());
  ~ServiceContainer();

  util::Status Start();
  void Stop();

  /// Hosts a service; its grid service handle is "<endpoint>/<name>".
  util::Result<std::string> AddService(std::shared_ptr<GridService> service);
  util::Status DestroyService(const std::string& name);
  std::shared_ptr<GridService> Lookup(const std::string& name) const;
  /// Sorted names of every hosted service; with a tenant, only that
  /// experiment's services.
  std::vector<std::string> ListServices() const;
  std::vector<std::string> ListServices(std::string_view tenant) const;
  std::size_t service_count() const;

  /// Destroys services whose termination time has passed; returns count.
  /// The tenant overload sweeps only one experiment's services.
  int SweepExpired();
  int SweepExpired(std::string_view tenant);

  /// Destroys every service of one experiment namespace (farm reap);
  /// returns how many were destroyed.
  int DestroyTenant(std::string_view tenant);

  const std::string& endpoint() const { return endpoint_; }
  net::RpcServer& rpc() { return rpc_server_; }
  util::Clock* clock() const { return clock_; }

 private:
  struct Entry {
    std::shared_ptr<GridService> service;
  };
  struct RemoteSubscription {
    std::string service;
    std::string subscriber_endpoint;
    int local_id;
  };

  /// Names matching `tenant` ("" = all), sorted. Caller holds no locks.
  std::vector<std::string> CollectNames(std::string_view tenant,
                                        bool all) const;
  int SweepExpiredImpl(std::string_view tenant, bool all);

  net::Bytes HandleList() const;
  util::Result<net::Bytes> HandleFind(const net::Bytes& body) const;
  util::Result<net::Bytes> HandleSetTermination(const net::Bytes& body);
  util::Result<net::Bytes> HandleDestroy(const net::Bytes& body);
  util::Result<net::Bytes> HandleSubscribe(const net::Bytes& body);

  net::Network* network_;
  std::string endpoint_;
  util::Clock* clock_;
  net::RpcServer rpc_server_;
  mutable util::Mutex mu_{"grid.ServiceContainer"};
  /// Keyed by the interned full service name; the name itself lives in the
  /// process-wide EndpointTable, so entries store only the service pointer.
  util::OpenHashMap<std::uint32_t, Entry> services_ NEES_GUARDED_BY(mu_);
  std::vector<RemoteSubscription> remote_subscriptions_ NEES_GUARDED_BY(mu_);
};

/// Client-side helper for the ogsi.* operations of a remote container.
class ContainerClient {
 public:
  ContainerClient(net::Network* network, std::string client_endpoint);

  util::Result<std::vector<std::string>> ListServices(
      const std::string& container, std::int64_t timeout_micros = 1'000'000);

  util::Result<std::vector<std::pair<std::string, SdeValue>>> FindServiceData(
      const std::string& container, const std::string& service,
      const std::string& key_prefix, std::int64_t timeout_micros = 1'000'000);

  util::Status SetTerminationTime(const std::string& container,
                                  const std::string& service,
                                  std::int64_t termination_micros,
                                  std::int64_t timeout_micros = 1'000'000);

  util::Status DestroyService(const std::string& container,
                              const std::string& service,
                              std::int64_t timeout_micros = 1'000'000);

  /// Subscribes to SDE changes; `callback` runs when notifications arrive at
  /// this client's endpoint.
  using NotifyCallback = std::function<void(
      const std::string& service, const std::string& key, const SdeValue&)>;
  util::Status Subscribe(const std::string& container,
                         const std::string& service,
                         const std::string& key_prefix,
                         NotifyCallback callback,
                         std::int64_t timeout_micros = 1'000'000);

  net::RpcClient& rpc() { return rpc_client_; }

 private:
  net::RpcClient rpc_client_;
  net::RpcServer notify_server_;
  util::Mutex mu_{"grid.ContainerClient"};
  std::vector<NotifyCallback> callbacks_;
};

}  // namespace nees::grid
