// Service registry with soft-state registrations: NEESgrid resources
// (NTCP servers, repositories, DAQ bridges) register themselves with a
// lease; entries that are not renewed disappear. This is the index-service
// analog the virtual-organization story (§1) relies on for discovery.
//
// Storage: registrations live in an open-addressed table keyed by the
// interned service name — the farm host resolves every per-tenant endpoint
// through here, so lookups must cost a probe, not a tree walk plus SDE
// decode. The OGSI inspection path still sees one "reg.<name>" SDE per
// entry; with no SDE subscribers the mirror is materialised lazily via the
// publish-on-read refresh hook instead of on every (re-)registration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/container.h"
#include "grid/service.h"
#include "util/open_hash.h"

namespace nees::grid {

struct Registration {
  std::string service_name;  // e.g. "ntcp.uiuc" or "t0042/ntcp.uiuc"
  std::string endpoint;      // network endpoint of the resource
  std::string type;          // e.g. "ntcp", "repository", "nsds"
  std::string site;          // e.g. "UIUC", "CU", "NCSA"
  std::int64_t expires_micros = 0;  // 0 = never
};

/// GridService that stores registrations as SDEs ("reg.<name>") so the
/// standard OGSI inspection path doubles as a discovery query.
class RegistryService final : public GridService {
 public:
  explicit RegistryService(util::Clock* clock);

  /// Adds/renews an entry; lease 0 means no expiry.
  void Register(const Registration& registration, std::int64_t lease_micros);
  util::Status Unregister(const std::string& service_name);

  std::optional<Registration> LookupEntry(const std::string& service_name);
  /// Entries of a given type (all if empty), skipping expired ones,
  /// sorted by service name.
  std::vector<Registration> Query(const std::string& type);

  /// Removes expired entries; returns count removed.
  int SweepExpired();

  /// Removes every entry of one experiment namespace (farm reap);
  /// returns count removed.
  int UnregisterTenant(std::string_view tenant);

  std::size_t entry_count() const;

  /// Binds registry.* RPC methods on the container hosting this service.
  void BindRpc(ServiceContainer& container);

 private:
  SdeValue ToSde(const Registration& registration) const;

  /// Mirrors the table into the SDE map (publish-on-read flush). No-op
  /// unless a registration changed since the last flush.
  void RefreshSdes();

  util::Clock* clock_;
  mutable util::Mutex table_mu_{"grid.RegistryService"};
  util::OpenHashMap<std::uint32_t, Registration> entries_
      NEES_GUARDED_BY(table_mu_);
  bool sdes_stale_ NEES_GUARDED_BY(table_mu_) = false;
  /// Names unregistered since the last flush (their mirror SDEs must go).
  std::vector<std::string> removed_names_ NEES_GUARDED_BY(table_mu_);
};

/// Remote client for a registry hosted in a container.
class RegistryClient {
 public:
  RegistryClient(net::RpcClient* rpc, std::string registry_endpoint);

  util::Status Register(const Registration& registration,
                        std::int64_t lease_micros);
  util::Status Unregister(const std::string& service_name);
  util::Result<std::vector<Registration>> Query(const std::string& type);

 private:
  net::RpcClient* rpc_;
  std::string registry_endpoint_;
};

}  // namespace nees::grid
