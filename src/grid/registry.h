// Service registry with soft-state registrations: NEESgrid resources
// (NTCP servers, repositories, DAQ bridges) register themselves with a
// lease; entries that are not renewed disappear. This is the index-service
// analog the virtual-organization story (§1) relies on for discovery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/container.h"
#include "grid/service.h"

namespace nees::grid {

struct Registration {
  std::string service_name;  // e.g. "ntcp.uiuc"
  std::string endpoint;      // network endpoint of the resource
  std::string type;          // e.g. "ntcp", "repository", "nsds"
  std::string site;          // e.g. "UIUC", "CU", "NCSA"
  std::int64_t expires_micros = 0;  // 0 = never
};

/// GridService that stores registrations as SDEs ("reg.<name>") so the
/// standard OGSI inspection path doubles as a discovery query.
class RegistryService final : public GridService {
 public:
  explicit RegistryService(util::Clock* clock);

  /// Adds/renews an entry; lease 0 means no expiry.
  void Register(const Registration& registration, std::int64_t lease_micros);
  util::Status Unregister(const std::string& service_name);

  std::optional<Registration> LookupEntry(const std::string& service_name);
  /// Entries of a given type (all if empty), skipping expired ones.
  std::vector<Registration> Query(const std::string& type);

  /// Removes expired entries; returns count removed.
  int SweepExpired();

  /// Binds registry.* RPC methods on the container hosting this service.
  void BindRpc(ServiceContainer& container);

 private:
  SdeValue ToSde(const Registration& registration) const;
  static Registration FromSde(const std::string& name, const SdeValue& value);

  util::Clock* clock_;
};

/// Remote client for a registry hosted in a container.
class RegistryClient {
 public:
  RegistryClient(net::RpcClient* rpc, std::string registry_endpoint);

  util::Status Register(const Registration& registration,
                        std::int64_t lease_micros);
  util::Status Unregister(const std::string& service_name);
  util::Result<std::vector<Registration>> Query(const std::string& type);

 private:
  net::RpcClient* rpc_;
  std::string registry_endpoint_;
};

}  // namespace nees::grid
