// Span-based tracing for the experiment stack. The paper reconstructed the
// MOST step timeline from NTP-synchronized site logs; here every layer of
// the reproduction (coordinator, NTCP client/server, plugins, network, DAQ,
// NSDS) records spans against a shared clock instead — under a SimClock the
// resulting trace is fully deterministic and fault-injection-aware.
//
// Modeled time: the simulated network and the actuator emulators *compute*
// delays (transmission micros, settle seconds) without sleeping. When the
// tracer is given a modeled SimClock, recording such a delay advances it, so
// span durations reflect the modeled wide-area timeline rather than host
// scheduling noise. Pass the same SimClock as both `clock` and `modeled`
// for a deterministic trace; pass a SystemClock and no modeled clock to
// measure real wall time instead.
//
// Parenting: spans nest implicitly per thread (a span started while another
// is open on the same thread becomes its child). Cross-thread hops — the
// MPlugin's poll/notify hand-off, parallel per-site phases — pass an
// explicit parent id instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/result.h"

namespace nees::obs {

struct SpanRecord {
  std::uint64_t id = 0;         // 1-based; 0 is "no span"
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;             // "psd.step", "ntcp.execute", ...
  std::string category;         // "step", "protocol", "network", "settle", ...
  std::int64_t start_micros = 0;
  std::int64_t end_micros = -1;  // -1 while open
  std::int64_t modeled_micros = 0;  // modeled delay charged to this span
  std::vector<std::pair<std::string, std::string>> tags;  // insertion order

  bool operator==(const SpanRecord&) const = default;
  /// Closed duration; open spans count as zero-length.
  std::int64_t DurationMicros() const {
    return end_micros < start_micros ? 0 : end_micros - start_micros;
  }
};

class Tracer;

/// RAII handle for an open span. Movable; End() (or destruction) closes it.
/// A default-constructed Span is inactive and every operation is a no-op.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void End();
  void AddTag(const std::string& key, const std::string& value);
  /// Charges a modeled delay to this span (advances the tracer's modeled
  /// clock, if any).
  void AddModeledMicros(std::int64_t micros);

  std::uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

class Tracer {
 public:
  using Tags = std::vector<std::pair<std::string, std::string>>;

  /// `clock` stamps span boundaries; both must outlive the tracer. If
  /// `modeled` is non-null, modeled delays advance it (see file comment).
  explicit Tracer(util::Clock* clock, util::SimClock* modeled = nullptr);

  // --- spans ----------------------------------------------------------------
  Span StartSpan(const std::string& name, const std::string& category);
  /// Explicit parent; the span still joins the calling thread's stack so
  /// later same-thread spans nest under it.
  Span StartSpanWithParent(const std::string& name,
                           const std::string& category,
                           std::uint64_t parent_id);

  /// Non-RAII surface for producer/consumer hops where the span outlives
  /// the starting scope (e.g. MPlugin poll -> backend compute -> notify).
  std::uint64_t BeginSpanId(const std::string& name,
                            const std::string& category,
                            std::uint64_t parent_id);
  void EndSpanId(std::uint64_t id);
  void AddTagById(std::uint64_t id, const std::string& key,
                  const std::string& value);
  void AddModeledMicrosById(std::uint64_t id, std::int64_t micros);

  // --- events ---------------------------------------------------------------
  /// Records a child of the calling thread's current span whose duration is
  /// the modeled delay (zero-length when `modeled_micros` is 0).
  void RecordEvent(const std::string& name, const std::string& category,
                   std::int64_t modeled_micros = 0, Tags tags = {});
  void RecordEventUnder(std::uint64_t parent_id, const std::string& name,
                        const std::string& category,
                        std::int64_t modeled_micros = 0, Tags tags = {});
  /// Records an interval measured by the caller (e.g. queue dwell time).
  void RecordInterval(std::uint64_t parent_id, const std::string& name,
                      const std::string& category, std::int64_t start_micros,
                      std::int64_t end_micros, Tags tags = {});

  /// Innermost open span on the calling thread (0 if none).
  std::uint64_t CurrentSpanId() const;
  std::int64_t NowMicros() const { return clock_->NowMicros(); }

  MetricsRegistry& metrics() { return metrics_; }

  // --- export ---------------------------------------------------------------
  std::vector<SpanRecord> Snapshot() const;  // ordered by id
  std::size_t span_count() const;

  /// One JSON object per line, ids ascending, fixed key order — two runs
  /// with identical modeled timelines export byte-identical text.
  std::string ExportJsonLines() const;

  /// Per-category *exclusive* time (span duration minus its children's, so
  /// nested protocol/network/settle spans are not double-counted), as a
  /// util::TextTable sorted by total share.
  std::string BreakdownTable() const;

  void Clear();

 private:
  std::uint64_t StartLocked(const std::string& name,
                            const std::string& category,
                            std::uint64_t parent_id, bool implicit_parent,
                            bool push_stack) NEES_REQUIRES(mu_);
  void EndLocked(std::uint64_t id) NEES_REQUIRES(mu_);

  util::Clock* clock_;
  util::SimClock* modeled_;
  MetricsRegistry metrics_;

  mutable util::Mutex mu_{"obs.Tracer"};
  // spans_[i].id == i + 1
  std::vector<SpanRecord> spans_ NEES_GUARDED_BY(mu_);
  std::map<std::thread::id, std::vector<std::uint64_t>> stacks_
      NEES_GUARDED_BY(mu_);
};

/// Serializes an arbitrary span vector in the Tracer::ExportJsonLines
/// format (one JSON object per line, fixed key order). Lets offline trace
/// tooling re-export edited span streams.
std::string ExportJsonLines(const std::vector<SpanRecord>& spans);

/// Parses ExportJsonLines output back into records (round-trip tests and
/// offline trace tooling). Rejects malformed lines with kDataLoss.
util::Result<std::vector<SpanRecord>> ParseJsonLines(const std::string& text);

}  // namespace nees::obs
