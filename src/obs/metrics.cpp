#include "obs/metrics.h"

#include "util/strings.h"

namespace nees::obs {

void MetricsRegistry::Increment(const std::string& name, std::int64_t delta) {
  util::MutexLock lock(mu_);
  counters_[name] += delta;
}

std::int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  util::MutexLock lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  util::MutexLock lock(mu_);
  histograms_[name].Add(value);
}

util::SampleStats MetricsRegistry::HistogramValue(
    const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? util::SampleStats{} : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mu_);
  return {counters_, gauges_, histograms_};
}

std::string MetricsRegistry::ReportTable() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string out;
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::TextTable table({"metric", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.AddRow({name, util::Format("%.6g", value)});
    }
    out += table.ToString();
  }
  if (!snapshot.histograms.empty()) {
    util::TextTable table({"histogram", "n", "mean", "p50", "p95", "max"});
    for (const auto& [name, stats] : snapshot.histograms) {
      table.AddRow({name, std::to_string(stats.count()),
                    util::Format("%.4g", stats.mean()),
                    util::Format("%.4g", stats.Percentile(50)),
                    util::Format("%.4g", stats.Percentile(95)),
                    util::Format("%.4g", stats.max())});
    }
    if (!out.empty()) out += "\n";
    out += table.ToString();
  }
  return out;
}

void MetricsRegistry::Clear() {
  util::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace nees::obs
