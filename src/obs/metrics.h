// Metrics registry for the observability layer: named counters, gauges, and
// latency histograms (backed by util::SampleStats). Instrumented components
// share one registry — usually the one owned by obs::Tracer — so a run's
// numbers land in a single place that benches and EXPERIMENTS.md tables can
// print uniformly. All maps are ordered, so reports are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/mutex.h"

#include "util/stats.h"

namespace nees::obs {

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, util::SampleStats> histograms;
};

class MetricsRegistry {
 public:
  void Increment(const std::string& name, std::int64_t delta = 1);
  std::int64_t CounterValue(const std::string& name) const;

  void SetGauge(const std::string& name, double value);
  double GaugeValue(const std::string& name) const;

  /// Adds one observation to the named histogram (created on first use).
  void Observe(const std::string& name, double value);
  util::SampleStats HistogramValue(const std::string& name) const;

  MetricsSnapshot Snapshot() const;

  /// Text report (util::TextTable): counters and gauges first, then one row
  /// per histogram with count/mean/p50/p95/max.
  std::string ReportTable() const;

  void Clear();

 private:
  mutable util::Mutex mu_{"obs.MetricsRegistry"};
  std::map<std::string, std::int64_t> counters_ NEES_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ NEES_GUARDED_BY(mu_);
  std::map<std::string, util::SampleStats> histograms_ NEES_GUARDED_BY(mu_);
};

}  // namespace nees::obs
