#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace nees::obs {

// ---------------------------------------------------------------------------
// Span

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), id_(other.id_) {
  other.tracer_ = nullptr;
  other.id_ = 0;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Span::~Span() { End(); }

void Span::End() {
  if (tracer_ == nullptr) return;
  tracer_->EndSpanId(id_);
  tracer_ = nullptr;
}

void Span::AddTag(const std::string& key, const std::string& value) {
  if (tracer_ != nullptr) tracer_->AddTagById(id_, key, value);
}

void Span::AddModeledMicros(std::int64_t micros) {
  if (tracer_ != nullptr) tracer_->AddModeledMicrosById(id_, micros);
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(util::Clock* clock, util::SimClock* modeled)
    : clock_(clock), modeled_(modeled) {}

std::uint64_t Tracer::StartLocked(const std::string& name,
                                  const std::string& category,
                                  std::uint64_t parent_id,
                                  bool implicit_parent, bool push_stack) {
  // mu_ must be held.
  std::vector<std::uint64_t>& stack = stacks_[std::this_thread::get_id()];
  if (implicit_parent) parent_id = stack.empty() ? 0 : stack.back();
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent_id = parent_id;
  record.name = name;
  record.category = category;
  record.start_micros = clock_->NowMicros();
  spans_.push_back(std::move(record));
  if (push_stack) stack.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndLocked(std::uint64_t id) {
  // mu_ must be held.
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& record = spans_[id - 1];
  if (record.end_micros < 0) record.end_micros = clock_->NowMicros();
  // Unwind the starting thread's stack; tolerate cross-thread End.
  auto self = stacks_.find(std::this_thread::get_id());
  bool found = false;
  if (self != stacks_.end()) {
    auto it = std::find(self->second.rbegin(), self->second.rend(), id);
    if (it != self->second.rend()) {
      self->second.erase(std::next(it).base());
      found = true;
    }
  }
  if (!found) {
    for (auto& [thread, stack] : stacks_) {
      auto it = std::find(stack.rbegin(), stack.rend(), id);
      if (it != stack.rend()) {
        stack.erase(std::next(it).base());
        break;
      }
    }
  }
}

Span Tracer::StartSpan(const std::string& name, const std::string& category) {
  util::MutexLock lock(mu_);
  return Span(this, StartLocked(name, category, 0, /*implicit_parent=*/true,
                                /*push_stack=*/true));
}

Span Tracer::StartSpanWithParent(const std::string& name,
                                 const std::string& category,
                                 std::uint64_t parent_id) {
  util::MutexLock lock(mu_);
  return Span(this, StartLocked(name, category, parent_id,
                                /*implicit_parent=*/false,
                                /*push_stack=*/true));
}

std::uint64_t Tracer::BeginSpanId(const std::string& name,
                                  const std::string& category,
                                  std::uint64_t parent_id) {
  util::MutexLock lock(mu_);
  return StartLocked(name, category, parent_id, /*implicit_parent=*/false,
                     /*push_stack=*/true);
}

void Tracer::EndSpanId(std::uint64_t id) {
  util::MutexLock lock(mu_);
  EndLocked(id);
}

void Tracer::AddTagById(std::uint64_t id, const std::string& key,
                        const std::string& value) {
  util::MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].tags.emplace_back(key, value);
}

void Tracer::AddModeledMicrosById(std::uint64_t id, std::int64_t micros) {
  if (micros > 0 && modeled_ != nullptr) modeled_->Advance(micros);
  util::MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].modeled_micros += micros;
}

void Tracer::RecordEvent(const std::string& name, const std::string& category,
                         std::int64_t modeled_micros, Tags tags) {
  RecordEventUnder(CurrentSpanId(), name, category, modeled_micros,
                   std::move(tags));
}

void Tracer::RecordEventUnder(std::uint64_t parent_id, const std::string& name,
                              const std::string& category,
                              std::int64_t modeled_micros, Tags tags) {
  const std::int64_t start = clock_->NowMicros();
  if (modeled_micros > 0 && modeled_ != nullptr) {
    modeled_->Advance(modeled_micros);
  }
  const std::int64_t end = clock_->NowMicros();
  util::MutexLock lock(mu_);
  const std::uint64_t id = StartLocked(name, category, parent_id,
                                       /*implicit_parent=*/false,
                                       /*push_stack=*/false);
  SpanRecord& record = spans_[id - 1];
  record.start_micros = start;
  record.end_micros = end;
  record.modeled_micros = modeled_micros;
  record.tags = std::move(tags);
}

void Tracer::RecordInterval(std::uint64_t parent_id, const std::string& name,
                            const std::string& category,
                            std::int64_t start_micros,
                            std::int64_t end_micros, Tags tags) {
  util::MutexLock lock(mu_);
  const std::uint64_t id = StartLocked(name, category, parent_id,
                                       /*implicit_parent=*/false,
                                       /*push_stack=*/false);
  SpanRecord& record = spans_[id - 1];
  record.start_micros = start_micros;
  record.end_micros = std::max(start_micros, end_micros);
  record.tags = std::move(tags);
}

std::uint64_t Tracer::CurrentSpanId() const {
  util::MutexLock lock(mu_);
  auto it = stacks_.find(std::this_thread::get_id());
  if (it == stacks_.end() || it->second.empty()) return 0;
  return it->second.back();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  util::MutexLock lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  util::MutexLock lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  {
    util::MutexLock lock(mu_);
    spans_.clear();
    stacks_.clear();
  }
  metrics_.Clear();
}

// ---------------------------------------------------------------------------
// JSON-lines export / parse

namespace {

void AppendJsonString(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Strict cursor parser for the fixed shape ExportJsonLines emits.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : line_(line) {}

  bool Literal(std::string_view expected) {
    if (line_.substr(pos_, expected.size()) != expected) return false;
    pos_ += expected.size();
    return true;
  }

  bool Integer(std::int64_t* value) {
    std::size_t start = pos_;
    if (pos_ < line_.size() && line_[pos_] == '-') ++pos_;
    while (pos_ < line_.size() && line_[pos_] >= '0' && line_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) return false;
    long long parsed = 0;
    if (!util::ParseInt(std::string(line_.substr(start, pos_ - start)),
                        &parsed)) {
      return false;
    }
    *value = parsed;
    return true;
  }

  bool String(std::string* value) {
    value->clear();
    if (!Literal("\"")) return false;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c != '\\') {
        *value += c;
        continue;
      }
      if (pos_ >= line_.size()) return false;
      const char escape = line_[pos_++];
      switch (escape) {
        case '"': *value += '"'; break;
        case '\\': *value += '\\'; break;
        case 'n': *value += '\n'; break;
        case 'r': *value += '\r'; break;
        case 't': *value += '\t'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code > 0xff) return false;  // exporter only emits control chars
          *value += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return Literal("\"");
  }

  bool Peek(char c) const { return pos_ < line_.size() && line_[pos_] == c; }
  bool AtEnd() const { return pos_ == line_.size(); }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string ExportJsonLines(const std::vector<SpanRecord>& spans) {
  std::string out;
  out.reserve(spans.size() * 128);
  for (const SpanRecord& span : spans) {
    out += util::Format("{\"id\":%llu,\"parent\":%llu,\"name\":",
                        static_cast<unsigned long long>(span.id),
                        static_cast<unsigned long long>(span.parent_id));
    AppendJsonString(span.name, out);
    out += ",\"cat\":";
    AppendJsonString(span.category, out);
    // Open spans export as zero-length at their start time.
    const std::int64_t end = std::max(span.start_micros, span.end_micros);
    out += util::Format(",\"start\":%lld,\"end\":%lld,\"modeled\":%lld",
                        static_cast<long long>(span.start_micros),
                        static_cast<long long>(end),
                        static_cast<long long>(span.modeled_micros));
    out += ",\"tags\":{";
    bool first = true;
    for (const auto& [key, value] : span.tags) {
      if (!first) out += ',';
      first = false;
      AppendJsonString(key, out);
      out += ':';
      AppendJsonString(value, out);
    }
    out += "}}\n";
  }
  return out;
}

std::string Tracer::ExportJsonLines() const {
  return obs::ExportJsonLines(Snapshot());
}

util::Result<std::vector<SpanRecord>> ParseJsonLines(const std::string& text) {
  std::vector<SpanRecord> spans;
  int line_number = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_number;
    if (util::Trim(line).empty()) continue;
    LineParser parser(line);
    SpanRecord record;
    std::int64_t id = 0, parent = 0;
    const bool ok =
        parser.Literal("{\"id\":") && parser.Integer(&id) &&
        parser.Literal(",\"parent\":") && parser.Integer(&parent) &&
        parser.Literal(",\"name\":") && parser.String(&record.name) &&
        parser.Literal(",\"cat\":") && parser.String(&record.category) &&
        parser.Literal(",\"start\":") && parser.Integer(&record.start_micros) &&
        parser.Literal(",\"end\":") && parser.Integer(&record.end_micros) &&
        parser.Literal(",\"modeled\":") &&
        parser.Integer(&record.modeled_micros) &&
        parser.Literal(",\"tags\":{");
    if (!ok) {
      return util::DataLoss(
          util::Format("malformed trace line %d", line_number));
    }
    while (!parser.Peek('}')) {
      std::string key, value;
      if (!record.tags.empty() && !parser.Literal(",")) {
        return util::DataLoss(
            util::Format("malformed trace tags at line %d", line_number));
      }
      if (!parser.String(&key) || !parser.Literal(":") ||
          !parser.String(&value)) {
        return util::DataLoss(
            util::Format("malformed trace tags at line %d", line_number));
      }
      record.tags.emplace_back(std::move(key), std::move(value));
    }
    if (!parser.Literal("}}") || !parser.AtEnd()) {
      return util::DataLoss(
          util::Format("trailing garbage at line %d", line_number));
    }
    record.id = static_cast<std::uint64_t>(id);
    record.parent_id = static_cast<std::uint64_t>(parent);
    spans.push_back(std::move(record));
  }
  return spans;
}

// ---------------------------------------------------------------------------
// Breakdown report

std::string Tracer::BreakdownTable() const {
  const std::vector<SpanRecord> spans = Snapshot();

  // Exclusive time: each span's duration minus the time covered by its
  // children, so "protocol" is not billed for the "network" transfer nested
  // inside it, and "step" only keeps what no child explains.
  std::map<std::uint64_t, std::int64_t> child_micros;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != 0) {
      child_micros[span.parent_id] += span.DurationMicros();
    }
  }

  struct CategoryTotals {
    std::uint64_t spans = 0;
    std::int64_t inclusive_micros = 0;
    util::SampleStats exclusive;
  };
  std::map<std::string, CategoryTotals> categories;
  std::int64_t total_exclusive = 0;
  for (const SpanRecord& span : spans) {
    const std::int64_t inclusive = span.DurationMicros();
    auto it = child_micros.find(span.id);
    const std::int64_t children = it == child_micros.end() ? 0 : it->second;
    const std::int64_t exclusive = std::max<std::int64_t>(
        0, inclusive - children);
    CategoryTotals& totals = categories[span.category];
    ++totals.spans;
    totals.inclusive_micros += inclusive;
    totals.exclusive.Add(static_cast<double>(exclusive));
    total_exclusive += exclusive;
  }

  std::vector<std::pair<std::string, const CategoryTotals*>> ordered;
  ordered.reserve(categories.size());
  for (const auto& [name, totals] : categories) {
    ordered.emplace_back(name, &totals);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    const double a_sum = a.second->exclusive.sum();
    const double b_sum = b.second->exclusive.sum();
    if (a_sum != b_sum) return a_sum > b_sum;
    return a.first < b.first;
  });

  util::TextTable table({"category", "spans", "excl total [ms]",
                         "mean [us]", "p95 [us]", "max [us]", "share"});
  for (const auto& [name, totals] : ordered) {
    const double sum = totals->exclusive.sum();
    table.AddRow(
        {name, std::to_string(totals->spans),
         util::Format("%.3f", sum / 1000.0),
         util::Format("%.1f", totals->exclusive.mean()),
         util::Format("%.1f", totals->exclusive.Percentile(95)),
         util::Format("%.1f", totals->exclusive.max()),
         util::Format("%5.1f%%",
                      total_exclusive > 0 ? 100.0 * sum / total_exclusive
                                          : 0.0)});
  }
  return table.ToString();
}

}  // namespace nees::obs
