#include "net/network.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace nees::net {

std::int64_t TransmissionDelayMicros(const LinkModel& model,
                                     std::size_t wire_bytes,
                                     nees::util::Rng& rng) {
  std::int64_t delay = model.latency_micros;
  if (model.jitter_micros > 0) {
    delay += rng.UniformInt(-static_cast<int>(model.jitter_micros),
                            static_cast<int>(model.jitter_micros));
  }
  if (model.bytes_per_second > 0.0) {
    delay += static_cast<std::int64_t>(
        static_cast<double>(wire_bytes) / model.bytes_per_second * 1e6);
  }
  return std::max<std::int64_t>(delay, 0);
}

Network::Network(DeliveryMode mode, std::uint64_t fault_seed)
    : mode_(mode), clock_(&util::SystemClock::Instance()), rng_(fault_seed) {
  if (mode_ == DeliveryMode::kScheduled) {
    delivery_thread_ = std::thread([this] { DeliveryLoop(); });
  }
}

Network::~Network() {
  if (mode_ == DeliveryMode::kScheduled) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
      pending_cv_.notify_all();
    }
    delivery_thread_.join();
  }
}

util::Status Network::RegisterEndpoint(const std::string& name,
                                       Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.contains(name)) {
    return util::AlreadyExists("endpoint already registered: " + name);
  }
  endpoints_[name] = std::make_shared<Handler>(std::move(handler));
  return util::OkStatus();
}

void Network::UnregisterEndpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(name);
}

bool Network::HasEndpoint(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.contains(name);
}

Network::LinkState& Network::LinkFor(const std::string& from,
                                     const std::string& to) {
  // mu_ must be held.
  auto it = links_.find({from, to});
  if (it != links_.end()) return it->second;
  it = links_.find({from, "*"});
  if (it != links_.end()) return it->second;
  it = links_.find({"*", to});
  if (it != links_.end()) return it->second;
  // Materialize a link with the default model so metrics accumulate.
  auto [inserted, unused] =
      links_.try_emplace({from, to}, LinkState{default_link_, true, 0, {}, {}});
  (void)unused;
  return inserted->second;
}

bool Network::InPartition(const std::string& from,
                          const std::string& to) const {
  if (!partitioned_) return false;
  const bool from_a =
      std::find(partition_a_.begin(), partition_a_.end(), from) !=
      partition_a_.end();
  const bool from_b =
      std::find(partition_b_.begin(), partition_b_.end(), from) !=
      partition_b_.end();
  const bool to_a = std::find(partition_a_.begin(), partition_a_.end(), to) !=
                    partition_a_.end();
  const bool to_b = std::find(partition_b_.begin(), partition_b_.end(), to) !=
                    partition_b_.end();
  return (from_a && to_b) || (from_b && to_a);
}

bool Network::ShouldDrop(LinkState& link, const Message& message,
                         std::int64_t now_micros) {
  (void)message;
  if (!link.up) {
    ++link.metrics.dropped_forced;
    ++total_.dropped_forced;
    return true;
  }
  if (link.drop_next > 0) {
    --link.drop_next;
    ++link.metrics.dropped_forced;
    ++total_.dropped_forced;
    return true;
  }
  for (const OutageWindow& window : link.outages) {
    if (now_micros >= window.start_micros && now_micros < window.end_micros) {
      ++link.metrics.dropped_outage;
      ++total_.dropped_outage;
      return true;
    }
  }
  if (link.model.drop_probability > 0.0 &&
      rng_.Bernoulli(link.model.drop_probability)) {
    ++link.metrics.dropped_random;
    ++total_.dropped_random;
    return true;
  }
  return false;
}

util::Status Network::Send(Message message) {
  std::shared_ptr<Handler> handler;
  std::int64_t delay = 0;
  bool dropped = false;
  bool scheduled = false;
  std::string from, to;
  if (tracer_ != nullptr) {  // copied here: survives the scheduled-path move
    from = message.from;
    to = message.to;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(message.to);
    if (it == endpoints_.end()) {
      return util::NotFound("no such endpoint: " + message.to);
    }
    handler = it->second;

    LinkState& link = LinkFor(message.from, message.to);
    ++link.metrics.sent;
    ++total_.sent;

    const std::int64_t now = clock_->NowMicros();
    if (InPartition(message.from, message.to)) {
      ++link.metrics.dropped_forced;
      ++total_.dropped_forced;
      dropped = true;  // silently lost, like a real partition
    } else if (ShouldDrop(link, message, now)) {
      dropped = true;  // silently lost
    } else {
      delay = TransmissionDelayMicros(link.model, message.WireSize(), rng_);
      ++link.metrics.delivered;
      link.metrics.bytes_delivered += message.WireSize();
      ++total_.delivered;
      total_.bytes_delivered += message.WireSize();

      if (mode_ == DeliveryMode::kScheduled) {
        pending_.push(ScheduledMessage{now + delay, next_sequence_++,
                                       std::move(message)});
        ++in_flight_;
        pending_cv_.notify_all();
        scheduled = true;
      }
    }
  }
  if (dropped) {
    if (tracer_ != nullptr) tracer_->metrics().Increment("net.dropped");
    return util::OkStatus();
  }
  // Tracing happens outside mu_ (the tracer lock is a leaf). The transfer
  // event charges the modeled link delay, which advances a modeled SimClock
  // before an inline handler observes the arrival time.
  if (tracer_ != nullptr) {
    tracer_->RecordEvent("net.deliver", "network", delay,
                         {{"from", from}, {"to", to}});
    tracer_->metrics().Observe("net.delay_micros",
                               static_cast<double>(delay));
  }
  if (scheduled) return util::OkStatus();
  // Immediate mode: run the handler inline, outside the lock so handlers
  // can send further messages without deadlocking. The message is moved:
  // delivery is the end of its life on the wire.
  (*handler)(std::move(message));
  return util::OkStatus();
}

void Network::Dispatch(Message message) {
  std::shared_ptr<Handler> handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(message.to);
    if (it != endpoints_.end()) handler = it->second;
  }
  if (handler) (*handler)(std::move(message));
}

void Network::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutting_down_) return;
    if (pending_.empty()) {
      pending_cv_.wait(lock,
                       [this] { return shutting_down_ || !pending_.empty(); });
      continue;
    }
    const std::int64_t now = clock_->NowMicros();
    const std::int64_t due = pending_.top().due_micros;
    if (due > now) {
      pending_cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    // Move the payload out of the heap slot before popping; the comparator
    // only reads due_micros/sequence, so the moved-from message is inert.
    Message message =
        std::move(const_cast<ScheduledMessage&>(pending_.top()).message);
    pending_.pop();
    lock.unlock();
    Dispatch(std::move(message));
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) quiesce_cv_.notify_all();
  }
}

void Network::SetLink(const std::string& from, const std::string& to,
                      LinkModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[{from, to}].model = model;
}

void Network::SetDefaultLink(LinkModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  default_link_ = model;
}

void Network::SetLinkUp(const std::string& from, const std::string& to,
                        bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkFor(from, to).up = up;
}

void Network::DropNext(const std::string& from, const std::string& to,
                       int count) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkFor(from, to).drop_next += count;
}

void Network::AddOutage(const std::string& from, const std::string& to,
                        OutageWindow window) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkFor(from, to).outages.push_back(window);
}

void Network::AddBidirectionalOutage(const std::string& a,
                                     const std::string& b,
                                     OutageWindow window) {
  AddOutage(a, b, window);
  AddOutage(b, a, window);
}

void Network::Partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b) {
  std::lock_guard<std::mutex> lock(mu_);
  partition_a_ = group_a;
  partition_b_ = group_b;
  partitioned_ = true;
}

void Network::HealPartition() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = false;
}

LinkMetrics Network::TotalMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

LinkMetrics Network::LinkMetricsFor(const std::string& from,
                                    const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find({from, to});
  if (it == links_.end()) return {};
  return it->second.metrics;
}

void Network::SetClock(util::Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void Network::Quiesce() {
  if (mode_ == DeliveryMode::kImmediate) return;
  std::unique_lock<std::mutex> lock(mu_);
  quiesce_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace nees::net
