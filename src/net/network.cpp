#include "net/network.h"

#include <algorithm>
#include <limits>

#include "check/invariant.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace nees::net {

std::int64_t TransmissionDelayMicros(const LinkModel& model,
                                     std::size_t wire_bytes,
                                     nees::util::Rng& rng) {
  std::int64_t delay = model.latency_micros;
  if (model.jitter_micros > 0) {
    delay += rng.UniformInt(-static_cast<int>(model.jitter_micros),
                            static_cast<int>(model.jitter_micros));
  }
  if (model.bytes_per_second > 0.0) {
    delay += static_cast<std::int64_t>(
        static_cast<double>(wire_bytes) / model.bytes_per_second * 1e6);
  }
  return std::max<std::int64_t>(delay, 0);
}

Network::Network(DeliveryMode mode, std::uint64_t fault_seed)
    : mode_(mode),
      clock_(&util::SystemClock::Instance()),
      rng_(fault_seed),
      schedule_rng_(fault_seed ^ 0x5C4D3E2F1A0B9C8DULL) {
  if (mode_ == DeliveryMode::kScheduled) {
    delivery_thread_ = std::thread([this] { DeliveryLoop(); });
  } else if (mode_ == DeliveryMode::kVirtual) {
    owned_virtual_clock_ = std::make_unique<util::SimClock>();
    virtual_clock_ = owned_virtual_clock_.get();
    clock_ = &pump_clock_;
  }
}

Network::~Network() {
  if (mode_ == DeliveryMode::kScheduled) {
    {
      util::MutexLock lock(mu_);
      shutting_down_ = true;
      pending_cv_.NotifyAll();
    }
    delivery_thread_.join();
  }
}

util::Status Network::RegisterEndpoint(EndpointId name, Handler handler) {
  util::MutexLock lock(mu_);
  if (endpoints_.Find(name.raw()) != nullptr) {
    return util::AlreadyExists("endpoint already registered: " + name.str());
  }
  endpoints_[name.raw()] = std::make_shared<Handler>(std::move(handler));
  return util::OkStatus();
}

void Network::UnregisterEndpoint(EndpointId name) {
  util::MutexLock lock(mu_);
  endpoints_.Erase(name.raw());
}

void Network::SetEndpointCrashed(EndpointId name, bool crashed) {
  util::MutexLock lock(mu_);
  if (crashed) {
    crashed_endpoints_[name.raw()] = true;
  } else {
    crashed_endpoints_.Erase(name.raw());
  }
}

bool Network::HasEndpoint(EndpointId name) const {
  util::MutexLock lock(mu_);
  return endpoints_.Find(name.raw()) != nullptr;
}

Network::LinkState& Network::LinkFor(EndpointId from, EndpointId to) {
  // mu_ must be held.
  if (LinkState* link = links_.Find(LinkKey(from, to))) return *link;
  if (LinkState* link = links_.Find(LinkKey(from, wildcard_id_))) return *link;
  if (LinkState* link = links_.Find(LinkKey(wildcard_id_, to))) return *link;
  // Materialize a link with the default model so metrics accumulate.
  LinkState& link = links_[LinkKey(from, to)];
  link.model = default_link_;
  return link;
}

bool Network::InPartition(EndpointId from, EndpointId to) const {
  if (!partitioned_) return false;
  const bool from_a =
      std::find(partition_a_.begin(), partition_a_.end(), from) !=
      partition_a_.end();
  const bool from_b =
      std::find(partition_b_.begin(), partition_b_.end(), from) !=
      partition_b_.end();
  const bool to_a = std::find(partition_a_.begin(), partition_a_.end(), to) !=
                    partition_a_.end();
  const bool to_b = std::find(partition_b_.begin(), partition_b_.end(), to) !=
                    partition_b_.end();
  return (from_a && to_b) || (from_b && to_a);
}

bool Network::ShouldDrop(LinkState& link, const Message& message,
                         std::int64_t now_micros) {
  (void)message;
  if (!link.up) {
    ++link.metrics.dropped_forced;
    ++total_.dropped_forced;
    return true;
  }
  if (link.drop_next > 0) {
    --link.drop_next;
    ++link.metrics.dropped_forced;
    ++total_.dropped_forced;
    return true;
  }
  for (const OutageWindow& window : link.outages) {
    if (now_micros >= window.start_micros && now_micros < window.end_micros) {
      ++link.metrics.dropped_outage;
      ++total_.dropped_outage;
      return true;
    }
  }
  if (link.model.drop_probability > 0.0 &&
      rng_.Bernoulli(link.model.drop_probability)) {
    ++link.metrics.dropped_random;
    ++total_.dropped_random;
    return true;
  }
  return false;
}

util::Status Network::Send(Message message) {
  std::shared_ptr<Handler> handler;
  std::int64_t delay = 0;
  bool dropped = false;
  bool scheduled = false;
  bool deferred = false;  // kVirtual: delivery accounting happens at arrival
  // Ids survive the scheduled-path move (they are 4-byte values, and the
  // interned names they point at live for the process lifetime).
  const EndpointId from = message.from;
  const EndpointId to = message.to;
  {
    util::MutexLock lock(mu_);
    if (crashed_endpoints_.Find(from.raw()) != nullptr) {
      // The sender's process is dead; its zombie stack frames write to the
      // void. Report acceptance — a crashed process cannot observe errors.
      LinkState& dead_link = LinkFor(from, to);
      ++dead_link.metrics.sent;
      ++total_.sent;
      ++dead_link.metrics.dropped_forced;
      ++total_.dropped_forced;
      return util::OkStatus();
    }
    std::shared_ptr<Handler>* slot = endpoints_.Find(to.raw());
    if (slot == nullptr) {
      return util::NotFound("no such endpoint: " + to.str());
    }
    handler = *slot;

    // LinkFor may materialize an entry; take the reference after that
    // insert and do no further links_ inserts while it is live.
    LinkState& link = LinkFor(from, to);
    ++link.metrics.sent;
    ++total_.sent;

    const std::int64_t now = clock_->NowMicros();
    if (InPartition(from, to)) {
      ++link.metrics.dropped_forced;
      ++total_.dropped_forced;
      dropped = true;  // silently lost, like a real partition
    } else if (ShouldDrop(link, message, now)) {
      dropped = true;  // silently lost
    } else {
      delay = TransmissionDelayMicros(link.model, message.WireSize(), rng_);

      if (mode_ == DeliveryMode::kVirtual) {
        // Enqueue only; DeliverVirtual() re-checks faults and counts the
        // delivery at the arrival timestamp. The seeded tie decides the
        // order of events due at the same microsecond.
        pending_.push(ScheduledMessage{now + delay, schedule_rng_.NextU64(),
                                       next_sequence_++, delay,
                                       std::move(message)});
        scheduled = true;
        deferred = true;
      } else {
        ++link.metrics.delivered;
        link.metrics.bytes_delivered += message.WireSize();
        ++total_.delivered;
        total_.bytes_delivered += message.WireSize();

        if (mode_ == DeliveryMode::kScheduled) {
          pending_.push(ScheduledMessage{now + delay, 0, next_sequence_++,
                                         delay, std::move(message)});
          ++in_flight_;
          pending_cv_.NotifyAll();
          scheduled = true;
        }
      }
    }
  }
  if (dropped) {
    if (tracer_ != nullptr) tracer_->metrics().Increment("net.dropped");
    return util::OkStatus();
  }
  if (deferred) return util::OkStatus();
  // Tracing happens outside mu_ (the tracer lock is a leaf). The transfer
  // event charges the modeled link delay, which advances a modeled SimClock
  // before an inline handler observes the arrival time.
  if (tracer_ != nullptr) {
    tracer_->RecordEvent("net.deliver", "network", delay,
                         {{"from", from.str()}, {"to", to.str()}});
    tracer_->metrics().Observe("net.delay_micros",
                               static_cast<double>(delay));
  }
  if (scheduled) return util::OkStatus();
  // Immediate mode: run the handler inline, outside the lock so handlers
  // can send further messages without deadlocking. The message is moved:
  // delivery is the end of its life on the wire.
  (*handler)(std::move(message));
  return util::OkStatus();
}

void Network::Dispatch(Message message) {
  std::shared_ptr<Handler> handler;
  {
    util::MutexLock lock(mu_);
    if (auto* slot = endpoints_.Find(message.to.raw())) handler = *slot;
  }
  if (handler) (*handler)(std::move(message));
}

void Network::DeliveryLoop() {
  util::MutexLock lock(mu_);
  for (;;) {
    if (shutting_down_) return;
    if (pending_.empty()) {
      while (!shutting_down_ && pending_.empty()) pending_cv_.Wait(mu_);
      continue;
    }
    const std::int64_t now = clock_->NowMicros();
    const std::int64_t due = pending_.top().due_micros;
    if (due > now) {
      pending_cv_.WaitFor(mu_, due - now);
      continue;
    }
    // Move the payload out of the heap slot before popping; the comparator
    // only reads due_micros/sequence, so the moved-from message is inert.
    Message message =
        std::move(const_cast<ScheduledMessage&>(pending_.top()).message);
    pending_.pop();
    lock.Unlock();
    Dispatch(std::move(message));
    lock.Lock();
    --in_flight_;
    if (in_flight_ == 0) quiesce_cv_.NotifyAll();
  }
}

// --- virtual-time event loop -----------------------------------------------

std::int64_t Network::PumpClock::NowMicros() const {
  return network_->virtual_clock_->NowMicros();
}

void Network::PumpClock::SleepMicros(std::int64_t micros) {
  // A virtual "sleep" delivers everything due in the window, in order, so
  // a backoff timer or heartbeat wait observes the world it would have
  // observed on a real network — just reproducibly.
  network_->AdvanceTo(network_->virtual_clock_->NowMicros() +
                      std::max<std::int64_t>(micros, 0));
}

void Network::AdvanceVirtualClockTo(std::int64_t micros) {
  if (virtual_clock_ == nullptr) return;
  if (micros > virtual_clock_->NowMicros()) virtual_clock_->SetMicros(micros);
}

void Network::ScheduleAt(std::int64_t due_micros, std::function<void()> fn) {
  NEES_CHECK_INVARIANT(mode_ == DeliveryMode::kVirtual,
                       "timers require DeliveryMode::kVirtual");
  util::MutexLock lock(mu_);
  const std::int64_t due =
      std::max(due_micros, virtual_clock_->NowMicros());
  timers_.push(ScheduledTimer{due, schedule_rng_.NextU64(), next_sequence_++,
                              std::move(fn)});
}

void Network::ScheduleAfter(std::int64_t delay_micros,
                            std::function<void()> fn) {
  NEES_CHECK_INVARIANT(mode_ == DeliveryMode::kVirtual,
                       "timers require DeliveryMode::kVirtual");
  util::MutexLock lock(mu_);
  const std::int64_t due =
      virtual_clock_->NowMicros() + std::max<std::int64_t>(delay_micros, 0);
  timers_.push(ScheduledTimer{due, schedule_rng_.NextU64(), next_sequence_++,
                              std::move(fn)});
}

bool Network::PumpOne(std::int64_t limit_micros, bool advance_on_idle) {
  if (mode_ != DeliveryMode::kVirtual) return false;
  Message message;
  std::function<void()> fn;
  std::int64_t delay = 0;
  enum class Pick { kNone, kMessage, kTimer };
  Pick pick = Pick::kNone;
  {
    util::MutexLock lock(mu_);
    const bool have_message = !pending_.empty();
    const bool have_timer = !timers_.empty();
    if (have_message && have_timer) {
      // Merge the two queues by the shared (due, tie, sequence) key.
      const ScheduledMessage& m = pending_.top();
      const ScheduledTimer& t = timers_.top();
      const bool timer_first =
          t.due_micros != m.due_micros ? t.due_micros < m.due_micros
          : t.tie != m.tie             ? t.tie < m.tie
                                       : t.sequence < m.sequence;
      pick = timer_first ? Pick::kTimer : Pick::kMessage;
    } else if (have_message) {
      pick = Pick::kMessage;
    } else if (have_timer) {
      pick = Pick::kTimer;
    }
    if (pick == Pick::kMessage && pending_.top().due_micros <= limit_micros) {
      AdvanceVirtualClockTo(pending_.top().due_micros);
      message =
          std::move(const_cast<ScheduledMessage&>(pending_.top()).message);
      delay = pending_.top().delay_micros;
      pending_.pop();
    } else if (pick == Pick::kTimer &&
               timers_.top().due_micros <= limit_micros) {
      AdvanceVirtualClockTo(timers_.top().due_micros);
      fn = std::move(const_cast<ScheduledTimer&>(timers_.top()).fn);
      timers_.pop();
      ++virtual_stats_.timers_fired;
    } else {
      pick = Pick::kNone;
    }
  }
  switch (pick) {
    case Pick::kMessage:
      DeliverVirtual(std::move(message), delay);
      return true;
    case Pick::kTimer:
      fn();
      return true;
    case Pick::kNone:
      if (advance_on_idle) AdvanceVirtualClockTo(limit_micros);
      return false;
  }
  return false;
}

bool Network::CorruptInFlight(LinkState& link, Message& message) {
  --link.corrupt_next;
  ++link.metrics.corrupted;
  ++total_.corrupted;
  // Round-trip the message through the canonical wire format and damage the
  // byte stream, exactly as a flaky WAN hop would: flip 1–3 bytes, or chop
  // the tail off. Decisions come from the fault rng so the mutation is a
  // pure function of the fault seed.
  util::ByteWriter writer;
  message.EncodeTo(writer);
  std::vector<std::uint8_t> frame = writer.Take();
  if (rng_.Bernoulli(0.25)) {
    frame.resize(rng_.UniformU64(frame.size()));
  } else {
    const int flips = rng_.UniformInt(1, 3);
    for (int i = 0; i < flips; ++i) {
      const std::size_t at = rng_.UniformU64(frame.size());
      frame[at] ^= static_cast<std::uint8_t>(rng_.UniformInt(1, 255));
    }
  }
  util::ByteReader reader(frame);
  util::Result<Message> mutant = Message::Decode(reader);
  if (!mutant.ok()) {
    ++link.metrics.dropped_corrupt;
    ++total_.dropped_corrupt;
    return true;  // damage detected -> lost in flight
  }
  message = std::move(mutant).value();
  return false;  // slipped through the integrity check -> deliver the mutant
}

void Network::DeliverVirtual(Message message, std::int64_t delay_micros) {
  std::shared_ptr<Handler> handler;
  bool dropped = false;
  const EndpointId from = message.from;
  const EndpointId to = message.to;
  {
    util::MutexLock lock(mu_);
    const std::int64_t now = virtual_clock_->NowMicros();
    LinkState& link = LinkFor(from, to);
    // Arrival-time fault checks: the world may have changed while the
    // message was in flight. Outage ends are exclusive, so an arrival
    // exactly at end_micros gets through.
    if (InPartition(from, to) || !link.up) {
      ++link.metrics.dropped_forced;
      ++total_.dropped_forced;
      dropped = true;
    } else {
      for (const OutageWindow& window : link.outages) {
        if (now >= window.start_micros && now < window.end_micros) {
          ++link.metrics.dropped_outage;
          ++total_.dropped_outage;
          dropped = true;
          break;
        }
      }
    }
    if (!dropped) {
      std::shared_ptr<Handler>* slot = endpoints_.Find(to.raw());
      if (slot == nullptr) {
        // Endpoint unregistered in flight: lost, like a connection reset.
        ++link.metrics.dropped_forced;
        ++total_.dropped_forced;
        dropped = true;
      } else if (link.corrupt_next > 0 && CorruptInFlight(link, message)) {
        // Mutation detected at the Decode gate: the frame is wire damage,
        // lost exactly like a drop (the retry ladder recovers it).
        dropped = true;
      } else {
        handler = *slot;
        ++link.metrics.delivered;
        link.metrics.bytes_delivered += message.WireSize();
        ++total_.delivered;
        total_.bytes_delivered += message.WireSize();
        ++virtual_stats_.messages_delivered;
      }
    }
    if (dropped) ++virtual_stats_.messages_dropped_in_flight;
  }
  if (dropped) {
    if (tracer_ != nullptr) tracer_->metrics().Increment("net.dropped");
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->RecordEvent("net.deliver", "network", delay_micros,
                         {{"from", from.str()}, {"to", to.str()}});
    tracer_->metrics().Observe("net.delay_micros",
                               static_cast<double>(delay_micros));
  }
  (*handler)(std::move(message));
}

bool Network::PumpOneUntil(std::int64_t limit_micros) {
  return PumpOne(limit_micros, /*advance_on_idle=*/true);
}

std::size_t Network::AdvanceTo(std::int64_t micros) {
  std::size_t count = 0;
  while (PumpOne(micros, /*advance_on_idle=*/false)) ++count;
  AdvanceVirtualClockTo(micros);
  return count;
}

std::size_t Network::RunUntilQuiescent(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events &&
         PumpOne(std::numeric_limits<std::int64_t>::max(),
                 /*advance_on_idle=*/false)) {
    ++count;
  }
  if (count >= max_events) {
    NEES_LOG_ERROR("net.network")
        << "RunUntilQuiescent hit the " << max_events
        << "-event backstop; a timer is likely re-arming forever";
  }
  return count;
}

Network::VirtualLoopStats Network::virtual_stats() const {
  util::MutexLock lock(mu_);
  return virtual_stats_;
}

// ---------------------------------------------------------------------------

void Network::SetLink(EndpointId from, EndpointId to, LinkModel model) {
  util::MutexLock lock(mu_);
  links_[LinkKey(from, to)].model = model;
}

void Network::SetDefaultLink(LinkModel model) {
  util::MutexLock lock(mu_);
  default_link_ = model;
}

void Network::SetLinkUp(EndpointId from, EndpointId to, bool up) {
  util::MutexLock lock(mu_);
  LinkFor(from, to).up = up;
}

void Network::DropNext(EndpointId from, EndpointId to, int count) {
  util::MutexLock lock(mu_);
  LinkFor(from, to).drop_next += count;
}

void Network::CorruptNext(EndpointId from, EndpointId to, int count) {
  util::MutexLock lock(mu_);
  LinkFor(from, to).corrupt_next += count;
}

void Network::AddOutage(EndpointId from, EndpointId to,
                        OutageWindow window) {
  util::MutexLock lock(mu_);
  LinkFor(from, to).outages.push_back(window);
}

void Network::AddBidirectionalOutage(EndpointId a, EndpointId b,
                                     OutageWindow window) {
  AddOutage(a, b, window);
  AddOutage(b, a, window);
}

void Network::Partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b) {
  util::MutexLock lock(mu_);
  partition_a_.assign(group_a.begin(), group_a.end());
  partition_b_.assign(group_b.begin(), group_b.end());
  partitioned_ = true;
}

void Network::HealPartition() {
  util::MutexLock lock(mu_);
  partitioned_ = false;
}

LinkMetrics Network::TotalMetrics() const {
  util::MutexLock lock(mu_);
  return total_;
}

LinkMetrics Network::LinkMetricsFor(EndpointId from, EndpointId to) const {
  util::MutexLock lock(mu_);
  const LinkState* link = links_.Find(LinkKey(from, to));
  if (link == nullptr) return {};
  return link->metrics;
}

void Network::SetClock(util::Clock* clock) {
  util::MutexLock lock(mu_);
  if (mode_ == DeliveryMode::kVirtual) {
    // The event loop needs a manually advanced timeline; clock() keeps
    // returning the pumping facade over the injected SimClock.
    auto* sim = dynamic_cast<util::SimClock*>(clock);
    NEES_CHECK_INVARIANT(sim != nullptr,
                         "kVirtual networks require a SimClock timeline");
    if (sim != nullptr) virtual_clock_ = sim;
    return;
  }
  clock_ = clock;
}

void Network::Quiesce() {
  if (mode_ == DeliveryMode::kImmediate) return;
  if (mode_ == DeliveryMode::kVirtual) {
    RunUntilQuiescent();
    return;
  }
  util::MutexLock lock(mu_);
  while (in_flight_ != 0) quiesce_cv_.Wait(mu_);
}

}  // namespace nees::net
