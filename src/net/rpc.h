// Request/response RPC over the simulated network.
//
// Servers register named methods; clients call them with a timeout. An
// optional authenticator hook lets the security module map a bearer token
// to an authenticated subject before the method body runs (the GSI analog:
// every NEESgrid service call is authenticated, §2).
//
// Loss semantics match a real datagram-over-WAN stack: a dropped request or
// response surfaces to the caller only as a Timeout. Retries and
// at-most-once semantics live one layer up, in NTCP — exactly where the
// paper puts them.
//
// Hot-path layout: targets and methods are interned ids (net/endpoint.h),
// method dispatch and the pending-call correlation table are open-addressed
// (util/open_hash.h), and envelopes are encoded into recycled pool frames
// (util/frame_pool.h). Between BeginBatch() and FlushBatch() a client
// stages CallAsync requests and coalesces the ones sharing a target into a
// single "rpc.batch" multi-call frame — the GridFTP-style pipelining the
// coordinator uses for its per-site propose/execute fan-out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/open_hash.h"
#include "util/result.h"

namespace nees::net {

using Bytes = std::vector<std::uint8_t>;

/// Per-call context handed to method implementations. The views point at
/// interned names (stable for the process lifetime).
struct CallContext {
  std::string_view caller_endpoint;  // network-level sender
  std::string auth_token;            // raw bearer token ("" if none)
  std::string subject;               // authenticated identity ("" if anonymous)
  std::string_view method;
};

/// The reserved multi-call method name (see RpcClient::BeginBatch).
inline constexpr std::string_view kBatchMethodName = "rpc.batch";

class RpcServer {
 public:
  using Method =
      std::function<util::Result<Bytes>(const CallContext&, const Bytes&)>;
  using OneWayMethod = std::function<void(const CallContext&, const Bytes&)>;
  /// Maps (token, method) -> subject, or an error to reject the call.
  using Authenticator =
      std::function<util::Result<std::string>(const std::string& token,
                                              const std::string& method)>;

  RpcServer(Network* network, std::string endpoint);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  util::Status Start();
  void Stop();

  /// Method names are interned to dense ids once, here at registration;
  /// dispatch afterwards is one open-addressed probe by id.
  void RegisterMethod(MethodId name, Method method);
  void RegisterOneWay(MethodId name, OneWayMethod method);

  /// Installs the authentication hook. If set, calls with tokens the hook
  /// rejects are answered with the hook's error status; methods see the
  /// resolved subject in CallContext.
  void SetAuthenticator(Authenticator authenticator);

  const std::string& endpoint() const { return endpoint_; }
  EndpointId endpoint_id() const { return endpoint_id_; }

 private:
  struct MethodEntry {
    Method request;
    OneWayMethod oneway;
  };

  void HandleMessage(Message message);
  /// Unpacks one "rpc.batch" frame: every sub-call runs through the normal
  /// method/auth dispatch (so per-transaction semantics and trace events
  /// are preserved), and the per-call outcomes are coalesced into one
  /// response frame the client demultiplexes by correlation id.
  void HandleBatch(Message message);
  /// Shared per-call core: method lookup, authentication, handler run.
  util::Result<Bytes> DispatchCall(CallContext& context, MethodId method,
                                   const Bytes& body);
  MethodEntry& EntryLocked(MethodId id) NEES_REQUIRES(mu_);

  Network* network_;
  std::string endpoint_;
  EndpointId endpoint_id_;
  bool started_ = false;
  mutable util::Mutex mu_{"net.RpcServer"};
  /// Interned method id -> dense index + 1 into method_entries_.
  util::OpenHashMap<std::uint32_t, std::uint32_t> method_index_
      NEES_GUARDED_BY(mu_);
  std::vector<MethodEntry> method_entries_ NEES_GUARDED_BY(mu_);
  Authenticator authenticator_ NEES_GUARDED_BY(mu_);
};

/// Shared wakeup channel for a batch of calls (WaitAll / WaitAnyUntil):
/// completing any attached call signals the batch's waiter.
struct CallBatch {
  util::CondVar cv;
};

/// Slot a response lands in; shared between the client and async handles.
/// Each call carries its own condition variable so a completion wakes only
/// its waiter (plus the batch, if attached) — never every in-flight call.
struct PendingCall {
  bool done = false;
  /// False while the call is staged inside an open BeginBatch window (not
  /// yet on the wire). Guards the immediate-mode "unanswered means lost"
  /// auto-timeout in TryResolve: a staged call is not unanswered, it is
  /// unsent.
  bool sent = true;
  util::Status status;
  Bytes response;
  util::CondVar cv;
  std::shared_ptr<CallBatch> batch;
};

class RpcClient {
 public:
  /// `endpoint` is this client's own network name for receiving responses.
  RpcClient(Network* network, std::string endpoint);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Unregisters this client's endpoint now (idempotent; the destructor
  /// otherwise does it). Crash simulation needs this: when a site dies and
  /// a fresh incarnation re-registers the same endpoint name, the dead
  /// incarnation's eventual destructor must not tear down its successor's
  /// registration.
  void Stop();

  /// Bearer token attached to every subsequent call (the default token).
  void SetAuthToken(std::string token);

  /// Token used only for calls to `target` (overrides the default). Each
  /// site issues its own session tokens, so a client talking to several
  /// secured services holds one per target.
  void SetAuthTokenFor(EndpointId target, std::string token);

  /// Synchronous call. Timeout produces ErrorCode::kTimeout; a transport-
  /// level missing endpoint produces kUnavailable (the site is gone, retry
  /// later); application errors pass through the server's status.
  util::Result<Bytes> Call(EndpointId target, MethodId method,
                           const Bytes& body,
                           std::int64_t timeout_micros = 1'000'000);

  /// Handle to an in-flight asynchronous call. Deadlines are stamped from
  /// the network's injected util::Clock, so SimClock-driven tests see
  /// simulated-time timeouts rather than wall-clock ones.
  class AsyncCall {
   public:
    /// Blocks until the reply arrives or the call's timeout lapses. In
    /// kVirtual mode "blocking" means pumping the network's event loop up
    /// to the deadline, so waits are deterministic and instantaneous. A
    /// still-staged call is flushed first.
    util::Result<Bytes> Wait();

    /// Non-blocking: if the call has resolved (reply arrived, send failed,
    /// or the deadline lapsed), writes the outcome to `out` and returns
    /// true; otherwise returns false. In kImmediate mode an unanswered call
    /// resolves as a timeout at once — the response (if any) was delivered
    /// inline during Send, so there is nothing left to wait for. A call
    /// still staged in an open batch window is never resolved here. Like
    /// Wait(), resolves at most once per handle.
    bool TryResolve(util::Result<Bytes>* out);

    /// Clock-based deadline (micros on the network's clock).
    std::int64_t deadline_micros() const { return deadline_micros_; }

   private:
    friend class RpcClient;
    /// Built lazily, only when a timeout actually needs the text.
    std::string TimeoutMessage() const;

    RpcClient* client_ = nullptr;
    std::uint64_t correlation_ = 0;
    std::shared_ptr<PendingCall> state_;
    std::int64_t deadline_micros_ = 0;
    util::Status send_error_;
    EndpointId target_;
    MethodId method_;
  };

  /// Issues a call without waiting; several calls to different sites can be
  /// in flight at once, overlapping their round trips (the §5 near-real-
  /// time optimization). Wait() at most once per handle.
  AsyncCall CallAsync(EndpointId target, MethodId method, const Bytes& body,
                      std::int64_t timeout_micros = 1'000'000);

  /// Pipelining: between BeginBatch() and FlushBatch(), CallAsync stages
  /// requests instead of sending them. FlushBatch coalesces all calls
  /// staged for the same target into one framed "rpc.batch" multi-call
  /// message (a lone staged call goes out as a plain request, wire-
  /// identical to the unbatched path) and ends the window. Staged handles
  /// resolve exactly like un-batched ones; Wait/WaitAll/WaitAnyUntil on a
  /// still-staged handle flush first, so forgetting FlushBatch degrades to
  /// unbatched timing, never a hang.
  void BeginBatch();
  void FlushBatch();

  /// Batch primitive: blocks until every call has resolved (replied, send
  /// failed, or deadline lapsed). Harvest results with Wait()/TryResolve()
  /// per handle afterwards. No-op in kImmediate mode, where calls resolve
  /// inline during issue; in kVirtual mode it pumps the event loop.
  void WaitAll(const std::vector<AsyncCall*>& calls);

  /// Blocks until at least one of the (currently unresolved) calls
  /// completes, or the network clock reaches `wake_micros`, or the earliest
  /// deadline among the calls lapses — whichever comes first. Returns
  /// immediately if any call is already resolved. No-op in kImmediate mode;
  /// pumps the event loop in kVirtual mode.
  void WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                    std::int64_t wake_micros);

  /// Fire-and-forget send (streaming, notifications).
  util::Status OneWay(EndpointId target, MethodId method, const Bytes& body);

  const std::string& endpoint() const { return endpoint_; }
  EndpointId endpoint_id() const { return endpoint_id_; }

 private:
  /// One call staged inside an open batch window.
  struct StagedCall {
    std::uint64_t correlation = 0;
    MethodId method;
    Bytes body;  // pooled copy of the caller's body
    std::shared_ptr<PendingCall> state;
  };
  struct StagedTarget {
    EndpointId target;
    std::string token;
    std::vector<StagedCall> calls;
  };

  void HandleMessage(Message message);
  /// Demultiplexes one "rpc.batch" response frame into the per-sub-call
  /// pending slots by correlation id.
  void HandleBatchResponse(Message message);

  /// Issues the request and registers the pending slot (shared by Call and
  /// CallAsync); on send failure returns the error in AsyncCall. Inside a
  /// batch window the call is staged instead of sent.
  AsyncCall Issue(EndpointId target, MethodId method, const Bytes& body,
                  std::int64_t timeout_micros);

  std::string TokenFor(EndpointId target) NEES_EXCLUDES(mu_);
  std::string TokenForLocked(EndpointId target) const NEES_REQUIRES(mu_);
  /// Allocation-free variant; the reference is only valid under mu_.
  const std::string& TokenRefLocked(EndpointId target) const
      NEES_REQUIRES(mu_);

  /// Pops a recycled PendingCall (or allocates the pool's first few).
  std::shared_ptr<PendingCall> AcquireCallLocked() NEES_REQUIRES(mu_);
  /// Returns a resolved slot to the pool. Only the last owner may recycle:
  /// a response handler can still hold a transient reference while it
  /// signals the slot's condition variable outside the lock, so a slot
  /// with use_count() > 1 is simply dropped and freed normally.
  void RecycleCallLocked(std::shared_ptr<PendingCall> call)
      NEES_REQUIRES(mu_);

  /// Shared engine behind WaitAll (wait_for_all) and WaitAnyUntil.
  void WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                    std::int64_t wake_micros, bool wait_for_all);

  /// kVirtual counterpart: instead of parking on a batch condition
  /// variable, pump the network event loop one event at a time between
  /// predicate checks. Single-threaded and deterministic.
  void WaitAnyUntilVirtual(const std::vector<AsyncCall*>& calls,
                           std::int64_t wake_micros, bool wait_for_all);

  Network* network_;
  std::string endpoint_;
  EndpointId endpoint_id_;
  bool registered_ = false;
  util::Mutex mu_{"net.RpcClient"};
  std::string auth_token_ NEES_GUARDED_BY(mu_);
  util::OpenHashMap<std::uint32_t, std::string> per_target_tokens_
      NEES_GUARDED_BY(mu_);
  std::uint64_t next_correlation_ NEES_GUARDED_BY(mu_) = 1;
  util::OpenHashMap<std::uint64_t, std::shared_ptr<PendingCall>> pending_
      NEES_GUARDED_BY(mu_);
  bool batching_ NEES_GUARDED_BY(mu_) = false;
  std::vector<StagedTarget> staging_ NEES_GUARDED_BY(mu_);
  /// Recycled StagedTarget shells: FlushBatch parks its emptied groups here
  /// so the next window's staging reuses their calls-vector and token
  /// capacity instead of reallocating. Bounded by the widest fan-out seen.
  std::vector<StagedTarget> staging_pool_ NEES_GUARDED_BY(mu_);
  /// Recycled PendingCall slots: every resolved call hands its slot back
  /// (condition variable and response capacity intact), so steady-state
  /// traffic allocates no per-call control blocks.
  std::vector<std::shared_ptr<PendingCall>> call_pool_ NEES_GUARDED_BY(mu_);
};

/// Encodes/decodes the RPC envelopes (exposed for protocol tests).
Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body);
util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body);
Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body);
util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body);

/// Consuming decodes used on the delivery path: after validating the
/// header, the body is moved out of `payload` with a prefix erase (one
/// memmove, no second allocation). Strict framing: the body's length
/// prefix must account for the entire remainder of the frame.
util::Status ConsumeRequestEnvelope(Bytes* payload, std::string* auth_token,
                                    Bytes* body);
util::Status ConsumeResponseEnvelope(Bytes* payload, util::Status* status,
                                     Bytes* body);

}  // namespace nees::net
