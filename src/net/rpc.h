// Request/response RPC over the simulated network.
//
// Servers register named methods; clients call them with a timeout. An
// optional authenticator hook lets the security module map a bearer token
// to an authenticated subject before the method body runs (the GSI analog:
// every NEESgrid service call is authenticated, §2).
//
// Loss semantics match a real datagram-over-WAN stack: a dropped request or
// response surfaces to the caller only as a Timeout. Retries and
// at-most-once semantics live one layer up, in NTCP — exactly where the
// paper puts them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/result.h"

namespace nees::net {

using Bytes = std::vector<std::uint8_t>;

/// Per-call context handed to method implementations.
struct CallContext {
  std::string caller_endpoint;  // network-level sender
  std::string auth_token;       // raw bearer token ("" if none)
  std::string subject;          // authenticated identity ("" if anonymous)
  std::string method;
};

class RpcServer {
 public:
  using Method =
      std::function<util::Result<Bytes>(const CallContext&, const Bytes&)>;
  using OneWayMethod = std::function<void(const CallContext&, const Bytes&)>;
  /// Maps (token, method) -> subject, or an error to reject the call.
  using Authenticator =
      std::function<util::Result<std::string>(const std::string& token,
                                              const std::string& method)>;

  RpcServer(Network* network, std::string endpoint);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  util::Status Start();
  void Stop();

  void RegisterMethod(const std::string& name, Method method);
  void RegisterOneWay(const std::string& name, OneWayMethod method);

  /// Installs the authentication hook. If set, calls with tokens the hook
  /// rejects are answered with the hook's error status; methods see the
  /// resolved subject in CallContext.
  void SetAuthenticator(Authenticator authenticator);

  const std::string& endpoint() const { return endpoint_; }

 private:
  void HandleMessage(Message message);

  Network* network_;
  std::string endpoint_;
  bool started_ = false;
  mutable util::Mutex mu_{"net.RpcServer"};
  std::map<std::string, Method> methods_ NEES_GUARDED_BY(mu_);
  std::map<std::string, OneWayMethod> oneway_methods_ NEES_GUARDED_BY(mu_);
  Authenticator authenticator_ NEES_GUARDED_BY(mu_);
};

/// Shared wakeup channel for a batch of calls (WaitAll / WaitAnyUntil):
/// completing any attached call signals the batch's waiter.
struct CallBatch {
  util::CondVar cv;
};

/// Slot a response lands in; shared between the client and async handles.
/// Each call carries its own condition variable so a completion wakes only
/// its waiter (plus the batch, if attached) — never every in-flight call.
struct PendingCall {
  bool done = false;
  util::Status status;
  Bytes response;
  util::CondVar cv;
  std::shared_ptr<CallBatch> batch;
};

class RpcClient {
 public:
  /// `endpoint` is this client's own network name for receiving responses.
  RpcClient(Network* network, std::string endpoint);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Unregisters this client's endpoint now (idempotent; the destructor
  /// otherwise does it). Crash simulation needs this: when a site dies and
  /// a fresh incarnation re-registers the same endpoint name, the dead
  /// incarnation's eventual destructor must not tear down its successor's
  /// registration.
  void Stop();

  /// Bearer token attached to every subsequent call (the default token).
  void SetAuthToken(std::string token);

  /// Token used only for calls to `target` (overrides the default). Each
  /// site issues its own session tokens, so a client talking to several
  /// secured services holds one per target.
  void SetAuthTokenFor(const std::string& target, std::string token);

  /// Synchronous call. Timeout produces ErrorCode::kTimeout; a transport-
  /// level missing endpoint produces kUnavailable (the site is gone, retry
  /// later); application errors pass through the server's status.
  util::Result<Bytes> Call(const std::string& target,
                           const std::string& method, const Bytes& body,
                           std::int64_t timeout_micros = 1'000'000);

  /// Handle to an in-flight asynchronous call. Deadlines are stamped from
  /// the network's injected util::Clock, so SimClock-driven tests see
  /// simulated-time timeouts rather than wall-clock ones.
  class AsyncCall {
   public:
    /// Blocks until the reply arrives or the call's timeout lapses. In
    /// kVirtual mode "blocking" means pumping the network's event loop up
    /// to the deadline, so waits are deterministic and instantaneous.
    util::Result<Bytes> Wait();

    /// Non-blocking: if the call has resolved (reply arrived, send failed,
    /// or the deadline lapsed), writes the outcome to `out` and returns
    /// true; otherwise returns false. In kImmediate mode an unanswered call
    /// resolves as a timeout at once — the response (if any) was delivered
    /// inline during Send, so there is nothing left to wait for. Like
    /// Wait(), resolves at most once per handle.
    bool TryResolve(util::Result<Bytes>* out);

    /// Clock-based deadline (micros on the network's clock).
    std::int64_t deadline_micros() const { return deadline_micros_; }

   private:
    friend class RpcClient;
    RpcClient* client_ = nullptr;
    std::uint64_t correlation_ = 0;
    std::shared_ptr<PendingCall> state_;
    std::int64_t deadline_micros_ = 0;
    util::Status send_error_;
    std::string label_;  // for timeout messages
  };

  /// Issues a call without waiting; several calls to different sites can be
  /// in flight at once, overlapping their round trips (the §5 near-real-
  /// time optimization). Wait() at most once per handle.
  AsyncCall CallAsync(const std::string& target, const std::string& method,
                      const Bytes& body,
                      std::int64_t timeout_micros = 1'000'000);

  /// Batch primitive: blocks until every call has resolved (replied, send
  /// failed, or deadline lapsed). Harvest results with Wait()/TryResolve()
  /// per handle afterwards. No-op in kImmediate mode, where calls resolve
  /// inline during issue; in kVirtual mode it pumps the event loop.
  void WaitAll(const std::vector<AsyncCall*>& calls);

  /// Blocks until at least one of the (currently unresolved) calls
  /// completes, or the network clock reaches `wake_micros`, or the earliest
  /// deadline among the calls lapses — whichever comes first. Returns
  /// immediately if any call is already resolved. No-op in kImmediate mode;
  /// pumps the event loop in kVirtual mode.
  void WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                    std::int64_t wake_micros);

  /// Fire-and-forget send (streaming, notifications).
  util::Status OneWay(const std::string& target, const std::string& method,
                      const Bytes& body);

  const std::string& endpoint() const { return endpoint_; }

 private:
  void HandleMessage(Message message);

  /// Issues the request and registers the pending slot (shared by Call and
  /// CallAsync); on send failure returns the error in AsyncCall.
  AsyncCall Issue(const std::string& target, const std::string& method,
                  const Bytes& body, std::int64_t timeout_micros);

  std::string TokenFor(const std::string& target) NEES_EXCLUDES(mu_);
  std::string TokenForLocked(const std::string& target) const
      NEES_REQUIRES(mu_);

  /// Shared engine behind WaitAll (wait_for_all) and WaitAnyUntil.
  void WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                    std::int64_t wake_micros, bool wait_for_all);

  /// kVirtual counterpart: instead of parking on a batch condition
  /// variable, pump the network event loop one event at a time between
  /// predicate checks. Single-threaded and deterministic.
  void WaitAnyUntilVirtual(const std::vector<AsyncCall*>& calls,
                           std::int64_t wake_micros, bool wait_for_all);

  Network* network_;
  std::string endpoint_;
  bool registered_ = false;
  util::Mutex mu_{"net.RpcClient"};
  std::string auth_token_ NEES_GUARDED_BY(mu_);
  std::map<std::string, std::string> per_target_tokens_ NEES_GUARDED_BY(mu_);
  std::uint64_t next_correlation_ NEES_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_
      NEES_GUARDED_BY(mu_);
};

/// Encodes/decodes the RPC envelopes (exposed for protocol tests).
Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body);
util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body);
Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body);
util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body);

/// Consuming decodes used on the delivery path: after validating the
/// header, the body is moved out of `payload` with a prefix erase (one
/// memmove, no second allocation). Strict framing: the body's length
/// prefix must account for the entire remainder of the frame.
util::Status ConsumeRequestEnvelope(Bytes* payload, std::string* auth_token,
                                    Bytes* body);
util::Status ConsumeResponseEnvelope(Bytes* payload, util::Status* status,
                                     Bytes* body);

}  // namespace nees::net
