// Request/response RPC over the simulated network.
//
// Servers register named methods; clients call them with a timeout. An
// optional authenticator hook lets the security module map a bearer token
// to an authenticated subject before the method body runs (the GSI analog:
// every NEESgrid service call is authenticated, §2).
//
// Loss semantics match a real datagram-over-WAN stack: a dropped request or
// response surfaces to the caller only as a Timeout. Retries and
// at-most-once semantics live one layer up, in NTCP — exactly where the
// paper puts them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/network.h"
#include "util/bytes.h"
#include "util/result.h"

namespace nees::net {

using Bytes = std::vector<std::uint8_t>;

/// Per-call context handed to method implementations.
struct CallContext {
  std::string caller_endpoint;  // network-level sender
  std::string auth_token;       // raw bearer token ("" if none)
  std::string subject;          // authenticated identity ("" if anonymous)
  std::string method;
};

class RpcServer {
 public:
  using Method =
      std::function<util::Result<Bytes>(const CallContext&, const Bytes&)>;
  using OneWayMethod = std::function<void(const CallContext&, const Bytes&)>;
  /// Maps (token, method) -> subject, or an error to reject the call.
  using Authenticator =
      std::function<util::Result<std::string>(const std::string& token,
                                              const std::string& method)>;

  RpcServer(Network* network, std::string endpoint);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  util::Status Start();
  void Stop();

  void RegisterMethod(const std::string& name, Method method);
  void RegisterOneWay(const std::string& name, OneWayMethod method);

  /// Installs the authentication hook. If set, calls with tokens the hook
  /// rejects are answered with the hook's error status; methods see the
  /// resolved subject in CallContext.
  void SetAuthenticator(Authenticator authenticator);

  const std::string& endpoint() const { return endpoint_; }

 private:
  void HandleMessage(const Message& message);

  Network* network_;
  std::string endpoint_;
  bool started_ = false;
  mutable std::mutex mu_;
  std::map<std::string, Method> methods_;
  std::map<std::string, OneWayMethod> oneway_methods_;
  Authenticator authenticator_;
};

/// Slot a response lands in; shared between the client and async handles.
struct PendingCall {
  bool done = false;
  util::Status status;
  Bytes response;
};

class RpcClient {
 public:
  /// `endpoint` is this client's own network name for receiving responses.
  RpcClient(Network* network, std::string endpoint);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Bearer token attached to every subsequent call (the default token).
  void SetAuthToken(std::string token);

  /// Token used only for calls to `target` (overrides the default). Each
  /// site issues its own session tokens, so a client talking to several
  /// secured services holds one per target.
  void SetAuthTokenFor(const std::string& target, std::string token);

  /// Synchronous call. Timeout produces ErrorCode::kTimeout; a transport-
  /// level missing endpoint produces kUnavailable (the site is gone, retry
  /// later); application errors pass through the server's status.
  util::Result<Bytes> Call(const std::string& target,
                           const std::string& method, const Bytes& body,
                           std::int64_t timeout_micros = 1'000'000);

  /// Handle to an in-flight asynchronous call.
  class AsyncCall {
   public:
    /// Blocks until the reply arrives or the call's timeout lapses.
    util::Result<Bytes> Wait();

   private:
    friend class RpcClient;
    RpcClient* client_ = nullptr;
    std::uint64_t correlation_ = 0;
    std::shared_ptr<PendingCall> state_;
    std::chrono::steady_clock::time_point deadline_;
    util::Status send_error_;
    std::string label_;  // for timeout messages
  };

  /// Issues a call without waiting; several calls to different sites can be
  /// in flight at once, overlapping their round trips (the §5 near-real-
  /// time optimization). Wait() at most once per handle.
  AsyncCall CallAsync(const std::string& target, const std::string& method,
                      const Bytes& body,
                      std::int64_t timeout_micros = 1'000'000);

  /// Fire-and-forget send (streaming, notifications).
  util::Status OneWay(const std::string& target, const std::string& method,
                      const Bytes& body);

  const std::string& endpoint() const { return endpoint_; }

 private:
  void HandleMessage(const Message& message);

  /// Issues the request and registers the pending slot (shared by Call and
  /// CallAsync); on send failure returns the error in AsyncCall.
  AsyncCall Issue(const std::string& target, const std::string& method,
                  const Bytes& body, std::int64_t timeout_micros);

  std::string TokenFor(const std::string& target);

  Network* network_;
  std::string endpoint_;
  std::string auth_token_;
  std::map<std::string, std::string> per_target_tokens_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_correlation_ = 1;
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_;
};

/// Encodes/decodes the RPC envelopes (exposed for protocol tests).
Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body);
util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body);
Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body);
util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body);

}  // namespace nees::net
