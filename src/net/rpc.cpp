#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/clock.h"
#include "util/logging.h"

namespace nees::net {

Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body) {
  util::ByteWriter writer;
  writer.WriteString(auth_token);
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(*auth_token, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  return util::OkStatus();
}

Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<std::uint16_t>(status.code()));
  writer.WriteString(status.message());
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(std::uint16_t code, reader.ReadU16());
  NEES_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  *status = util::Status(static_cast<util::ErrorCode>(code), message);
  return util::OkStatus();
}

namespace {

// Parses the length prefix of the trailing body field and, if it spans the
// exact remainder of the frame, moves the body out of `payload` by erasing
// the already-decoded header prefix. The encoders always place the body
// last, so a mismatched length means a corrupt frame.
util::Status TakeTrailingBody(Bytes* payload, util::ByteReader& reader,
                              Bytes* body) {
  NEES_ASSIGN_OR_RETURN(std::uint32_t length, reader.ReadU32());
  if (length != reader.remaining()) {
    return util::DataLoss("envelope body length mismatch");
  }
  payload->erase(payload->begin(),
                 payload->begin() +
                     static_cast<std::ptrdiff_t>(payload->size() - length));
  *body = std::move(*payload);
  return util::OkStatus();
}

}  // namespace

util::Status ConsumeRequestEnvelope(Bytes* payload, std::string* auth_token,
                                    Bytes* body) {
  util::ByteReader reader(*payload);
  NEES_ASSIGN_OR_RETURN(*auth_token, reader.ReadString());
  return TakeTrailingBody(payload, reader, body);
}

util::Status ConsumeResponseEnvelope(Bytes* payload, util::Status* status,
                                     Bytes* body) {
  util::ByteReader reader(*payload);
  NEES_ASSIGN_OR_RETURN(std::uint16_t code, reader.ReadU16());
  NEES_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  *status = util::Status(static_cast<util::ErrorCode>(code), message);
  return TakeTrailingBody(payload, reader, body);
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(Network* network, std::string endpoint)
    : network_(network), endpoint_(std::move(endpoint)) {}

RpcServer::~RpcServer() { Stop(); }

util::Status RpcServer::Start() {
  NEES_RETURN_IF_ERROR(network_->RegisterEndpoint(
      endpoint_, [this](Message message) { HandleMessage(std::move(message)); }));
  started_ = true;
  return util::OkStatus();
}

void RpcServer::Stop() {
  if (started_) {
    network_->UnregisterEndpoint(endpoint_);
    started_ = false;
  }
}

void RpcServer::RegisterMethod(const std::string& name, Method method) {
  util::MutexLock lock(mu_);
  methods_[name] = std::move(method);
}

void RpcServer::RegisterOneWay(const std::string& name, OneWayMethod method) {
  util::MutexLock lock(mu_);
  oneway_methods_[name] = std::move(method);
}

void RpcServer::SetAuthenticator(Authenticator authenticator) {
  util::MutexLock lock(mu_);
  authenticator_ = std::move(authenticator);
}

void RpcServer::HandleMessage(Message message) {
  std::string auth_token;
  Bytes body;
  const util::Status decode_status =
      ConsumeRequestEnvelope(&message.payload, &auth_token, &body);

  CallContext context;
  context.caller_endpoint = message.from;
  context.auth_token = auth_token;
  context.method = message.method;

  if (message.kind == MessageKind::kOneWay) {
    if (!decode_status.ok()) return;  // corrupt one-way frame: drop
    OneWayMethod handler;
    {
      util::MutexLock lock(mu_);
      auto it = oneway_methods_.find(message.method);
      if (it == oneway_methods_.end()) return;
      handler = it->second;
      if (authenticator_) {
        auto subject = authenticator_(auth_token, message.method);
        if (!subject.ok()) return;  // silently discard unauthenticated stream
        context.subject = *subject;
      }
    }
    handler(context, body);
    return;
  }

  if (message.kind != MessageKind::kRequest) return;

  util::Status status = decode_status;
  Bytes response_body;
  if (status.ok()) {
    Method handler;
    Authenticator authenticator;
    {
      util::MutexLock lock(mu_);
      auto it = methods_.find(message.method);
      if (it != methods_.end()) handler = it->second;
      authenticator = authenticator_;
    }
    if (!handler) {
      status = util::Unimplemented("no such method: " + message.method);
    } else {
      bool authorized = true;
      if (authenticator) {
        auto subject = authenticator(auth_token, message.method);
        if (!subject.ok()) {
          status = subject.status();
          authorized = false;
        } else {
          context.subject = *subject;
        }
      }
      if (authorized) {
        auto result = handler(context, body);
        if (result.ok()) {
          response_body = std::move(result).value();
        } else {
          status = result.status();
        }
      }
    }
  }

  Message response;
  response.from = endpoint_;
  response.to = message.from;
  response.kind = MessageKind::kResponse;
  response.correlation_id = message.correlation_id;
  response.method = message.method;
  response.payload = EncodeResponseEnvelope(status, response_body);
  // Best effort: if the reply is lost the caller times out and may retry.
  (void)network_->Send(std::move(response));
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(Network* network, std::string endpoint)
    : network_(network), endpoint_(std::move(endpoint)) {
  const util::Status status = network_->RegisterEndpoint(
      endpoint_, [this](Message message) { HandleMessage(std::move(message)); });
  registered_ = status.ok();
  if (!status.ok()) {
    NEES_LOG_ERROR("net.rpc") << "client endpoint registration failed: "
                              << status.ToString();
  }
}

RpcClient::~RpcClient() { Stop(); }

void RpcClient::Stop() {
  if (!registered_) return;
  registered_ = false;
  network_->UnregisterEndpoint(endpoint_);
}

void RpcClient::SetAuthToken(std::string token) {
  util::MutexLock lock(mu_);
  auth_token_ = std::move(token);
}

void RpcClient::SetAuthTokenFor(const std::string& target,
                                std::string token) {
  util::MutexLock lock(mu_);
  per_target_tokens_[target] = std::move(token);
}

std::string RpcClient::TokenForLocked(const std::string& target) const {
  auto it = per_target_tokens_.find(target);
  return it != per_target_tokens_.end() ? it->second : auth_token_;
}

std::string RpcClient::TokenFor(const std::string& target) {
  util::MutexLock lock(mu_);
  return TokenForLocked(target);
}

void RpcClient::HandleMessage(Message message) {
  if (message.kind != MessageKind::kResponse) return;
  util::Status status;
  Bytes body;
  const util::Status decoded =
      ConsumeResponseEnvelope(&message.payload, &status, &body);
  std::shared_ptr<PendingCall> call;
  std::shared_ptr<CallBatch> batch;
  {
    util::MutexLock lock(mu_);
    auto it = pending_.find(message.correlation_id);
    if (it == pending_.end()) return;  // late/duplicate response: ignore
    call = it->second;
    call->status = decoded.ok() ? status : decoded;
    call->response = std::move(body);
    call->done = true;
    batch = call->batch;
  }
  // Per-call signaling: wake only this call's waiter (and its batch, if it
  // is part of a WaitAll/WaitAnyUntil group) — no client-wide herd.
  call->cv.NotifyAll();
  if (batch) batch->cv.NotifyAll();
}

RpcClient::AsyncCall RpcClient::Issue(const std::string& target,
                                      const std::string& method,
                                      const Bytes& body,
                                      std::int64_t timeout_micros) {
  AsyncCall async;
  async.client_ = this;
  async.state_ = std::make_shared<PendingCall>();
  // Deadline on the network's injected clock, not the wall clock, so
  // SimClock-driven tests time out in simulated time.
  async.deadline_micros_ = network_->clock()->NowMicros() + timeout_micros;
  std::string token;
  {
    util::MutexLock lock(mu_);
    async.correlation_ = next_correlation_++;
    pending_[async.correlation_] = async.state_;
    token = TokenForLocked(target);
  }

  Message request;
  request.from = endpoint_;
  request.to = target;
  request.kind = MessageKind::kRequest;
  request.correlation_id = async.correlation_;
  request.method = method;
  request.payload = EncodeRequestEnvelope(token, body);

  const util::Status send_status = network_->Send(std::move(request));
  if (!send_status.ok()) {
    util::MutexLock lock(mu_);
    pending_.erase(async.correlation_);
    // Destination endpoint missing: surface as transient (site may return).
    async.send_error_ = util::Unavailable("send to " + target + " failed: " +
                                          send_status.message());
  }
  async.label_ = "rpc " + method + " to " + target;
  return async;
}

util::Result<Bytes> RpcClient::AsyncCall::Wait() {
  if (client_ == nullptr) {
    return util::Internal("Wait() on an empty AsyncCall");
  }
  RpcClient* client = client_;
  client_ = nullptr;  // Wait at most once
  if (!send_error_.ok()) return send_error_;
  // A blocking wait while any lock is held risks a distributed stall: the
  // response handler may need that very lock. Lockdep flags it. Immediate
  // mode never blocks (responses resolved inline during Send), so only the
  // modes that actually park or pump are checked.
  if (client->network_->mode() != DeliveryMode::kImmediate) {
    util::lockdep::CheckBlockingCall("RpcClient::AsyncCall::Wait");
  }

  if (client->network_->mode() == DeliveryMode::kVirtual) {
    // Virtual mode: drive the event loop from this thread instead of
    // parking on the call's condition variable. Response handlers run
    // inline inside PumpOneUntil and take client->mu_, so the lock is
    // released around each pump.
    for (;;) {
      {
        util::MutexLock lock(client->mu_);
        if (state_->done) break;
      }
      if (client->network_->clock()->NowMicros() >= deadline_micros_) break;
      client->network_->PumpOneUntil(deadline_micros_);
    }
  }

  util::Status status;
  Bytes response;
  {
    util::MutexLock lock(client->mu_);
    if (client->network_->mode() == DeliveryMode::kScheduled) {
      while (!state_->done) {
        const std::int64_t now = client->network_->clock()->NowMicros();
        if (now >= deadline_micros_) break;
        state_->cv.WaitFor(client->mu_, deadline_micros_ - now);
      }
    }
    // Immediate mode: the response (if any) was delivered inline during
    // Send; if state->done is false the message was dropped en route.
    client->pending_.erase(correlation_);
    if (!state_->done) {
      return util::TimeoutError(label_ + " timed out");
    }
    status = std::move(state_->status);
    response = std::move(state_->response);
  }
  if (!status.ok()) return status;
  return response;
}

bool RpcClient::AsyncCall::TryResolve(util::Result<Bytes>* out) {
  if (client_ == nullptr) {
    *out = util::Internal("TryResolve() on an empty AsyncCall");
    return true;
  }
  if (!send_error_.ok()) {
    *out = send_error_;
    client_ = nullptr;
    return true;
  }
  RpcClient* client = client_;
  util::MutexLock lock(client->mu_);
  if (state_->done) {
    client->pending_.erase(correlation_);
    client_ = nullptr;
    if (!state_->status.ok()) {
      *out = std::move(state_->status);
    } else {
      *out = std::move(state_->response);
    }
    return true;
  }
  // Immediate mode resolves unanswered calls at once (see header); in
  // scheduled mode the call times out when the clock passes the deadline.
  if (client->network_->mode() == DeliveryMode::kImmediate ||
      client->network_->clock()->NowMicros() >= deadline_micros_) {
    client->pending_.erase(correlation_);
    client_ = nullptr;
    *out = util::TimeoutError(label_ + " timed out");
    return true;
  }
  return false;
}

void RpcClient::WaitAll(const std::vector<AsyncCall*>& calls) {
  WaitAnyUntil(calls, std::numeric_limits<std::int64_t>::max(),
               /*wait_for_all=*/true);
}

void RpcClient::WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                             std::int64_t wake_micros) {
  WaitAnyUntil(calls, wake_micros, /*wait_for_all=*/false);
}

void RpcClient::WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                             std::int64_t wake_micros, bool wait_for_all) {
  if (network_->mode() == DeliveryMode::kVirtual) {
    util::lockdep::CheckBlockingCall("RpcClient::WaitAnyUntil");
    WaitAnyUntilVirtual(calls, wake_micros, wait_for_all);
    return;
  }
  if (network_->mode() != DeliveryMode::kScheduled) return;
  util::lockdep::CheckBlockingCall("RpcClient::WaitAnyUntil");
  auto batch = std::make_shared<CallBatch>();
  util::MutexLock lock(mu_);
  // Snapshot the calls that are unresolved right now; the wait ends when
  // one of *these* completes (an already-resolved call would otherwise
  // satisfy the predicate forever) or when its deadline lapses.
  struct Watched {
    std::shared_ptr<PendingCall> state;
    std::int64_t deadline_micros;
  };
  std::vector<Watched> watched;
  for (AsyncCall* call : calls) {
    if (call->client_ == nullptr || !call->send_error_.ok()) {
      if (!wait_for_all) return;  // resolved: caller should harvest first
      continue;
    }
    if (call->state_->done) {
      if (!wait_for_all) return;
      continue;
    }
    watched.push_back({call->state_, call->deadline_micros_});
    call->state_->batch = batch;
  }
  while (!watched.empty()) {
    const std::int64_t now = network_->clock()->NowMicros();
    std::int64_t wake = wait_for_all
                            ? std::numeric_limits<std::int64_t>::max()
                            : wake_micros;
    bool any_live = false;
    bool any_done = false;
    for (const Watched& entry : watched) {
      if (entry.state->done) {
        any_done = true;
        continue;
      }
      if (entry.deadline_micros <= now) continue;  // lapsed: counts resolved
      any_live = true;
      wake = std::min(wake, entry.deadline_micros);
    }
    if (!any_live) break;                   // everything resolved or lapsed
    if (any_done && !wait_for_all) break;   // WaitAny: one completion is enough
    if (now >= wake) break;
    batch->cv.WaitFor(mu_, wake - now);
  }
  for (Watched& entry : watched) entry.state->batch.reset();
}

void RpcClient::WaitAnyUntilVirtual(const std::vector<AsyncCall*>& calls,
                                    std::int64_t wake_micros,
                                    bool wait_for_all) {
  for (;;) {
    std::int64_t wake = wait_for_all
                            ? std::numeric_limits<std::int64_t>::max()
                            : wake_micros;
    bool any_live = false;
    bool any_resolved = false;
    const std::int64_t now = network_->clock()->NowMicros();
    {
      util::MutexLock lock(mu_);
      for (AsyncCall* call : calls) {
        if (call->client_ == nullptr || !call->send_error_.ok() ||
            call->state_->done || call->deadline_micros_ <= now) {
          // Harvestable via TryResolve right now (resolved or lapsed).
          any_resolved = true;
          continue;
        }
        any_live = true;
        wake = std::min(wake, call->deadline_micros_);
      }
    }
    if (!any_live) return;
    if (any_resolved && !wait_for_all) return;
    if (now >= wake) return;
    // Deliver exactly one event (or advance the clock to `wake`), then
    // re-evaluate; completions, timeouts, and the caller's wake time are
    // thereby multiplexed in one deterministic order.
    network_->PumpOneUntil(wake);
  }
}

RpcClient::AsyncCall RpcClient::CallAsync(const std::string& target,
                                          const std::string& method,
                                          const Bytes& body,
                                          std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros);
}

util::Result<Bytes> RpcClient::Call(const std::string& target,
                                    const std::string& method,
                                    const Bytes& body,
                                    std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros).Wait();
}

util::Status RpcClient::OneWay(const std::string& target,
                               const std::string& method, const Bytes& body) {
  const std::string token = TokenFor(target);
  Message message;
  message.from = endpoint_;
  message.to = target;
  message.kind = MessageKind::kOneWay;
  message.method = method;
  message.payload = EncodeRequestEnvelope(token, body);
  return network_->Send(std::move(message));
}

}  // namespace nees::net
