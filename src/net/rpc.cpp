#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "util/clock.h"
#include "util/frame_pool.h"
#include "util/logging.h"

namespace nees::net {

namespace {

MethodId BatchMethodId() {
  static const MethodId id{kBatchMethodName};
  return id;
}

}  // namespace

Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body) {
  util::ByteWriter writer(util::AcquireFrame(8 + auth_token.size() +
                                             body.size()));
  writer.WriteString(auth_token);
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(*auth_token, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  return util::OkStatus();
}

Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body) {
  util::ByteWriter writer(util::AcquireFrame(10 + status.message().size() +
                                             body.size()));
  writer.WriteU16(static_cast<std::uint16_t>(status.code()));
  writer.WriteString(status.message());
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(std::uint16_t code, reader.ReadU16());
  NEES_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  *status = util::Status(static_cast<util::ErrorCode>(code), message);
  return util::OkStatus();
}

namespace {

// Parses the length prefix of the trailing body field and, if it spans the
// exact remainder of the frame, moves the body out of `payload` by erasing
// the already-decoded header prefix. The encoders always place the body
// last, so a mismatched length means a corrupt frame.
util::Status TakeTrailingBody(Bytes* payload, util::ByteReader& reader,
                              Bytes* body) {
  NEES_ASSIGN_OR_RETURN(std::uint32_t length, reader.ReadU32());
  if (length != reader.remaining()) {
    return util::DataLoss("envelope body length mismatch");
  }
  payload->erase(payload->begin(),
                 payload->begin() +
                     static_cast<std::ptrdiff_t>(payload->size() - length));
  *body = std::move(*payload);
  return util::OkStatus();
}

}  // namespace

util::Status ConsumeRequestEnvelope(Bytes* payload, std::string* auth_token,
                                    Bytes* body) {
  util::ByteReader reader(*payload);
  NEES_ASSIGN_OR_RETURN(*auth_token, reader.ReadString());
  return TakeTrailingBody(payload, reader, body);
}

util::Status ConsumeResponseEnvelope(Bytes* payload, util::Status* status,
                                     Bytes* body) {
  util::ByteReader reader(*payload);
  NEES_ASSIGN_OR_RETURN(std::uint16_t code, reader.ReadU16());
  NEES_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  *status = util::Status(static_cast<util::ErrorCode>(code), message);
  return TakeTrailingBody(payload, reader, body);
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(Network* network, std::string endpoint)
    : network_(network),
      endpoint_(std::move(endpoint)),
      endpoint_id_(endpoint_) {}

RpcServer::~RpcServer() { Stop(); }

util::Status RpcServer::Start() {
  NEES_RETURN_IF_ERROR(network_->RegisterEndpoint(
      endpoint_id_,
      [this](Message message) { HandleMessage(std::move(message)); }));
  started_ = true;
  return util::OkStatus();
}

void RpcServer::Stop() {
  if (started_) {
    network_->UnregisterEndpoint(endpoint_id_);
    started_ = false;
  }
}

RpcServer::MethodEntry& RpcServer::EntryLocked(MethodId id) {
  std::uint32_t& index = method_index_[id.raw()];
  if (index == 0) {
    method_entries_.emplace_back();
    index = static_cast<std::uint32_t>(method_entries_.size());
  }
  return method_entries_[index - 1];
}

void RpcServer::RegisterMethod(MethodId name, Method method) {
  util::MutexLock lock(mu_);
  EntryLocked(name).request = std::move(method);
}

void RpcServer::RegisterOneWay(MethodId name, OneWayMethod method) {
  util::MutexLock lock(mu_);
  EntryLocked(name).oneway = std::move(method);
}

void RpcServer::SetAuthenticator(Authenticator authenticator) {
  util::MutexLock lock(mu_);
  authenticator_ = std::move(authenticator);
}

util::Result<Bytes> RpcServer::DispatchCall(CallContext& context,
                                            MethodId method,
                                            const Bytes& body) {
  Method handler;
  Authenticator authenticator;
  {
    util::MutexLock lock(mu_);
    if (const std::uint32_t* index = method_index_.Find(method.raw())) {
      handler = method_entries_[*index - 1].request;
    }
    authenticator = authenticator_;
  }
  if (!handler) {
    return util::Unimplemented("no such method: " + method.str());
  }
  if (authenticator) {
    auto subject = authenticator(context.auth_token, method.str());
    if (!subject.ok()) return subject.status();
    context.subject = *std::move(subject);
  }
  return handler(context, body);
}

void RpcServer::HandleMessage(Message message) {
  if (message.kind == MessageKind::kRequest &&
      message.method == BatchMethodId()) {
    HandleBatch(std::move(message));
    return;
  }

  std::string auth_token;
  Bytes body;
  const util::Status decode_status =
      ConsumeRequestEnvelope(&message.payload, &auth_token, &body);

  CallContext context;
  context.caller_endpoint = message.from.name();
  context.auth_token = std::move(auth_token);
  context.method = message.method.name();

  if (message.kind == MessageKind::kOneWay) {
    if (!decode_status.ok()) return;  // corrupt one-way frame: drop
    OneWayMethod handler;
    {
      util::MutexLock lock(mu_);
      const std::uint32_t* index = method_index_.Find(message.method.raw());
      if (index == nullptr) return;
      handler = method_entries_[*index - 1].oneway;
      if (!handler) return;
      if (authenticator_) {
        auto subject = authenticator_(context.auth_token, message.method.str());
        if (!subject.ok()) return;  // silently discard unauthenticated stream
        context.subject = *std::move(subject);
      }
    }
    handler(context, body);
    util::ReleaseFrame(std::move(body));
    return;
  }

  if (message.kind != MessageKind::kRequest) return;

  util::Status status = decode_status;
  Bytes response_body;
  if (status.ok()) {
    auto result = DispatchCall(context, message.method, body);
    if (result.ok()) {
      response_body = *std::move(result);
    } else {
      status = result.status();
    }
  }
  util::ReleaseFrame(std::move(body));

  Message response;
  response.from = endpoint_id_;
  response.to = message.from;
  response.kind = MessageKind::kResponse;
  response.correlation_id = message.correlation_id;
  response.method = message.method;
  util::ByteWriter writer(util::AcquireFrame(
      10 + status.message().size() + response_body.size()));
  writer.WriteU16(static_cast<std::uint16_t>(status.code()));
  writer.WriteString(status.message());
  writer.WriteBytes(response_body);
  response.payload = writer.Take();
  util::ReleaseFrame(std::move(response_body));
  // Best effort: if the reply is lost the caller times out and may retry.
  (void)network_->Send(std::move(response));
}

void RpcServer::HandleBatch(Message message) {
  std::string auth_token;
  Bytes body;
  if (!ConsumeRequestEnvelope(&message.payload, &auth_token, &body).ok()) {
    return;  // corrupt batch frame: lost, callers time out (like loss)
  }

  CallContext context;
  context.caller_endpoint = message.from.name();
  context.auth_token = std::move(auth_token);

  // Sub-frames: u64 correlation | u32 method | bytes body, `count` times.
  // Each sub-call runs the normal dispatch path (method table, auth hook,
  // handler) so server-side semantics — at-most-once state machines, trace
  // events per transaction — are identical to unbatched delivery.
  util::ByteReader reader(body);
  auto count = reader.ReadU32();
  if (!count.ok()) {
    util::ReleaseFrame(std::move(body));
    return;
  }
  util::ByteWriter response_writer(util::AcquireFrame(body.size()));
  response_writer.WriteU32(*count);
  Bytes sub_body = util::AcquireFrame();
  bool corrupt = false;
  for (std::uint32_t i = 0; i < *count && !corrupt; ++i) {
    auto correlation = reader.ReadU64();
    auto method_raw = reader.ReadU32();
    auto view = reader.ReadBytesView();
    if (!correlation.ok() || !method_raw.ok() || !view.ok()) {
      corrupt = true;  // truncated mid-batch: drop the whole frame
      break;
    }
    const MethodId method = MethodId::FromRaw(*method_raw);
    sub_body.assign(view->begin(), view->end());
    context.method = method.name();
    context.subject.clear();
    util::Status status;
    Bytes result_body;
    if (!EndpointTable::Instance().Known(*method_raw)) {
      status = util::DataLoss("batch sub-call: unknown method id " +
                              std::to_string(*method_raw));
    } else {
      auto result = DispatchCall(context, method, sub_body);
      if (result.ok()) {
        result_body = *std::move(result);
      } else {
        status = result.status();
      }
    }
    response_writer.WriteU64(*correlation);
    response_writer.WriteU16(static_cast<std::uint16_t>(status.code()));
    response_writer.WriteString(status.message());
    response_writer.WriteBytes(result_body);
    util::ReleaseFrame(std::move(result_body));
  }
  util::ReleaseFrame(std::move(sub_body));
  util::ReleaseFrame(std::move(body));
  if (corrupt) return;

  Message response;
  response.from = endpoint_id_;
  response.to = message.from;
  response.kind = MessageKind::kResponse;
  response.correlation_id = message.correlation_id;
  response.method = BatchMethodId();
  Bytes response_body = response_writer.Take();
  util::ByteWriter envelope(util::AcquireFrame(10 + response_body.size()));
  envelope.WriteU16(static_cast<std::uint16_t>(util::ErrorCode::kOk));
  envelope.WriteString("");
  envelope.WriteBytes(response_body);
  response.payload = envelope.Take();
  util::ReleaseFrame(std::move(response_body));
  (void)network_->Send(std::move(response));
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(Network* network, std::string endpoint)
    : network_(network),
      endpoint_(std::move(endpoint)),
      endpoint_id_(endpoint_) {
  const util::Status status = network_->RegisterEndpoint(
      endpoint_id_,
      [this](Message message) { HandleMessage(std::move(message)); });
  registered_ = status.ok();
  if (!status.ok()) {
    NEES_LOG_ERROR("net.rpc") << "client endpoint registration failed: "
                              << status.ToString();
  }
}

RpcClient::~RpcClient() { Stop(); }

void RpcClient::Stop() {
  if (!registered_) return;
  registered_ = false;
  network_->UnregisterEndpoint(endpoint_id_);
}

void RpcClient::SetAuthToken(std::string token) {
  util::MutexLock lock(mu_);
  auth_token_ = std::move(token);
}

void RpcClient::SetAuthTokenFor(EndpointId target, std::string token) {
  util::MutexLock lock(mu_);
  per_target_tokens_[target.raw()] = std::move(token);
}

const std::string& RpcClient::TokenRefLocked(EndpointId target) const {
  const std::string* token = per_target_tokens_.Find(target.raw());
  return token != nullptr ? *token : auth_token_;
}

std::string RpcClient::TokenForLocked(EndpointId target) const {
  return TokenRefLocked(target);
}

std::string RpcClient::TokenFor(EndpointId target) {
  util::MutexLock lock(mu_);
  return TokenForLocked(target);
}

void RpcClient::HandleMessage(Message message) {
  if (message.kind != MessageKind::kResponse) return;
  if (message.method == BatchMethodId()) {
    HandleBatchResponse(std::move(message));
    return;
  }
  util::Status status;
  Bytes body;
  const util::Status decoded =
      ConsumeResponseEnvelope(&message.payload, &status, &body);
  std::shared_ptr<PendingCall> call;
  std::shared_ptr<CallBatch> batch;
  {
    util::MutexLock lock(mu_);
    auto* slot = pending_.Find(message.correlation_id);
    if (slot == nullptr) return;  // late/duplicate response: ignore
    call = *slot;
    call->status = decoded.ok() ? status : decoded;
    call->response = std::move(body);
    call->done = true;
    batch = call->batch;
  }
  // Per-call signaling: wake only this call's waiter (and its batch, if it
  // is part of a WaitAll/WaitAnyUntil group) — no client-wide herd.
  call->cv.NotifyAll();
  if (batch) batch->cv.NotifyAll();
}

void RpcClient::HandleBatchResponse(Message message) {
  util::Status outer;
  Bytes body;
  if (!ConsumeResponseEnvelope(&message.payload, &outer, &body).ok() ||
      !outer.ok()) {
    return;  // corrupt/failed batch frame: callers time out (like loss)
  }
  util::ByteReader reader(body);
  auto count = reader.ReadU32();
  if (!count.ok()) {
    util::ReleaseFrame(std::move(body));
    return;
  }
  struct Woken {
    std::shared_ptr<PendingCall> call;
    std::shared_ptr<CallBatch> batch;
  };
  std::vector<Woken> woken;
  woken.reserve(*count);
  {
    util::MutexLock lock(mu_);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto correlation = reader.ReadU64();
      auto code = reader.ReadU16();
      auto text = reader.ReadString();
      auto view = reader.ReadBytesView();
      if (!correlation.ok() || !code.ok() || !text.ok() || !view.ok()) {
        break;  // truncated tail: the already-demuxed calls stand
      }
      auto* slot = pending_.Find(*correlation);
      if (slot == nullptr) continue;  // late/duplicate sub-response
      std::shared_ptr<PendingCall>& call = *slot;
      call->status = util::Status(static_cast<util::ErrorCode>(*code),
                                  *std::move(text));
      call->response = util::AcquireFrame(view->size());
      call->response.assign(view->begin(), view->end());
      call->done = true;
      woken.push_back({call, call->batch});
    }
  }
  util::ReleaseFrame(std::move(body));
  for (Woken& entry : woken) {
    entry.call->cv.NotifyAll();
    if (entry.batch) entry.batch->cv.NotifyAll();
  }
}

std::string RpcClient::AsyncCall::TimeoutMessage() const {
  return "rpc " + method_.str() + " to " + target_.str() + " timed out";
}

std::shared_ptr<PendingCall> RpcClient::AcquireCallLocked() {
  if (call_pool_.empty()) return std::make_shared<PendingCall>();
  std::shared_ptr<PendingCall> call = std::move(call_pool_.back());
  call_pool_.pop_back();
  return call;
}

void RpcClient::RecycleCallLocked(std::shared_ptr<PendingCall> call) {
  if (call == nullptr || call.use_count() != 1) return;
  constexpr std::size_t kMaxPooledCalls = 1024;
  if (call_pool_.size() >= kMaxPooledCalls) return;
  call->done = false;
  call->sent = true;
  call->status = util::OkStatus();
  util::ReleaseFrame(std::move(call->response));
  call->response.clear();
  call->batch.reset();
  call_pool_.push_back(std::move(call));
}

RpcClient::AsyncCall RpcClient::Issue(EndpointId target, MethodId method,
                                      const Bytes& body,
                                      std::int64_t timeout_micros) {
  AsyncCall async;
  async.client_ = this;
  async.target_ = target;
  async.method_ = method;
  // Deadline on the network's injected clock, not the wall clock, so
  // SimClock-driven tests time out in simulated time.
  async.deadline_micros_ = network_->clock()->NowMicros() + timeout_micros;
  std::string token;
  {
    util::MutexLock lock(mu_);
    async.state_ = AcquireCallLocked();
    async.correlation_ = next_correlation_++;
    pending_[async.correlation_] = async.state_;
    const std::string& live_token = TokenRefLocked(target);
    if (batching_) {
      // Stage instead of send: the pooled body copy travels in the batch
      // frame at FlushBatch time. sent=false keeps TryResolve from
      // treating the unsent call as an immediate-mode timeout.
      async.state_->sent = false;
      StagedTarget* group = nullptr;
      for (StagedTarget& candidate : staging_) {
        if (candidate.target == target) {
          group = &candidate;
          break;
        }
      }
      if (group == nullptr) {
        if (!staging_pool_.empty()) {
          // Reuse a parked shell: its calls vector and token string keep
          // their capacity from the previous window.
          staging_.push_back(std::move(staging_pool_.back()));
          staging_pool_.pop_back();
          group = &staging_.back();
          group->target = target;
          group->token.assign(live_token);
        } else {
          staging_.push_back(StagedTarget{target, live_token, {}});
          group = &staging_.back();
        }
      }
      Bytes staged_body = util::AcquireFrame(body.size());
      staged_body.assign(body.begin(), body.end());
      group->calls.push_back(StagedCall{async.correlation_, method,
                                        std::move(staged_body), async.state_});
      return async;
    }
    token = live_token;  // copied out: still needed after the lock drops
  }

  Message request;
  request.from = endpoint_id_;
  request.to = target;
  request.kind = MessageKind::kRequest;
  request.correlation_id = async.correlation_;
  request.method = method;
  util::ByteWriter writer(
      util::AcquireFrame(8 + token.size() + body.size()));
  writer.WriteString(token);
  writer.WriteBytes(body);
  request.payload = writer.Take();

  const util::Status send_status = network_->Send(std::move(request));
  if (!send_status.ok()) {
    util::MutexLock lock(mu_);
    pending_.Erase(async.correlation_);
    // Destination endpoint missing: surface as transient (site may return).
    async.send_error_ = util::Unavailable("send to " + target.str() +
                                          " failed: " + send_status.message());
  }
  return async;
}

void RpcClient::BeginBatch() {
  util::MutexLock lock(mu_);
  batching_ = true;
}

void RpcClient::FlushBatch() {
  std::vector<StagedTarget> staged;
  {
    util::MutexLock lock(mu_);
    batching_ = false;
    if (staging_.empty()) return;
    staged = std::move(staging_);
    staging_.clear();
  }
  for (StagedTarget& group : staged) {
    util::Status send_status;
    Message request;
    request.from = endpoint_id_;
    request.to = group.target;
    request.kind = MessageKind::kRequest;
    if (group.calls.size() == 1) {
      // A lone call needs no envelope-within-envelope: it goes out as a
      // plain request, bit-identical to the unbatched wire format.
      StagedCall& call = group.calls.front();
      request.correlation_id = call.correlation;
      request.method = call.method;
      util::ByteWriter writer(
          util::AcquireFrame(8 + group.token.size() + call.body.size()));
      writer.WriteString(group.token);
      writer.WriteBytes(call.body);
      request.payload = writer.Take();
      util::ReleaseFrame(std::move(call.body));
    } else {
      request.method = BatchMethodId();
      {
        util::MutexLock lock(mu_);
        request.correlation_id = next_correlation_++;
      }
      util::ByteWriter body_writer(util::AcquireFrame());
      body_writer.WriteU32(static_cast<std::uint32_t>(group.calls.size()));
      for (StagedCall& call : group.calls) {
        body_writer.WriteU64(call.correlation);
        body_writer.WriteU32(call.method.raw());
        body_writer.WriteBytes(call.body);
        util::ReleaseFrame(std::move(call.body));
      }
      Bytes batch_body = body_writer.Take();
      util::ByteWriter envelope(
          util::AcquireFrame(8 + group.token.size() + batch_body.size()));
      envelope.WriteString(group.token);
      envelope.WriteBytes(batch_body);
      util::ReleaseFrame(std::move(batch_body));
      request.payload = envelope.Take();
    }
    send_status = network_->Send(std::move(request));

    std::vector<std::shared_ptr<PendingCall>> failed;
    {
      util::MutexLock lock(mu_);
      for (StagedCall& call : group.calls) {
        if (!send_status.ok() && !call.state->done) {
          call.state->status = util::Unavailable(
              "send to " + group.target.str() + " failed: " +
              send_status.message());
          call.state->done = true;
          failed.push_back(call.state);
        }
        call.state->sent = true;
      }
    }
    for (std::shared_ptr<PendingCall>& state : failed) {
      state->cv.NotifyAll();
      if (state->batch) state->batch->cv.NotifyAll();
    }
  }
  // Park the emptied shells (and the staging vector's own buffer) so the
  // next batch window stages without reallocating.
  {
    util::MutexLock lock(mu_);
    for (StagedTarget& group : staged) {
      group.calls.clear();
      staging_pool_.push_back(std::move(group));
    }
    staged.clear();
    if (staging_.empty()) staging_ = std::move(staged);
  }
}

util::Result<Bytes> RpcClient::AsyncCall::Wait() {
  if (client_ == nullptr) {
    return util::Internal("Wait() on an empty AsyncCall");
  }
  RpcClient* client = client_;
  client_ = nullptr;  // Wait at most once
  if (!send_error_.ok()) return send_error_;
  {
    bool staged;
    {
      util::MutexLock lock(client->mu_);
      staged = !state_->sent;
    }
    if (staged) client->FlushBatch();
  }
  // A blocking wait while any lock is held risks a distributed stall: the
  // response handler may need that very lock. Lockdep flags it. Immediate
  // mode never blocks (responses resolved inline during Send), so only the
  // modes that actually park or pump are checked.
  if (client->network_->mode() != DeliveryMode::kImmediate) {
    util::lockdep::CheckBlockingCall("RpcClient::AsyncCall::Wait");
  }

  if (client->network_->mode() == DeliveryMode::kVirtual) {
    // Virtual mode: drive the event loop from this thread instead of
    // parking on the call's condition variable. Response handlers run
    // inline inside PumpOneUntil and take client->mu_, so the lock is
    // released around each pump.
    for (;;) {
      {
        util::MutexLock lock(client->mu_);
        if (state_->done) break;
      }
      if (client->network_->clock()->NowMicros() >= deadline_micros_) break;
      client->network_->PumpOneUntil(deadline_micros_);
    }
  }

  util::Status status;
  Bytes response;
  {
    util::MutexLock lock(client->mu_);
    if (client->network_->mode() == DeliveryMode::kScheduled) {
      while (!state_->done) {
        const std::int64_t now = client->network_->clock()->NowMicros();
        if (now >= deadline_micros_) break;
        state_->cv.WaitFor(client->mu_, deadline_micros_ - now);
      }
    }
    // Immediate mode: the response (if any) was delivered inline during
    // Send; if state->done is false the message was dropped en route.
    client->pending_.Erase(correlation_);
    if (!state_->done) {
      client->RecycleCallLocked(std::move(state_));
      return util::TimeoutError(TimeoutMessage());
    }
    status = std::move(state_->status);
    response = std::move(state_->response);
    client->RecycleCallLocked(std::move(state_));
  }
  if (!status.ok()) return status;
  return response;
}

bool RpcClient::AsyncCall::TryResolve(util::Result<Bytes>* out) {
  if (client_ == nullptr) {
    *out = util::Internal("TryResolve() on an empty AsyncCall");
    return true;
  }
  if (!send_error_.ok()) {
    *out = send_error_;
    client_ = nullptr;
    return true;
  }
  RpcClient* client = client_;
  util::MutexLock lock(client->mu_);
  if (state_->done) {
    client->pending_.Erase(correlation_);
    client_ = nullptr;
    if (!state_->status.ok()) {
      *out = std::move(state_->status);
    } else {
      *out = std::move(state_->response);
    }
    client->RecycleCallLocked(std::move(state_));
    return true;
  }
  // Still staged in an open batch window: not on the wire yet, so neither
  // answered nor lost. The flush (or a Wait) moves it along.
  if (!state_->sent) return false;
  // Immediate mode resolves unanswered calls at once (see header); in
  // scheduled mode the call times out when the clock passes the deadline.
  if (client->network_->mode() == DeliveryMode::kImmediate ||
      client->network_->clock()->NowMicros() >= deadline_micros_) {
    client->pending_.Erase(correlation_);
    client_ = nullptr;
    *out = util::TimeoutError(TimeoutMessage());
    client->RecycleCallLocked(std::move(state_));
    return true;
  }
  return false;
}

void RpcClient::WaitAll(const std::vector<AsyncCall*>& calls) {
  WaitAnyUntil(calls, std::numeric_limits<std::int64_t>::max(),
               /*wait_for_all=*/true);
}

void RpcClient::WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                             std::int64_t wake_micros) {
  WaitAnyUntil(calls, wake_micros, /*wait_for_all=*/false);
}

void RpcClient::WaitAnyUntil(const std::vector<AsyncCall*>& calls,
                             std::int64_t wake_micros, bool wait_for_all) {
  // Anything still staged must hit the wire before a wait makes sense.
  FlushBatch();
  if (network_->mode() == DeliveryMode::kVirtual) {
    util::lockdep::CheckBlockingCall("RpcClient::WaitAnyUntil");
    WaitAnyUntilVirtual(calls, wake_micros, wait_for_all);
    return;
  }
  if (network_->mode() != DeliveryMode::kScheduled) return;
  util::lockdep::CheckBlockingCall("RpcClient::WaitAnyUntil");
  auto batch = std::make_shared<CallBatch>();
  util::MutexLock lock(mu_);
  // Snapshot the calls that are unresolved right now; the wait ends when
  // one of *these* completes (an already-resolved call would otherwise
  // satisfy the predicate forever) or when its deadline lapses.
  struct Watched {
    std::shared_ptr<PendingCall> state;
    std::int64_t deadline_micros;
  };
  std::vector<Watched> watched;
  for (AsyncCall* call : calls) {
    if (call->client_ == nullptr || !call->send_error_.ok()) {
      if (!wait_for_all) return;  // resolved: caller should harvest first
      continue;
    }
    if (call->state_->done) {
      if (!wait_for_all) return;
      continue;
    }
    watched.push_back({call->state_, call->deadline_micros_});
    call->state_->batch = batch;
  }
  while (!watched.empty()) {
    const std::int64_t now = network_->clock()->NowMicros();
    std::int64_t wake = wait_for_all
                            ? std::numeric_limits<std::int64_t>::max()
                            : wake_micros;
    bool any_live = false;
    bool any_done = false;
    for (const Watched& entry : watched) {
      if (entry.state->done) {
        any_done = true;
        continue;
      }
      if (entry.deadline_micros <= now) continue;  // lapsed: counts resolved
      any_live = true;
      wake = std::min(wake, entry.deadline_micros);
    }
    if (!any_live) break;                   // everything resolved or lapsed
    if (any_done && !wait_for_all) break;   // WaitAny: one completion is enough
    if (now >= wake) break;
    batch->cv.WaitFor(mu_, wake - now);
  }
  for (Watched& entry : watched) entry.state->batch.reset();
}

void RpcClient::WaitAnyUntilVirtual(const std::vector<AsyncCall*>& calls,
                                    std::int64_t wake_micros,
                                    bool wait_for_all) {
  for (;;) {
    std::int64_t wake = wait_for_all
                            ? std::numeric_limits<std::int64_t>::max()
                            : wake_micros;
    bool any_live = false;
    bool any_resolved = false;
    const std::int64_t now = network_->clock()->NowMicros();
    {
      util::MutexLock lock(mu_);
      for (AsyncCall* call : calls) {
        if (call->client_ == nullptr || !call->send_error_.ok() ||
            call->state_->done || call->deadline_micros_ <= now) {
          // Harvestable via TryResolve right now (resolved or lapsed).
          any_resolved = true;
          continue;
        }
        any_live = true;
        wake = std::min(wake, call->deadline_micros_);
      }
    }
    if (!any_live) return;
    if (any_resolved && !wait_for_all) return;
    if (now >= wake) return;
    // Deliver exactly one event (or advance the clock to `wake`), then
    // re-evaluate; completions, timeouts, and the caller's wake time are
    // thereby multiplexed in one deterministic order.
    network_->PumpOneUntil(wake);
  }
}

RpcClient::AsyncCall RpcClient::CallAsync(EndpointId target, MethodId method,
                                          const Bytes& body,
                                          std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros);
}

util::Result<Bytes> RpcClient::Call(EndpointId target, MethodId method,
                                    const Bytes& body,
                                    std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros).Wait();
}

util::Status RpcClient::OneWay(EndpointId target, MethodId method,
                               const Bytes& body) {
  const std::string token = TokenFor(target);
  Message message;
  message.from = endpoint_id_;
  message.to = target;
  message.kind = MessageKind::kOneWay;
  message.method = method;
  util::ByteWriter writer(util::AcquireFrame(8 + token.size() + body.size()));
  writer.WriteString(token);
  writer.WriteBytes(body);
  message.payload = writer.Take();
  return network_->Send(std::move(message));
}

}  // namespace nees::net
