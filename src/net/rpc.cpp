#include "net/rpc.h"

#include <chrono>

#include "util/logging.h"

namespace nees::net {

Bytes EncodeRequestEnvelope(const std::string& auth_token, const Bytes& body) {
  util::ByteWriter writer;
  writer.WriteString(auth_token);
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeRequestEnvelope(const Bytes& payload,
                                   std::string* auth_token, Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(*auth_token, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  return util::OkStatus();
}

Bytes EncodeResponseEnvelope(const util::Status& status, const Bytes& body) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<std::uint16_t>(status.code()));
  writer.WriteString(status.message());
  writer.WriteBytes(body);
  return writer.Take();
}

util::Status DecodeResponseEnvelope(const Bytes& payload, util::Status* status,
                                    Bytes* body) {
  util::ByteReader reader(payload);
  NEES_ASSIGN_OR_RETURN(std::uint16_t code, reader.ReadU16());
  NEES_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(*body, reader.ReadBytes());
  *status = util::Status(static_cast<util::ErrorCode>(code), message);
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(Network* network, std::string endpoint)
    : network_(network), endpoint_(std::move(endpoint)) {}

RpcServer::~RpcServer() { Stop(); }

util::Status RpcServer::Start() {
  NEES_RETURN_IF_ERROR(network_->RegisterEndpoint(
      endpoint_, [this](const Message& message) { HandleMessage(message); }));
  started_ = true;
  return util::OkStatus();
}

void RpcServer::Stop() {
  if (started_) {
    network_->UnregisterEndpoint(endpoint_);
    started_ = false;
  }
}

void RpcServer::RegisterMethod(const std::string& name, Method method) {
  std::lock_guard<std::mutex> lock(mu_);
  methods_[name] = std::move(method);
}

void RpcServer::RegisterOneWay(const std::string& name, OneWayMethod method) {
  std::lock_guard<std::mutex> lock(mu_);
  oneway_methods_[name] = std::move(method);
}

void RpcServer::SetAuthenticator(Authenticator authenticator) {
  std::lock_guard<std::mutex> lock(mu_);
  authenticator_ = std::move(authenticator);
}

void RpcServer::HandleMessage(const Message& message) {
  std::string auth_token;
  Bytes body;
  const util::Status decode_status =
      DecodeRequestEnvelope(message.payload, &auth_token, &body);

  CallContext context;
  context.caller_endpoint = message.from;
  context.auth_token = auth_token;
  context.method = message.method;

  if (message.kind == MessageKind::kOneWay) {
    if (!decode_status.ok()) return;  // corrupt one-way frame: drop
    OneWayMethod handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = oneway_methods_.find(message.method);
      if (it == oneway_methods_.end()) return;
      handler = it->second;
      if (authenticator_) {
        auto subject = authenticator_(auth_token, message.method);
        if (!subject.ok()) return;  // silently discard unauthenticated stream
        context.subject = *subject;
      }
    }
    handler(context, body);
    return;
  }

  if (message.kind != MessageKind::kRequest) return;

  util::Status status = decode_status;
  Bytes response_body;
  if (status.ok()) {
    Method handler;
    Authenticator authenticator;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = methods_.find(message.method);
      if (it != methods_.end()) handler = it->second;
      authenticator = authenticator_;
    }
    if (!handler) {
      status = util::Unimplemented("no such method: " + message.method);
    } else {
      bool authorized = true;
      if (authenticator) {
        auto subject = authenticator(auth_token, message.method);
        if (!subject.ok()) {
          status = subject.status();
          authorized = false;
        } else {
          context.subject = *subject;
        }
      }
      if (authorized) {
        auto result = handler(context, body);
        if (result.ok()) {
          response_body = std::move(result).value();
        } else {
          status = result.status();
        }
      }
    }
  }

  Message response;
  response.from = endpoint_;
  response.to = message.from;
  response.kind = MessageKind::kResponse;
  response.correlation_id = message.correlation_id;
  response.method = message.method;
  response.payload = EncodeResponseEnvelope(status, response_body);
  // Best effort: if the reply is lost the caller times out and may retry.
  (void)network_->Send(std::move(response));
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(Network* network, std::string endpoint)
    : network_(network), endpoint_(std::move(endpoint)) {
  const util::Status status = network_->RegisterEndpoint(
      endpoint_, [this](const Message& message) { HandleMessage(message); });
  if (!status.ok()) {
    NEES_LOG_ERROR("net.rpc") << "client endpoint registration failed: "
                              << status.ToString();
  }
}

RpcClient::~RpcClient() { network_->UnregisterEndpoint(endpoint_); }

void RpcClient::SetAuthToken(std::string token) {
  std::lock_guard<std::mutex> lock(mu_);
  auth_token_ = std::move(token);
}

void RpcClient::SetAuthTokenFor(const std::string& target,
                                std::string token) {
  std::lock_guard<std::mutex> lock(mu_);
  per_target_tokens_[target] = std::move(token);
}

std::string RpcClient::TokenFor(const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_target_tokens_.find(target);
  return it != per_target_tokens_.end() ? it->second : auth_token_;
}

void RpcClient::HandleMessage(const Message& message) {
  if (message.kind != MessageKind::kResponse) return;
  std::shared_ptr<PendingCall> call;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(message.correlation_id);
    if (it == pending_.end()) return;  // late/duplicate response: ignore
    call = it->second;
  }
  util::Status status;
  Bytes body;
  const util::Status decoded =
      DecodeResponseEnvelope(message.payload, &status, &body);
  {
    std::lock_guard<std::mutex> lock(mu_);
    call->status = decoded.ok() ? status : decoded;
    call->response = std::move(body);
    call->done = true;
  }
  cv_.notify_all();
}

RpcClient::AsyncCall RpcClient::Issue(const std::string& target,
                                      const std::string& method,
                                      const Bytes& body,
                                      std::int64_t timeout_micros) {
  AsyncCall async;
  async.client_ = this;
  async.state_ = std::make_shared<PendingCall>();
  async.deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(timeout_micros);
  std::string token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    async.correlation_ = next_correlation_++;
    pending_[async.correlation_] = async.state_;
    auto it = per_target_tokens_.find(target);
    token = it != per_target_tokens_.end() ? it->second : auth_token_;
  }

  Message request;
  request.from = endpoint_;
  request.to = target;
  request.kind = MessageKind::kRequest;
  request.correlation_id = async.correlation_;
  request.method = method;
  request.payload = EncodeRequestEnvelope(token, body);

  const util::Status send_status = network_->Send(std::move(request));
  if (!send_status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(async.correlation_);
    // Destination endpoint missing: surface as transient (site may return).
    async.send_error_ = util::Unavailable("send to " + target + " failed: " +
                                          send_status.message());
  }
  async.label_ = "rpc " + method + " to " + target;
  return async;
}

util::Result<Bytes> RpcClient::AsyncCall::Wait() {
  if (client_ == nullptr) {
    return util::Internal("Wait() on an empty AsyncCall");
  }
  RpcClient* client = client_;
  client_ = nullptr;  // Wait at most once
  if (!send_error_.ok()) return send_error_;

  util::Status status;
  Bytes response;
  {
    std::unique_lock<std::mutex> lock(client->mu_);
    if (client->network_->mode() == DeliveryMode::kScheduled) {
      client->cv_.wait_until(lock, deadline_,
                             [this] { return state_->done; });
    }
    // Immediate mode: the response (if any) was delivered inline during
    // Send; if state->done is false the message was dropped en route.
    client->pending_.erase(correlation_);
    if (!state_->done) {
      return util::TimeoutError(label_ + " timed out");
    }
    status = state_->status;
    response = std::move(state_->response);
  }
  if (!status.ok()) return status;
  return response;
}

RpcClient::AsyncCall RpcClient::CallAsync(const std::string& target,
                                          const std::string& method,
                                          const Bytes& body,
                                          std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros);
}

util::Result<Bytes> RpcClient::Call(const std::string& target,
                                    const std::string& method,
                                    const Bytes& body,
                                    std::int64_t timeout_micros) {
  return Issue(target, method, body, timeout_micros).Wait();
}

util::Status RpcClient::OneWay(const std::string& target,
                               const std::string& method, const Bytes& body) {
  const std::string token = TokenFor(target);
  Message message;
  message.from = endpoint_;
  message.to = target;
  message.kind = MessageKind::kOneWay;
  message.method = method;
  message.payload = EncodeRequestEnvelope(token, body);
  return network_->Send(std::move(message));
}

}  // namespace nees::net
