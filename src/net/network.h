// In-process simulated network connecting the experiment sites.
//
// Endpoints register a handler under a globally unique name ("ntcp.uiuc",
// "repo.ncsa", ...). Messages are routed through per-directed-link models
// that add latency and inject faults. Two delivery modes:
//
//  * kImmediate  — the handler runs inline on the sender's thread; latency
//                  is recorded in metrics but not slept. Deterministic;
//                  used by unit tests and the fault-schedule experiments.
//  * kScheduled  — a background thread delivers messages after their real
//                  latency elapses. Used by latency benches (E11) and the
//                  wall-clock MOST runs.
//
// Fault API: per-link drop probability, time-window outages, manual
// up/down, and DropNext(n) for deterministic single-message faults.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/link.h"
#include "net/message.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::net {

enum class DeliveryMode { kImmediate, kScheduled };

class Network {
 public:
  /// Handlers receive the message by value: delivery is the end of the
  /// message's life on the wire, so the payload can be moved (not copied)
  /// into the protocol layer. Lambdas taking `const Message&` still bind.
  using Handler = std::function<void(Message)>;

  explicit Network(DeliveryMode mode = DeliveryMode::kImmediate,
                   std::uint64_t fault_seed = 42);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint; fails if the name is taken.
  util::Status RegisterEndpoint(const std::string& name, Handler handler);
  void UnregisterEndpoint(const std::string& name);
  bool HasEndpoint(const std::string& name) const;

  /// Sends a message through the (from -> to) link. Returns Ok if the
  /// message was *accepted* (it may still be dropped in flight; senders
  /// learn about loss only through timeouts, as on a real network).
  /// kNotFound if the destination endpoint does not exist.
  util::Status Send(Message message);

  // --- link configuration -------------------------------------------------
  /// Sets the model for the directed link from -> to. "*" matches any
  /// endpoint; specific links take precedence over wildcard ones.
  void SetLink(const std::string& from, const std::string& to,
               LinkModel model);
  /// Sets the default model for links with no specific entry.
  void SetDefaultLink(LinkModel model);

  // --- fault injection ----------------------------------------------------
  /// Marks the directed link up/down. Down links drop every message.
  void SetLinkUp(const std::string& from, const std::string& to, bool up);
  /// Makes the next `count` messages on the directed link vanish.
  void DropNext(const std::string& from, const std::string& to, int count);
  /// Adds a dead window in clock time (see SetClock) on the directed link.
  void AddOutage(const std::string& from, const std::string& to,
                 OutageWindow window);
  /// Adds a bidirectional outage between two endpoints.
  void AddBidirectionalOutage(const std::string& a, const std::string& b,
                              OutageWindow window);

  /// Drops ALL traffic between two endpoint groups (symmetric partition)
  /// until HealPartition is called.
  void Partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b);
  void HealPartition();

  // --- metrics / time -----------------------------------------------------
  LinkMetrics TotalMetrics() const;
  LinkMetrics LinkMetricsFor(const std::string& from,
                             const std::string& to) const;

  /// Clock used for outage windows and latency accounting. Defaults to the
  /// system clock; tests inject a SimClock.
  void SetClock(util::Clock* clock);
  util::Clock* clock() const { return clock_; }

  /// Optional: records a "network" transfer event (with the modeled link
  /// delay) for every delivered message, and drop/delivery counters.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  DeliveryMode mode() const { return mode_; }

  /// Blocks until all scheduled in-flight messages are delivered (kScheduled
  /// only; immediate mode returns at once).
  void Quiesce();

 private:
  struct LinkState {
    LinkModel model;
    bool up = true;
    int drop_next = 0;
    std::vector<OutageWindow> outages;
    LinkMetrics metrics;
  };

  struct ScheduledMessage {
    std::int64_t due_micros;
    std::uint64_t sequence;  // FIFO tiebreak
    Message message;
    bool operator>(const ScheduledMessage& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      return sequence > other.sequence;
    }
  };

  LinkState& LinkFor(const std::string& from, const std::string& to);
  bool ShouldDrop(LinkState& link, const Message& message,
                  std::int64_t now_micros);
  bool InPartition(const std::string& from, const std::string& to) const;
  void DeliveryLoop();
  void Dispatch(Message message);

  const DeliveryMode mode_;
  util::Clock* clock_;
  obs::Tracer* tracer_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Handler>> endpoints_;
  std::map<std::pair<std::string, std::string>, LinkState> links_;
  LinkModel default_link_;
  LinkMetrics total_;
  util::Rng rng_;

  std::vector<std::string> partition_a_, partition_b_;
  bool partitioned_ = false;

  // kScheduled machinery
  std::priority_queue<ScheduledMessage, std::vector<ScheduledMessage>,
                      std::greater<>>
      pending_;
  std::uint64_t next_sequence_ = 0;
  std::size_t in_flight_ = 0;
  std::condition_variable pending_cv_;
  std::condition_variable quiesce_cv_;
  bool shutting_down_ = false;
  std::thread delivery_thread_;
};

}  // namespace nees::net
