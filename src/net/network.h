// In-process simulated network connecting the experiment sites.
//
// Endpoints register a handler under a globally unique name ("ntcp.uiuc",
// "repo.ncsa", ...). Messages are routed through per-directed-link models
// that add latency and inject faults. Three delivery modes:
//
//  * kImmediate  — the handler runs inline on the sender's thread; latency
//                  is recorded in metrics but not slept. Deterministic;
//                  used by unit tests and the fault-schedule experiments.
//  * kScheduled  — a background thread delivers messages after their real
//                  latency elapses. Used by latency benches (E11) and the
//                  wall-clock MOST runs.
//  * kVirtual    — deterministic discrete-event simulation. Messages and
//                  timers land in one seeded priority queue ordered by
//                  simulated arrival time on an owned SimClock, with seeded
//                  tie-breaking between simultaneous events, and a
//                  single-threaded event loop (PumpOneUntil / AdvanceTo /
//                  RunUntilQuiescent) drains them in one totally ordered,
//                  reproducible schedule per fault seed. Blocking layers
//                  (RPC waits, backoff sleeps, long polls) pump this loop
//                  instead of parking on condition variables, so an entire
//                  MOST-shaped run replays bit-identically from its seed.
//                  Used by the nees_fuzz harness.
//
// Fault API: per-link drop probability, time-window outages, manual
// up/down, and DropNext(n) for deterministic single-message faults. In
// kVirtual mode, outages, link up/down, and partitions are re-checked at
// the *arrival* time too: a message sent before an outage opens but due
// inside it is lost in flight, as on a real network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoint.h"
#include "net/link.h"
#include "net/message.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/open_hash.h"
#include "util/result.h"
#include "util/rng.h"

namespace nees::obs {
class Tracer;
}  // namespace nees::obs

namespace nees::net {

enum class DeliveryMode { kImmediate, kScheduled, kVirtual };

class Network {
 public:
  /// Handlers receive the message by value: delivery is the end of the
  /// message's life on the wire, so the payload can be moved (not copied)
  /// into the protocol layer. Lambdas taking `const Message&` still bind.
  using Handler = std::function<void(Message)>;

  explicit Network(DeliveryMode mode = DeliveryMode::kImmediate,
                   std::uint64_t fault_seed = 42);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint; fails if the name is taken. Names are interned
  /// (EndpointId converts implicitly from strings); routing afterwards is
  /// by 4-byte id through open-addressed tables.
  util::Status RegisterEndpoint(EndpointId name, Handler handler);
  void UnregisterEndpoint(EndpointId name);
  bool HasEndpoint(EndpointId name) const;

  /// Sends a message through the (from -> to) link. Returns Ok if the
  /// message was *accepted* (it may still be dropped in flight; senders
  /// learn about loss only through timeouts, as on a real network).
  /// kNotFound if the destination endpoint does not exist.
  util::Status Send(Message message);

  // --- link configuration -------------------------------------------------
  /// Sets the model for the directed link from -> to. "*" matches any
  /// endpoint; specific links take precedence over wildcard ones.
  void SetLink(EndpointId from, EndpointId to, LinkModel model);
  /// Sets the default model for links with no specific entry.
  void SetDefaultLink(LinkModel model);

  // --- fault injection ----------------------------------------------------
  /// Marks the directed link up/down. Down links drop every message.
  void SetLinkUp(EndpointId from, EndpointId to, bool up);
  /// Makes the next `count` messages on the directed link vanish. Counted
  /// at send time in every mode (a deterministic "the next send is lost").
  void DropNext(EndpointId from, EndpointId to, int count);
  /// Mutates the next `count` messages on the directed link in flight
  /// (kVirtual only): the frame is re-encoded through the canonical wire
  /// format, 1–3 bytes are flipped (or the frame is truncated) using the
  /// network's seeded fault rng, and the mutant is re-decoded at arrival.
  /// A mutant the Decode gate rejects is counted dropped_corrupt and lost
  /// — indistinguishable from a drop, which is the contract the frame CRC
  /// exists to provide; one that still parses is delivered as-is to the
  /// handler, modelling corruption that slips past the integrity check.
  void CorruptNext(EndpointId from, EndpointId to, int count);
  /// Adds a dead window in clock time (see SetClock) on the directed link.
  /// The end is exclusive: a message arriving exactly at end_micros gets
  /// through. kVirtual checks windows at both send and arrival time.
  void AddOutage(EndpointId from, EndpointId to, OutageWindow window);
  /// Adds a bidirectional outage between two endpoints.
  void AddBidirectionalOutage(EndpointId a, EndpointId b,
                              OutageWindow window);

  /// Drops ALL traffic between two endpoint groups (symmetric partition)
  /// until HealPartition is called.
  void Partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b);
  void HealPartition();

  /// Marks `name` as belonging to a crashed process: every Send *from* it
  /// is silently swallowed (counted as dropped_forced). A dead process's
  /// zombie stack frames — e.g. a handler that was mid-call when the crash
  /// timer fired — observe sends that appear accepted but go nowhere, which
  /// is exactly what a killed process's last instructions amount to.
  /// Messages already in flight TO the endpoint still deliver (packets
  /// survive their sender); they drop only if the endpoint unregistered.
  /// Clear on revival, before the new incarnation re-registers.
  void SetEndpointCrashed(EndpointId name, bool crashed);

  // --- metrics / time -----------------------------------------------------
  LinkMetrics TotalMetrics() const;
  LinkMetrics LinkMetricsFor(EndpointId from, EndpointId to) const;

  /// Clock used for outage windows and latency accounting. Defaults to the
  /// system clock; tests inject a SimClock. In kVirtual mode the injected
  /// clock must be a SimClock (it becomes the event loop's timeline) and
  /// clock() keeps returning the pumping facade described below.
  void SetClock(util::Clock* clock);

  /// The clock protocol layers should use. In kImmediate/kScheduled this is
  /// whatever SetClock installed. In kVirtual it is a pumping facade:
  /// NowMicros() reads the virtual timeline and SleepMicros(d) runs
  /// AdvanceTo(now + d), so a "sleeping" caller (retry backoff, heartbeat
  /// wait) delivers every event due in the window, in order, before waking.
  util::Clock* clock() const { return clock_; }

  /// The raw simulated timeline (kVirtual only; never null there, null in
  /// the other modes). Prefer clock() unless a test needs to assert on or
  /// pre-position the timeline without pumping.
  util::SimClock* virtual_clock() const { return virtual_clock_; }

  /// Optional: records a "network" transfer event (with the modeled link
  /// delay) for every delivered message, and drop/delivery counters. In
  /// kVirtual mode the event is recorded at *arrival* time.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  DeliveryMode mode() const { return mode_; }

  /// Blocks until all scheduled in-flight messages are delivered. kVirtual:
  /// runs the event loop to quiescence; immediate mode returns at once.
  void Quiesce();

  // --- virtual-time event loop (kVirtual only) ----------------------------
  /// Schedules `fn` on the event loop at absolute virtual time `due_micros`
  /// (clamped to now). Timers share the message queue's total order — the
  /// key is (due, seeded tie, sequence) — so a retry timer and a response
  /// due at the same microsecond fire in a seed-dependent but reproducible
  /// order. Timers run outside the network lock and may send, schedule,
  /// and pump recursively.
  void ScheduleAt(std::int64_t due_micros, std::function<void()> fn);
  /// Schedules `fn` after `delay_micros` of virtual time from now.
  void ScheduleAfter(std::int64_t delay_micros, std::function<void()> fn);

  /// Delivers the single earliest pending event (message or timer) if it is
  /// due at or before `limit_micros`, advancing the virtual clock to its
  /// due time first, and returns true. Otherwise advances the clock to
  /// `limit_micros` and returns false. Re-entrant: a handler may pump
  /// (nested pumps can advance time past an outer pump's limit; the clock
  /// never moves backwards). No-op (false) outside kVirtual.
  bool PumpOneUntil(std::int64_t limit_micros);

  /// Delivers everything due at or before `micros` in order, then advances
  /// the clock to exactly `micros`. Returns the number of events processed.
  std::size_t AdvanceTo(std::int64_t micros);

  /// Drains every pending event in virtual-time order until both queues are
  /// empty (self-rescheduling timers must therefore disarm themselves) or
  /// `max_events` fire. Returns the number of events processed.
  std::size_t RunUntilQuiescent(std::size_t max_events = 100'000'000);

  struct VirtualLoopStats {
    std::uint64_t messages_delivered = 0;
    std::uint64_t messages_dropped_in_flight = 0;
    std::uint64_t timers_fired = 0;
    std::uint64_t events() const {
      return messages_delivered + messages_dropped_in_flight + timers_fired;
    }
  };
  VirtualLoopStats virtual_stats() const;

 private:
  struct LinkState {
    LinkModel model;
    bool up = true;
    int drop_next = 0;
    int corrupt_next = 0;
    std::vector<OutageWindow> outages;
    LinkMetrics metrics;
  };

  struct ScheduledMessage {
    std::int64_t due_micros;
    std::uint64_t tie;       // seeded tiebreak (kVirtual; 0 in kScheduled)
    std::uint64_t sequence;  // FIFO tiebreak of last resort
    std::int64_t delay_micros;  // modeled link delay, for arrival tracing
    Message message;
    bool operator>(const ScheduledMessage& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      if (tie != other.tie) return tie > other.tie;
      return sequence > other.sequence;
    }
  };

  struct ScheduledTimer {
    std::int64_t due_micros;
    std::uint64_t tie;
    std::uint64_t sequence;  // shared counter with messages: globally unique
    std::function<void()> fn;
    bool operator>(const ScheduledTimer& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      if (tie != other.tie) return tie > other.tie;
      return sequence > other.sequence;
    }
  };

  /// kVirtual clock() facade: NowMicros reads the virtual timeline,
  /// SleepMicros pumps the event loop across the sleep window.
  class PumpClock final : public util::Clock {
   public:
    explicit PumpClock(Network* network) : network_(network) {}
    std::int64_t NowMicros() const override;
    void SleepMicros(std::int64_t micros) override;

   private:
    Network* network_;
  };

  /// Directed links are keyed (from << 32 | to) over interned ids; LinkFor
  /// probes exact, (from, *), (*, to), then materializes a default entry.
  /// The reference is valid only until the next links_ insert.
  static std::uint64_t LinkKey(EndpointId from, EndpointId to) {
    return (static_cast<std::uint64_t>(from.raw()) << 32) | to.raw();
  }
  LinkState& LinkFor(EndpointId from, EndpointId to) NEES_REQUIRES(mu_);
  bool ShouldDrop(LinkState& link, const Message& message,
                  std::int64_t now_micros) NEES_REQUIRES(mu_);
  /// Consumes one corrupt_next credit and mutates `message` through an
  /// encode → damage → decode round trip. Returns true when the Decode gate
  /// rejected the damage (the message is lost); false when the mutant
  /// parsed and `message` now holds it.
  bool CorruptInFlight(LinkState& link, Message& message) NEES_REQUIRES(mu_);
  bool InPartition(EndpointId from, EndpointId to) const
      NEES_REQUIRES(mu_);
  void DeliveryLoop();
  void Dispatch(Message message);
  /// Core virtual-time step; `advance_on_idle` distinguishes PumpOneUntil
  /// (clock jumps to the limit when nothing is due) from AdvanceTo /
  /// RunUntilQuiescent internals (which advance separately or not at all).
  bool PumpOne(std::int64_t limit_micros, bool advance_on_idle);
  /// Moves the virtual clock forward to `micros`; never backwards (nested
  /// pumps may already have advanced past an outer pump's limit).
  void AdvanceVirtualClockTo(std::int64_t micros);
  /// Arrival-time half of kVirtual delivery: re-checks partition, link
  /// up/down, and outage windows at the arrival timestamp, then counts
  /// delivery and runs the handler.
  void DeliverVirtual(Message message, std::int64_t delay_micros);

  const DeliveryMode mode_;
  // Installed before traffic starts (SetClock/SetTracer are setup-time);
  // the hot paths read both with mu_ released, so neither is guarded.
  util::Clock* clock_;
  obs::Tracer* tracer_ = nullptr;
  mutable util::Mutex mu_{"net.Network"};
  // Hot-path lookups: open-addressed, keyed by interned id (endpoints) and
  // the packed directed-pair key (links). Per-network tables, so the many
  // short-lived networks a fuzz sweep creates stay small regardless of how
  // many names the process-wide intern table accumulates.
  util::OpenHashMap<std::uint32_t, std::shared_ptr<Handler>> endpoints_
      NEES_GUARDED_BY(mu_);
  util::OpenHashMap<std::uint64_t, LinkState> links_ NEES_GUARDED_BY(mu_);
  const EndpointId wildcard_id_{"*"};
  LinkModel default_link_ NEES_GUARDED_BY(mu_);
  LinkMetrics total_ NEES_GUARDED_BY(mu_);
  util::Rng rng_ NEES_GUARDED_BY(mu_);

  std::vector<EndpointId> partition_a_ NEES_GUARDED_BY(mu_),
      partition_b_ NEES_GUARDED_BY(mu_);
  bool partitioned_ NEES_GUARDED_BY(mu_) = false;
  util::OpenHashMap<std::uint32_t, bool> crashed_endpoints_
      NEES_GUARDED_BY(mu_);

  // kScheduled + kVirtual shared queue
  std::priority_queue<ScheduledMessage, std::vector<ScheduledMessage>,
                      std::greater<>>
      pending_ NEES_GUARDED_BY(mu_);
  std::uint64_t next_sequence_ NEES_GUARDED_BY(mu_) = 0;
  std::size_t in_flight_ NEES_GUARDED_BY(mu_) = 0;
  util::CondVar pending_cv_;
  util::CondVar quiesce_cv_;
  bool shutting_down_ NEES_GUARDED_BY(mu_) = false;
  std::thread delivery_thread_;

  // kVirtual machinery. The schedule rng is a dedicated stream (NOT rng_,
  // whose draw sequence the fault model owns) so tie-breaking explores
  // different interleavings per seed without perturbing drop decisions.
  std::unique_ptr<util::SimClock> owned_virtual_clock_;
  util::SimClock* virtual_clock_ = nullptr;
  PumpClock pump_clock_{this};
  util::Rng schedule_rng_ NEES_GUARDED_BY(mu_);
  std::priority_queue<ScheduledTimer, std::vector<ScheduledTimer>,
                      std::greater<>>
      timers_ NEES_GUARDED_BY(mu_);
  VirtualLoopStats virtual_stats_ NEES_GUARDED_BY(mu_);
};

}  // namespace nees::net
