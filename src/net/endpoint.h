// Process-wide interning of wire names. Endpoint and RPC-method names used
// to travel as std::string on every Message, costing a heap copy per field
// per hop; the EndpointTable interns each distinct name once and the hot
// path carries 4-byte ids instead. The id->name view stays valid for the
// life of the process (intern storage is never freed), so traces, lint
// tags, and error text can lazily resolve names without copying.
//
// Id 0 is reserved as "invalid / empty name"; real ids start at 1, which
// lets open-addressed tables use 0 as their empty-slot sentinel.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace nees::obs {
class MetricsRegistry;
}  // namespace nees::obs

namespace nees::net {

class EndpointTable {
 public:
  static EndpointTable& Instance();

  /// Returns the id for `name`, interning it on first sight. "" -> 0.
  std::uint32_t Intern(std::string_view name);

  /// The interned name, or "" for id 0 or an id never handed out. The view
  /// is stable for the process lifetime.
  std::string_view Lookup(std::uint32_t id) const;

  /// True for id 0 ("" is always decodable) and every id handed out.
  bool Known(std::uint32_t id) const;

  /// Distinct names interned so far. The table only ever grows — under a
  /// multi-tenant farm every tenant mints its own namespaced endpoints, so
  /// this is the observable proxy for endpoint-identity footprint.
  std::size_t size() const;
  /// Total bytes of interned name storage (the strings themselves).
  std::size_t interned_bytes() const;

  /// Publishes the growth counters as gauges:
  ///   net.endpoints.interned        (count)
  ///   net.endpoints.interned_bytes  (name storage)
  void PublishGauges(obs::MetricsRegistry& metrics) const;

 private:
  EndpointTable();
  struct Impl;
  Impl* impl_;  // leaked with the singleton: views must outlive everything
};

/// Interned endpoint name. Implicitly constructible from strings so
/// existing `message.from = "coordinator"` call sites keep working; the
/// numeric raw() value is only accepted explicitly (FromRaw) because a bare
/// u32 on the wire must be validated against the table first.
class EndpointId {
 public:
  constexpr EndpointId() = default;
  EndpointId(std::string_view name)
      : value_(EndpointTable::Instance().Intern(name)) {}
  EndpointId(const std::string& name)
      : EndpointId(std::string_view(name)) {}
  EndpointId(const char* name) : EndpointId(std::string_view(name)) {}

  static constexpr EndpointId FromRaw(std::uint32_t raw) {
    EndpointId id;
    id.value_ = raw;
    return id;
  }

  constexpr std::uint32_t raw() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  /// Lazy name view for traces/errors; "" when invalid.
  std::string_view name() const {
    return EndpointTable::Instance().Lookup(value_);
  }
  /// Convenience copy for call sites that build owned strings.
  std::string str() const { return std::string(name()); }

  friend constexpr bool operator==(EndpointId a, EndpointId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(EndpointId a, EndpointId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(EndpointId a, EndpointId b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

/// Interned RPC method name; same table, distinct type so a method id can
/// never be passed where an endpoint id is expected.
class MethodId {
 public:
  constexpr MethodId() = default;
  MethodId(std::string_view name)
      : value_(EndpointTable::Instance().Intern(name)) {}
  MethodId(const std::string& name) : MethodId(std::string_view(name)) {}
  MethodId(const char* name) : MethodId(std::string_view(name)) {}

  static constexpr MethodId FromRaw(std::uint32_t raw) {
    MethodId id;
    id.value_ = raw;
    return id;
  }

  constexpr std::uint32_t raw() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  std::string_view name() const {
    return EndpointTable::Instance().Lookup(value_);
  }
  std::string str() const { return std::string(name()); }

  friend constexpr bool operator==(MethodId a, MethodId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(MethodId a, MethodId b) {
    return a.value_ != b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, EndpointId id);
std::ostream& operator<<(std::ostream& os, MethodId id);

}  // namespace nees::net
