// Per-link behaviour model for the simulated WAN between experiment sites.
// The MOST evaluation (DESIGN.md E6) turns on: transient outages that NTCP
// retries hide, plus one fatal outage near step 1493. Links therefore
// support stochastic drop, latency/jitter, bandwidth-derived transmission
// delay, time-window outages, and deterministic "drop the next N" faults.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace nees::net {

/// Static behaviour of a directed link (applies src -> dst).
struct LinkModel {
  std::int64_t latency_micros = 0;      // one-way propagation delay
  std::int64_t jitter_micros = 0;       // uniform [-jitter, +jitter]
  double drop_probability = 0.0;        // i.i.d. per message
  double bytes_per_second = 0.0;        // 0 = infinite bandwidth
};

/// An interval of simulated/wall time during which the link is dead.
struct OutageWindow {
  std::int64_t start_micros = 0;
  std::int64_t end_micros = 0;  // exclusive
};

/// Counters; one set per link plus a network-wide aggregate.
struct LinkMetrics {
  std::uint64_t sent = 0;        // attempted sends
  std::uint64_t delivered = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_outage = 0;
  std::uint64_t dropped_forced = 0;  // DropNext / link down
  std::uint64_t corrupted = 0;       // frames mutated in flight (CorruptNext)
  std::uint64_t dropped_corrupt = 0;  // mutations caught at the Decode gate
  std::uint64_t bytes_delivered = 0;

  std::uint64_t dropped_total() const {
    return dropped_random + dropped_outage + dropped_forced + dropped_corrupt;
  }
};

/// Computes the end-to-end delay for a message of `wire_bytes` bytes.
std::int64_t TransmissionDelayMicros(const LinkModel& model,
                                     std::size_t wire_bytes,
                                     nees::util::Rng& rng);

}  // namespace nees::net
