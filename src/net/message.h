// Wire-level message for the simulated network. Every inter-service call in
// the reproduction (NTCP, NSDS, repository, CHEF) is carried as one of
// these, so network fault injection applies uniformly — the property the
// MOST fault-tolerance story depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nees::net {

enum class MessageKind : std::uint8_t {
  kRequest = 0,   // expects a response (RPC)
  kResponse = 1,  // response to a prior request
  kOneWay = 2,    // fire-and-forget (streams, notifications)
};

struct Message {
  std::string from;             // sender endpoint name
  std::string to;               // destination endpoint name
  MessageKind kind = MessageKind::kOneWay;
  std::uint64_t correlation_id = 0;  // pairs requests with responses
  std::string method;                // RPC method name ("" for raw one-way)
  std::vector<std::uint8_t> payload;

  std::size_t WireSize() const {
    return from.size() + to.size() + method.size() + payload.size() + 16;
  }
};

}  // namespace nees::net
