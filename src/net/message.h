// Wire-level message for the simulated network. Every inter-service call in
// the reproduction (NTCP, NSDS, repository, CHEF) is carried as one of
// these, so network fault injection applies uniformly — the property the
// MOST fault-tolerance story depends on.
//
// Hot-path layout: from/to/method are interned 4-byte ids (net::EndpointId
// via the process-wide EndpointTable) instead of three std::strings, and
// the payload is one contiguous frame (typically a recycled pool buffer).
// Copying or moving a Message never touches the heap for its header.
//
// Canonical frame encoding (EncodeTo/Decode, audited by WireSize):
//
//   +-----------+-----------+------+------------------+-------------+
//   | from u32  | to u32    | kind | correlation u64  | method u32  |
//   +-----------+-----------+--u8--+------------------+-------------+
//   | payload length u32 | payload bytes ... | crc32 u32            |
//   +--------------------+-------------------+----------------------+
//
// The trailing CRC-32 covers every preceding frame byte. It exists because
// the fuzzer's kFrameCorrupt fault class proved the obvious: without an
// integrity check, a flipped byte that lands in the payload (or any field
// whose whole value range is structurally valid, like a step index) decodes
// cleanly and the stack then acts on corrupt protocol state — an accepted
// proposal with a garbage step trips nees-lint's monotonicity rule long
// after the damage is done. With the CRC, corruption is detected at the
// Decode boundary and surfaces as DataLoss: the frame is simply lost, and
// the NTCP retry ladder recovers it like any other drop.
#pragma once

#include <cstdint>
#include <vector>

#include "net/endpoint.h"
#include "util/bytes.h"
#include "util/result.h"

namespace nees::net {

enum class MessageKind : std::uint8_t {
  kRequest = 0,   // expects a response (RPC)
  kResponse = 1,  // response to a prior request
  kOneWay = 2,    // fire-and-forget (streams, notifications)
};

struct Message {
  EndpointId from;              // sender endpoint (interned)
  EndpointId to;                // destination endpoint (interned)
  MessageKind kind = MessageKind::kOneWay;
  std::uint64_t correlation_id = 0;  // pairs requests with responses
  MethodId method;                   // RPC method (invalid for raw one-way)
  std::vector<std::uint8_t> payload;

  /// Fixed framing per message: from + to + kind + correlation id + method
  /// + payload length prefix + trailing crc32 — exactly what EncodeTo
  /// emits, so E13/E-obs byte counters match the encoder.
  static constexpr std::size_t kHeaderBytes = 4 + 4 + 1 + 8 + 4 + 4 + 4;

  std::size_t WireSize() const { return kHeaderBytes + payload.size(); }

  /// Appends the canonical frame to `writer`.
  void EncodeTo(util::ByteWriter& writer) const;

  /// Decodes one frame. Truncated frames and ids that were never interned
  /// in this process come back as errors (protocol fault), never a crash.
  static util::Result<Message> Decode(util::ByteReader& reader);
};

}  // namespace nees::net
