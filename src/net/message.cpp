#include "net/message.h"

#include <string>

namespace nees::net {

void Message::EncodeTo(util::ByteWriter& writer) const {
  writer.Reserve(writer.size() + WireSize());
  writer.WriteU32(from.raw());
  writer.WriteU32(to.raw());
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteU64(correlation_id);
  writer.WriteU32(method.raw());
  writer.WriteBytes(payload.data(), payload.size());
}

util::Result<Message> Message::Decode(util::ByteReader& reader) {
  Message message;
  NEES_ASSIGN_OR_RETURN(std::uint32_t from_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(std::uint32_t to_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(std::uint8_t kind_raw, reader.ReadU8());
  NEES_ASSIGN_OR_RETURN(message.correlation_id, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(std::uint32_t method_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(message.payload, reader.ReadBytes());
  if (kind_raw > static_cast<std::uint8_t>(MessageKind::kOneWay)) {
    return util::DataLoss("message frame: unknown kind " +
                          std::to_string(kind_raw));
  }
  auto& table = EndpointTable::Instance();
  for (std::uint32_t raw : {from_raw, to_raw, method_raw}) {
    if (!table.Known(raw)) {
      return util::DataLoss("message frame: unknown interned id " +
                            std::to_string(raw));
    }
  }
  message.from = EndpointId::FromRaw(from_raw);
  message.to = EndpointId::FromRaw(to_raw);
  message.kind = static_cast<MessageKind>(kind_raw);
  message.method = MethodId::FromRaw(method_raw);
  return message;
}

}  // namespace nees::net
