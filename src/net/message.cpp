#include "net/message.h"

#include <string>

#include "util/crc32.h"

namespace nees::net {

void Message::EncodeTo(util::ByteWriter& writer) const {
  writer.Reserve(writer.size() + WireSize());
  const std::size_t start = writer.size();
  writer.WriteU32(from.raw());
  writer.WriteU32(to.raw());
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteU64(correlation_id);
  writer.WriteU32(method.raw());
  writer.WriteBytes(payload.data(), payload.size());
  writer.WriteU32(
      util::Crc32(writer.data().data() + start, writer.size() - start));
}

util::Result<Message> Message::Decode(util::ByteReader& reader) {
  Message message;
  const std::size_t start = reader.offset();
  NEES_ASSIGN_OR_RETURN(std::uint32_t from_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(std::uint32_t to_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(std::uint8_t kind_raw, reader.ReadU8());
  NEES_ASSIGN_OR_RETURN(message.correlation_id, reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(std::uint32_t method_raw, reader.ReadU32());
  NEES_ASSIGN_OR_RETURN(message.payload, reader.ReadBytes());
  const std::size_t covered = reader.offset() - start;
  NEES_ASSIGN_OR_RETURN(std::uint32_t stored_crc, reader.ReadU32());
  // Integrity before interpretation: a frame that fails its checksum is
  // wire damage, full stop — no field of it may be trusted, including ids
  // that happen to be interned.
  const std::uint32_t actual_crc =
      util::Crc32(reader.base() + start, covered);
  if (stored_crc != actual_crc) {
    return util::DataLoss("message frame: checksum mismatch");
  }
  if (kind_raw > static_cast<std::uint8_t>(MessageKind::kOneWay)) {
    return util::DataLoss("message frame: unknown kind " +
                          std::to_string(kind_raw));
  }
  auto& table = EndpointTable::Instance();
  for (std::uint32_t raw : {from_raw, to_raw, method_raw}) {
    if (!table.Known(raw)) {
      return util::DataLoss("message frame: unknown interned id " +
                            std::to_string(raw));
    }
  }
  message.from = EndpointId::FromRaw(from_raw);
  message.to = EndpointId::FromRaw(to_raw);
  message.kind = static_cast<MessageKind>(kind_raw);
  message.method = MethodId::FromRaw(method_raw);
  return message;
}

}  // namespace nees::net
