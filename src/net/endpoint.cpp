#include "net/endpoint.h"

#include <deque>
#include <ostream>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nees::net {

// Names live in a deque so growth never moves an existing string; the views
// handed out by Lookup stay valid forever. The table is a leaf lock class:
// nothing else is acquired while net.EndpointTable is held.
struct EndpointTable::Impl {
  mutable util::Mutex mu{"net.EndpointTable"};
  std::deque<std::string> names NEES_GUARDED_BY(mu);
  std::unordered_map<std::string_view, std::uint32_t> index
      NEES_GUARDED_BY(mu);
  std::size_t bytes NEES_GUARDED_BY(mu) = 0;
};

EndpointTable::EndpointTable() : impl_(new Impl()) {}

EndpointTable& EndpointTable::Instance() {
  static EndpointTable* table = new EndpointTable();  // leaked: views are eternal
  return *table;
}

std::uint32_t EndpointTable::Intern(std::string_view name) {
  if (name.empty()) return 0;
  util::MutexLock lock(impl_->mu);
  auto it = impl_->index.find(name);
  if (it != impl_->index.end()) return it->second;
  impl_->names.emplace_back(name);
  impl_->bytes += name.size();
  std::uint32_t id = static_cast<std::uint32_t>(impl_->names.size());
  impl_->index.emplace(std::string_view(impl_->names.back()), id);
  return id;
}

std::string_view EndpointTable::Lookup(std::uint32_t id) const {
  if (id == 0) return {};
  util::MutexLock lock(impl_->mu);
  if (id > impl_->names.size()) return {};
  return std::string_view(impl_->names[id - 1]);
}

bool EndpointTable::Known(std::uint32_t id) const {
  if (id == 0) return true;
  util::MutexLock lock(impl_->mu);
  return id <= impl_->names.size();
}

std::size_t EndpointTable::size() const {
  util::MutexLock lock(impl_->mu);
  return impl_->names.size();
}

std::size_t EndpointTable::interned_bytes() const {
  util::MutexLock lock(impl_->mu);
  return impl_->bytes;
}

void EndpointTable::PublishGauges(obs::MetricsRegistry& metrics) const {
  std::size_t count = 0;
  std::size_t bytes = 0;
  {
    util::MutexLock lock(impl_->mu);
    count = impl_->names.size();
    bytes = impl_->bytes;
  }
  // Gauges are set outside the table lock: net.EndpointTable is a leaf
  // class, and the metrics registry takes its own mutex.
  metrics.SetGauge("net.endpoints.interned", static_cast<double>(count));
  metrics.SetGauge("net.endpoints.interned_bytes", static_cast<double>(bytes));
}

std::ostream& operator<<(std::ostream& os, EndpointId id) {
  return os << id.name();
}

std::ostream& operator<<(std::ostream& os, MethodId id) {
  return os << id.name();
}

}  // namespace nees::net
