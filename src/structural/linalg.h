// Small dense linear algebra for the structural models: enough to assemble
// frame stiffness/mass matrices, statically condense substructures, and run
// time integrators. Row-major storage, LU with partial pivoting, Cholesky
// for SPD systems. Sizes here are tiny (tens of DOFs), so clarity wins over
// blocking/vectorization.
#pragma once

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace nees::structural {

using Vector = std::vector<double>;

Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double scalar, const Vector& v);
double Dot(const Vector& a, const Vector& b);
double NormInf(const Vector& v);
double Norm2(const Vector& v);

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  Vector operator*(const Vector& v) const;
  Matrix Transpose() const;

  /// Frobenius-norm distance, for test assertions.
  double Distance(const Matrix& other) const;

  bool IsSymmetric(double tolerance = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting; reusable for multiple solves.
class LuFactorization {
 public:
  /// Fails with kInvalidArgument for non-square, kFailedPrecondition for
  /// (numerically) singular matrices.
  static util::Result<LuFactorization> Compute(const Matrix& a);

  Vector Solve(const Vector& b) const;
  Matrix Solve(const Matrix& b) const;
  double Determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivot_sign_ = 1;
};

/// Solves a x = b by LU; convenience for one-off systems.
util::Result<Vector> SolveLinear(const Matrix& a, const Vector& b);

/// Cholesky (a = L L^T) for symmetric positive definite systems; fails with
/// kFailedPrecondition if `a` is not SPD.
util::Result<Matrix> CholeskyFactor(const Matrix& a);

/// Inverse via LU (small matrices only).
util::Result<Matrix> Inverse(const Matrix& a);

/// Smallest/largest eigenvalue estimates of a symmetric matrix by (inverse)
/// power iteration — used for modal sanity checks of assembled frames.
util::Result<double> LargestEigenvalue(const Matrix& a, int iterations = 200);
util::Result<double> SmallestEigenvalue(const Matrix& a, int iterations = 200);

}  // namespace nees::structural
