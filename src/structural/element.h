// 2-D Euler–Bernoulli beam-column element (axial + bending), the building
// block of the MOST frame model (Fig. 4: a two-bay single-story steel
// frame). Six DOFs: (u, v, theta) at each end, in global coordinates.
#pragma once

#include <array>
#include <cstddef>

#include "structural/linalg.h"

namespace nees::structural {

/// Material/section properties for a prismatic member.
struct Section {
  double youngs_modulus = 200e9;  // Pa (structural steel)
  double area = 0.0;              // m^2
  double moment_of_inertia = 0.0; // m^4
  double mass_per_length = 0.0;   // kg/m
};

struct BeamColumnElement {
  std::size_t node_i = 0;
  std::size_t node_j = 0;
  Section section;

  /// Element length and orientation from node coordinates.
  double Length(double xi, double yi, double xj, double yj) const;

  /// 6x6 stiffness in *local* coordinates (x along the member axis).
  static Matrix LocalStiffness(const Section& section, double length);

  /// 6x6 consistent mass in local coordinates.
  static Matrix LocalConsistentMass(const Section& section, double length);

  /// 6x6 lumped (diagonal) mass in local coordinates; rotational terms zero.
  static Matrix LocalLumpedMass(const Section& section, double length);

  /// Transformation from global to local DOFs for a member at angle
  /// `cos_a, sin_a` (direction cosines of the member axis).
  static Matrix Transformation(double cos_a, double sin_a);

  /// Global 6x6 stiffness / mass given end coordinates.
  Matrix GlobalStiffness(double xi, double yi, double xj, double yj) const;
  Matrix GlobalConsistentMass(double xi, double yi, double xj,
                              double yj) const;
};

/// Closed-form lateral stiffness of common column boundary conditions —
/// used to cross-check the FEM assembly and to parameterize the physical
/// substructure emulators (UIUC/CU columns, §3).
double CantileverLateralStiffness(const Section& section, double length);
double FixedFixedLateralStiffness(const Section& section, double length);

}  // namespace nees::structural
