// Ground motion records. The MOST experiment drove its 1,500 pseudo-dynamic
// steps with a recorded earthquake; with no access to the original record we
// synthesize an El Centro-like accelerogram: band-limited Gaussian noise
// shaped by a trapezoidal envelope (Shinozuka-style), plus deterministic
// pulse and harmonic records for verification tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace nees::structural {

struct GroundMotion {
  double dt_seconds = 0.02;
  std::vector<double> accel;  // ground acceleration, m/s^2

  std::size_t steps() const { return accel.size(); }
  double duration() const { return dt_seconds * static_cast<double>(accel.size()); }
  double PeakAcceleration() const;
};

struct SyntheticQuakeParams {
  double dt_seconds = 0.02;
  std::size_t steps = 1500;        // the MOST step count
  double peak_accel = 3.0;         // target PGA, m/s^2 (~0.3 g)
  double rise_fraction = 0.1;      // envelope ramp-up
  double strong_fraction = 0.4;    // strong-motion plateau
  double corner_frequency_hz = 2.5;  // low-pass shaping filter corner
  std::uint64_t seed = 19400518;   // El Centro's date, for flavor
};

/// Enveloped, low-pass-filtered Gaussian noise scaled to the target PGA.
GroundMotion SynthesizeQuake(const SyntheticQuakeParams& params);

/// Single half-sine acceleration pulse (analytically checkable).
GroundMotion SinePulse(double dt_seconds, std::size_t steps,
                       double amplitude, double frequency_hz);

/// Steady harmonic excitation.
GroundMotion Harmonic(double dt_seconds, std::size_t steps, double amplitude,
                      double frequency_hz);

/// Simple CSV (one "t,accel" row per step) for examples and archiving.
std::string ToCsv(const GroundMotion& motion);

}  // namespace nees::structural
