#include "structural/integrator.h"

#include <cmath>

namespace nees::structural {

double TimeHistory::PeakDisplacement(std::size_t dof) const {
  double peak = 0.0;
  for (const Vector& d : displacement) {
    peak = std::max(peak, std::fabs(d[dof]));
  }
  return peak;
}

NewmarkBeta::NewmarkBeta(Matrix mass, Matrix damping, Matrix stiffness,
                         Vector iota, Params params)
    : mass_(std::move(mass)),
      damping_(std::move(damping)),
      stiffness_(std::move(stiffness)),
      iota_(std::move(iota)),
      params_(params) {}

util::Result<TimeHistory> NewmarkBeta::Integrate(
    const GroundMotion& motion) const {
  const std::size_t n = mass_.rows();
  const double dt = motion.dt_seconds;
  const double beta = params_.beta;
  const double gamma = params_.gamma;

  const double a0 = 1.0 / (beta * dt * dt);
  const double a1 = gamma / (beta * dt);
  const double a2 = 1.0 / (beta * dt);
  const double a3 = 1.0 / (2.0 * beta) - 1.0;
  const double a4 = gamma / beta - 1.0;
  const double a5 = dt / 2.0 * (gamma / beta - 2.0);

  const Matrix keff = stiffness_ + mass_ * a0 + damping_ * a1;
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(keff));

  TimeHistory history;
  history.dt_seconds = dt;
  Vector d(n, 0.0), v(n, 0.0);
  // Initial acceleration from equilibrium at t=0.
  Vector f0 = (-motion.accel.empty() ? 0.0 : -motion.accel[0]) * (mass_ * iota_);
  NEES_ASSIGN_OR_RETURN(LuFactorization mass_lu,
                        LuFactorization::Compute(mass_));
  Vector a = mass_lu.Solve(f0 - damping_ * v - stiffness_ * d);

  history.displacement.push_back(d);
  history.velocity.push_back(v);
  history.acceleration.push_back(a);

  for (std::size_t step = 1; step < motion.accel.size(); ++step) {
    const Vector f = -motion.accel[step] * (mass_ * iota_);
    const Vector rhs = f + mass_ * (a0 * d + a2 * v + a3 * a) +
                       damping_ * (a1 * d + a4 * v + a5 * a);
    const Vector d_next = lu.Solve(rhs);
    const Vector a_next =
        a0 * (d_next - d) - a2 * v - a3 * a;
    const Vector v_next = v + (dt * (1.0 - gamma)) * a + (dt * gamma) * a_next;

    d = d_next;
    v = v_next;
    a = a_next;
    history.displacement.push_back(d);
    history.velocity.push_back(v);
    history.acceleration.push_back(a);
  }
  return history;
}

CentralDifferencePsd::CentralDifferencePsd(Matrix mass, Matrix damping,
                                           Vector iota)
    : mass_(std::move(mass)),
      damping_(std::move(damping)),
      iota_(std::move(iota)) {}

double CentralDifferencePsd::StableDtLimit(const Matrix& mass,
                                           const Matrix& stiffness) {
  // omega_max^2 is the largest eigenvalue of M^{-1} K; estimate by power
  // iteration on the (generally non-symmetric) product.
  auto inverse = Inverse(mass);
  if (!inverse.ok()) return 0.0;
  auto lambda = LargestEigenvalue(*inverse * stiffness);
  if (!lambda.ok() || *lambda <= 0.0) return 0.0;
  return 2.0 / std::sqrt(*lambda);
}

util::Result<TimeHistory> CentralDifferencePsd::Integrate(
    const GroundMotion& motion, const RestoringForceFn& restoring) const {
  const std::size_t n = mass_.rows();
  const double dt = motion.dt_seconds;

  // Keff = M/dt^2 + C/(2 dt); Kback = M/dt^2 - C/(2 dt).
  const Matrix keff = mass_ * (1.0 / (dt * dt)) + damping_ * (1.0 / (2.0 * dt));
  const Matrix kback =
      mass_ * (1.0 / (dt * dt)) - damping_ * (1.0 / (2.0 * dt));
  const Matrix two_m = mass_ * (2.0 / (dt * dt));
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(keff));

  TimeHistory history;
  history.dt_seconds = dt;
  Vector d_prev(n, 0.0);
  Vector d(n, 0.0);

  history.displacement.push_back(d);
  history.velocity.push_back(Vector(n, 0.0));
  history.acceleration.push_back(Vector(n, 0.0));

  for (std::size_t step = 0; step + 1 < motion.accel.size(); ++step) {
    // Measured restoring force at the current displacement: in MOST this is
    // the NTCP propose/execute round to every substructure.
    NEES_ASSIGN_OR_RETURN(Vector r, restoring(step, d));
    if (r.size() != n) {
      return util::Internal("restoring force dimension mismatch");
    }
    const Vector f = -motion.accel[step] * (mass_ * iota_);
    const Vector rhs = f - r + two_m * d - kback * d_prev;
    Vector d_next = lu.Solve(rhs);

    const Vector v = (1.0 / (2.0 * dt)) * (d_next - d_prev);
    const Vector a = (1.0 / (dt * dt)) * (d_next - 2.0 * d + d_prev);

    d_prev = d;
    d = std::move(d_next);
    history.displacement.push_back(d);
    history.velocity.push_back(v);
    history.acceleration.push_back(a);
  }
  return history;
}

OperatorSplittingPsd::OperatorSplittingPsd(Matrix mass, Matrix damping,
                                           Matrix initial_stiffness,
                                           Vector iota)
    : mass_(std::move(mass)),
      damping_(std::move(damping)),
      k0_(std::move(initial_stiffness)),
      iota_(std::move(iota)) {}

util::Result<TimeHistory> OperatorSplittingPsd::Integrate(
    const GroundMotion& motion, const RestoringForceFn& restoring) const {
  const std::size_t n = mass_.rows();
  const double dt = motion.dt_seconds;
  constexpr double beta = 0.25;
  constexpr double gamma = 0.5;

  // Effective mass: M + gamma dt C + beta dt^2 K0 (constant; factor once).
  const Matrix meff =
      mass_ + damping_ * (gamma * dt) + k0_ * (beta * dt * dt);
  NEES_ASSIGN_OR_RETURN(LuFactorization meff_lu,
                        LuFactorization::Compute(meff));
  NEES_ASSIGN_OR_RETURN(LuFactorization mass_lu,
                        LuFactorization::Compute(mass_));

  TimeHistory history;
  history.dt_seconds = dt;
  Vector d(n, 0.0), v(n, 0.0);
  // At-rest start: r(0) = 0, so a_0 = M^-1 f_0.
  const Vector f0 =
      (motion.accel.empty() ? 0.0 : -motion.accel[0]) * (mass_ * iota_);
  Vector a = mass_lu.Solve(f0);
  history.displacement.push_back(d);
  history.velocity.push_back(v);
  history.acceleration.push_back(a);

  for (std::size_t step = 0; step + 1 < motion.accel.size(); ++step) {
    // Predictor (explicit) — this is the displacement commanded to the
    // substructures over NTCP.
    const Vector d_tilde =
        d + dt * v + (dt * dt * (0.5 - beta)) * a;
    const Vector v_tilde = v + (dt * (1.0 - gamma)) * a;

    NEES_ASSIGN_OR_RETURN(Vector r_tilde, restoring(step, d_tilde));
    if (r_tilde.size() != n) {
      return util::Internal("restoring force dimension mismatch");
    }

    const Vector f = -motion.accel[step + 1] * (mass_ * iota_);
    const Vector rhs = f - damping_ * v_tilde - r_tilde;
    const Vector a_next = meff_lu.Solve(rhs);

    d = d_tilde + (beta * dt * dt) * a_next;
    v = v_tilde + (gamma * dt) * a_next;
    a = a_next;
    history.displacement.push_back(d);
    history.velocity.push_back(v);
    history.acceleration.push_back(a);
  }
  return history;
}

}  // namespace nees::structural
