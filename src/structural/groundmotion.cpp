#include "structural/groundmotion.h"

#include <cmath>

#include "util/strings.h"

namespace nees::structural {

double GroundMotion::PeakAcceleration() const {
  double peak = 0.0;
  for (double a : accel) peak = std::max(peak, std::fabs(a));
  return peak;
}

GroundMotion SynthesizeQuake(const SyntheticQuakeParams& params) {
  util::Rng rng(params.seed);
  GroundMotion motion;
  motion.dt_seconds = params.dt_seconds;
  motion.accel.resize(params.steps);

  // One-pole low-pass filter on white noise gives a plausible spectral decay.
  const double alpha =
      std::exp(-2.0 * M_PI * params.corner_frequency_hz * params.dt_seconds);
  double filtered = 0.0;
  const std::size_t rise_end =
      static_cast<std::size_t>(params.rise_fraction * params.steps);
  const std::size_t strong_end = static_cast<std::size_t>(
      (params.rise_fraction + params.strong_fraction) * params.steps);

  for (std::size_t i = 0; i < params.steps; ++i) {
    filtered = alpha * filtered + (1.0 - alpha) * rng.Gaussian();
    double envelope;
    if (i < rise_end) {
      envelope = static_cast<double>(i) / std::max<std::size_t>(rise_end, 1);
    } else if (i < strong_end) {
      envelope = 1.0;
    } else {
      const double tail = static_cast<double>(i - strong_end) /
                          std::max<std::size_t>(params.steps - strong_end, 1);
      envelope = std::exp(-3.0 * tail);
    }
    motion.accel[i] = envelope * filtered;
  }

  const double peak = motion.PeakAcceleration();
  if (peak > 0.0) {
    const double scale = params.peak_accel / peak;
    for (double& a : motion.accel) a *= scale;
  }
  return motion;
}

GroundMotion SinePulse(double dt_seconds, std::size_t steps, double amplitude,
                       double frequency_hz) {
  GroundMotion motion;
  motion.dt_seconds = dt_seconds;
  motion.accel.resize(steps, 0.0);
  const double period = 1.0 / frequency_hz;
  const std::size_t pulse_steps =
      std::min(steps, static_cast<std::size_t>(period / 2.0 / dt_seconds));
  for (std::size_t i = 0; i < pulse_steps; ++i) {
    motion.accel[i] =
        amplitude * std::sin(2.0 * M_PI * frequency_hz * i * dt_seconds);
  }
  return motion;
}

GroundMotion Harmonic(double dt_seconds, std::size_t steps, double amplitude,
                      double frequency_hz) {
  GroundMotion motion;
  motion.dt_seconds = dt_seconds;
  motion.accel.resize(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    motion.accel[i] =
        amplitude * std::sin(2.0 * M_PI * frequency_hz * i * dt_seconds);
  }
  return motion;
}

std::string ToCsv(const GroundMotion& motion) {
  std::string out = "t,accel\n";
  for (std::size_t i = 0; i < motion.accel.size(); ++i) {
    out += util::Format("%.6f,%.8g\n", motion.dt_seconds * i, motion.accel[i]);
  }
  return out;
}

}  // namespace nees::structural
