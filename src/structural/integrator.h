// Time integrators for the equation of motion
//     M a + C v + r(d) = -M iota * ag(t)
//
// Two integrators matter for the reproduction:
//  * NewmarkBeta      — implicit reference solution for *linear* systems,
//                       used to validate the distributed runs (E5 agreement).
//  * CentralDifferencePsd — the explicit pseudo-dynamic (PSD) scheme used by
//                       MS-PSDS testing (§3): at each step the integrator
//                       produces a target displacement, hands it to a
//                       restoring-force source (numerical model OR physical
//                       specimen via NTCP), and uses the *measured* force to
//                       advance. This is exactly the coordinator's inner loop.
#pragma once

#include <functional>

#include "structural/groundmotion.h"
#include "structural/linalg.h"

namespace nees::structural {

struct TimeHistory {
  double dt_seconds = 0.0;
  std::vector<Vector> displacement;
  std::vector<Vector> velocity;
  std::vector<Vector> acceleration;

  /// Peak |displacement| at a given DOF over the whole record.
  double PeakDisplacement(std::size_t dof) const;
};

/// Newmark integration constants (defaults: average acceleration,
/// unconditionally stable for linear systems).
struct NewmarkParams {
  double beta = 0.25;
  double gamma = 0.5;
};

/// Linear Newmark-beta. Influence vector `iota` maps ground acceleration
/// into DOFs.
class NewmarkBeta {
 public:
  using Params = NewmarkParams;

  NewmarkBeta(Matrix mass, Matrix damping, Matrix stiffness, Vector iota,
              Params params = Params());

  util::Result<TimeHistory> Integrate(const GroundMotion& motion) const;

 private:
  Matrix mass_, damping_, stiffness_;
  Vector iota_;
  Params params_;
};

/// Restoring-force source: given target displacement, returns the measured
/// (or computed) restoring force. In the distributed experiment this is the
/// sum over substructure NTCP round trips; failures propagate as Status.
using RestoringForceFn =
    std::function<util::Result<Vector>(std::size_t step, const Vector& d)>;

/// Explicit central-difference pseudo-dynamic integrator:
///   d_{n+1} = Keff^{-1} [ F_n - r_n + (2M/dt^2) d_n - (M/dt^2 - C/2dt) d_{n-1} ]
/// with Keff = M/dt^2 + C/(2 dt). Conditionally stable: dt < T_min / pi.
class CentralDifferencePsd {
 public:
  CentralDifferencePsd(Matrix mass, Matrix damping, Vector iota);

  /// Runs the full record, pulling restoring forces from `restoring`.
  /// Stops early (returning the error) if the source fails — the behaviour
  /// whose operational consequences E6 reproduces.
  util::Result<TimeHistory> Integrate(const GroundMotion& motion,
                                      const RestoringForceFn& restoring) const;

  /// Stability limit dt_max = T_min/pi = 2/omega_max for a linear system.
  static double StableDtLimit(const Matrix& mass, const Matrix& stiffness);

 private:
  Matrix mass_, damping_;
  Vector iota_;
};

/// Operator-splitting (OS / Newmark-OS) pseudo-dynamic integrator, the
/// unconditionally stable scheme stiff PSD tests use (Nakashima et al.,
/// ref [14] family). Per step, with beta = 1/4, gamma = 1/2:
///   predictor:  d~ = d_n + dt v_n + dt^2 (1/2 - beta) a_n
///   measure:    r~ = r(d~)                      <- the NTCP round trips
///   corrector:  [M + gamma dt C + beta dt^2 K0] a_{n+1}
///                 = f_{n+1} - C v~ - r~ - K0 (d~ correction term omitted:
///                   the corrected displacement is d~ + beta dt^2 a_{n+1})
/// K0 is the *initial* stiffness estimate; for softening (yielding)
/// structures K_actual <= K0 keeps the scheme stable at any dt.
class OperatorSplittingPsd {
 public:
  OperatorSplittingPsd(Matrix mass, Matrix damping, Matrix initial_stiffness,
                       Vector iota);

  util::Result<TimeHistory> Integrate(const GroundMotion& motion,
                                      const RestoringForceFn& restoring) const;

 private:
  Matrix mass_, damping_, k0_;
  Vector iota_;
};

}  // namespace nees::structural
