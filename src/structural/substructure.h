// Substructure restoring-force models. MS-PSDS testing (§3) splits the
// structure into substructures that each map an imposed boundary
// displacement to a restoring force. These models back both the numerical
// substructures (NCSA's simulation) and the emulated physical specimens
// (the testbed module wraps them with actuator/sensor dynamics).
#pragma once

#include <memory>

#include "structural/linalg.h"
#include "util/result.h"

namespace nees::structural {

/// Maps boundary displacement -> restoring force. Stateful models (e.g.
/// hysteretic) update their internal state on each call, so calls must be
/// made once per time step in order.
class SubstructureModel {
 public:
  virtual ~SubstructureModel() = default;

  virtual std::size_t dof_count() const = 0;

  /// Applies the displacement and returns the restoring force.
  virtual util::Result<Vector> Restore(const Vector& displacement) = 0;

  /// Resets internal state to the undeformed configuration.
  virtual void Reset() {}
};

/// Linear elastic: r = K d.
class ElasticSubstructure final : public SubstructureModel {
 public:
  explicit ElasticSubstructure(Matrix stiffness);

  std::size_t dof_count() const override { return stiffness_.rows(); }
  util::Result<Vector> Restore(const Vector& displacement) override;
  const Matrix& stiffness() const { return stiffness_; }

 private:
  Matrix stiffness_;
};

/// Scalar Bouc–Wen hysteresis (1 DOF):
///   r = alpha k d + (1 - alpha) k z,
///   z' = d' [A - |z/dy|^n (gamma sgn(d' z) + beta)] / dy-normalized form.
/// The evolution is integrated per displacement increment (quasi-static,
/// which matches PSD loading). Models yielding steel columns.
class BoucWenSubstructure final : public SubstructureModel {
 public:
  struct Params {
    double elastic_stiffness = 1e6;  // N/m
    double yield_displacement = 0.01;  // m
    double alpha = 0.05;  // post-yield stiffness ratio
    double beta = 0.5;
    double gamma = 0.5;
    double exponent = 2.0;
    int substeps = 20;  // inner integration substeps per call
  };

  explicit BoucWenSubstructure(Params params);

  std::size_t dof_count() const override { return 1; }
  util::Result<Vector> Restore(const Vector& displacement) override;
  void Reset() override;

  double hysteretic_variable() const { return z_; }

 private:
  Params params_;
  double d_prev_ = 0.0;
  double z_ = 0.0;
};

/// First-order kinetic simulator (paper §3.5: "a program where the beam is
/// replaced by a first-order kinetic simulator ... applicable for testing
/// when the actual hardware is not available"): the reported displacement
/// relaxes toward the command with time constant tau, and the force is the
/// elastic response at the *relaxed* position.
class FirstOrderKineticSubstructure final : public SubstructureModel {
 public:
  struct Params {
    double stiffness = 1e5;       // N/m
    double time_constant = 0.05;  // s
    double dt = 0.02;             // s per Restore() call
  };

  explicit FirstOrderKineticSubstructure(Params params);

  std::size_t dof_count() const override { return 1; }
  util::Result<Vector> Restore(const Vector& displacement) override;
  void Reset() override;

  double position() const { return position_; }

 private:
  Params params_;
  double position_ = 0.0;
};

}  // namespace nees::structural
