#include "structural/substructure.h"

#include <algorithm>
#include <cmath>

namespace nees::structural {

ElasticSubstructure::ElasticSubstructure(Matrix stiffness)
    : stiffness_(std::move(stiffness)) {}

util::Result<Vector> ElasticSubstructure::Restore(
    const Vector& displacement) {
  if (displacement.size() != stiffness_.rows()) {
    return util::InvalidArgument("displacement dimension mismatch");
  }
  return stiffness_ * displacement;
}

BoucWenSubstructure::BoucWenSubstructure(Params params) : params_(params) {}

void BoucWenSubstructure::Reset() {
  d_prev_ = 0.0;
  z_ = 0.0;
}

util::Result<Vector> BoucWenSubstructure::Restore(
    const Vector& displacement) {
  if (displacement.size() != 1) {
    return util::InvalidArgument("BoucWen is a 1-DOF model");
  }
  const double d = displacement[0];
  const double dy = params_.yield_displacement;
  const double delta = (d - d_prev_) / params_.substeps;

  // z evolves in displacement (quasi-static Bouc–Wen):
  //   dz/dd = [1 - |z|^n (gamma sgn(dd * z) + beta)] with z normalized by dy.
  for (int i = 0; i < params_.substeps; ++i) {
    const double zn = std::pow(std::fabs(z_), params_.exponent);
    const double sign_term =
        (delta * z_ >= 0.0) ? (params_.gamma + params_.beta)
                            : (params_.gamma - params_.beta);
    const double dz = (delta / dy) * (1.0 - zn * sign_term);
    z_ += dz;
    // Keep z in its physical range [-1, 1] against integration overshoot.
    z_ = std::clamp(z_, -1.0, 1.0);
  }
  d_prev_ = d;

  const double k = params_.elastic_stiffness;
  const double force =
      params_.alpha * k * d + (1.0 - params_.alpha) * k * dy * z_;
  return Vector{force};
}

FirstOrderKineticSubstructure::FirstOrderKineticSubstructure(Params params)
    : params_(params) {}

void FirstOrderKineticSubstructure::Reset() { position_ = 0.0; }

util::Result<Vector> FirstOrderKineticSubstructure::Restore(
    const Vector& displacement) {
  if (displacement.size() != 1) {
    return util::InvalidArgument("kinetic simulator is a 1-DOF model");
  }
  const double target = displacement[0];
  const double decay = std::exp(-params_.dt / params_.time_constant);
  position_ = target + (position_ - target) * decay;
  return Vector{params_.stiffness * position_};
}

}  // namespace nees::structural
