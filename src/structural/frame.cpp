#include "structural/frame.h"

#include <cassert>

namespace nees::structural {

std::size_t FrameModel::AddNode(double x, double y) {
  nodes_.push_back(Node{x, y, {false, false, false}, 0.0});
  return nodes_.size() - 1;
}

void FrameModel::Fix(std::size_t node, Dof dof) {
  nodes_[node].fixed[static_cast<int>(dof)] = true;
}

void FrameModel::FixAll(std::size_t node) {
  nodes_[node].fixed = {true, true, true};
}

void FrameModel::AddLumpedMass(std::size_t node, double mass_kg) {
  nodes_[node].lumped_mass += mass_kg;
}

std::size_t FrameModel::AddElement(std::size_t node_i, std::size_t node_j,
                                   const Section& section) {
  assert(node_i < nodes_.size() && node_j < nodes_.size());
  elements_.push_back(BeamColumnElement{node_i, node_j, section});
  return elements_.size() - 1;
}

std::size_t FrameModel::FreeDofCount() const {
  std::size_t count = 0;
  for (const Node& node : nodes_) {
    for (bool fixed : node.fixed) {
      if (!fixed) ++count;
    }
  }
  return count;
}

std::optional<std::size_t> FrameModel::DofIndex(std::size_t node,
                                                Dof dof) const {
  if (nodes_[node].fixed[static_cast<int>(dof)]) return std::nullopt;
  std::size_t index = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (int d = 0; d < 3; ++d) {
      if (nodes_[n].fixed[d]) continue;
      if (n == node && d == static_cast<int>(dof)) return index;
      ++index;
    }
  }
  return std::nullopt;
}

namespace {

/// Free-DOF index for every (node, local dof), -1 if fixed.
std::vector<std::array<long, 3>> NumberDofs(const std::vector<Node>& nodes) {
  std::vector<std::array<long, 3>> map(nodes.size());
  long index = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (int d = 0; d < 3; ++d) {
      map[n][d] = nodes[n].fixed[d] ? -1 : index++;
    }
  }
  return map;
}

}  // namespace

Matrix FrameModel::AssembleStiffness() const {
  const auto dof_map = NumberDofs(nodes_);
  Matrix k(FreeDofCount(), FreeDofCount());
  for (const BeamColumnElement& element : elements_) {
    const Node& ni = nodes_[element.node_i];
    const Node& nj = nodes_[element.node_j];
    const Matrix ke = element.GlobalStiffness(ni.x, ni.y, nj.x, nj.y);
    const std::array<long, 6> g = {
        dof_map[element.node_i][0], dof_map[element.node_i][1],
        dof_map[element.node_i][2], dof_map[element.node_j][0],
        dof_map[element.node_j][1], dof_map[element.node_j][2]};
    for (int a = 0; a < 6; ++a) {
      if (g[a] < 0) continue;
      for (int b = 0; b < 6; ++b) {
        if (g[b] < 0) continue;
        k(static_cast<std::size_t>(g[a]), static_cast<std::size_t>(g[b])) +=
            ke(a, b);
      }
    }
  }
  return k;
}

Matrix FrameModel::AssembleMass(bool consistent) const {
  const auto dof_map = NumberDofs(nodes_);
  Matrix m(FreeDofCount(), FreeDofCount());
  for (const BeamColumnElement& element : elements_) {
    const Node& ni = nodes_[element.node_i];
    const Node& nj = nodes_[element.node_j];
    const double length = element.Length(ni.x, ni.y, nj.x, nj.y);
    Matrix me;
    if (consistent) {
      me = element.GlobalConsistentMass(ni.x, ni.y, nj.x, nj.y);
    } else {
      // Lumped mass is rotation-invariant (diagonal, equal in x and y).
      me = BeamColumnElement::LocalLumpedMass(element.section, length);
    }
    const std::array<long, 6> g = {
        dof_map[element.node_i][0], dof_map[element.node_i][1],
        dof_map[element.node_i][2], dof_map[element.node_j][0],
        dof_map[element.node_j][1], dof_map[element.node_j][2]};
    for (int a = 0; a < 6; ++a) {
      if (g[a] < 0) continue;
      for (int b = 0; b < 6; ++b) {
        if (g[b] < 0) continue;
        m(static_cast<std::size_t>(g[a]), static_cast<std::size_t>(g[b])) +=
            me(a, b);
      }
    }
  }
  // Nodal lumped masses on translational DOFs.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].lumped_mass == 0.0) continue;
    for (int d = 0; d < 2; ++d) {
      if (dof_map[n][d] < 0) continue;
      const auto i = static_cast<std::size_t>(dof_map[n][d]);
      m(i, i) += nodes_[n].lumped_mass;
    }
  }
  return m;
}

util::Result<Vector> FrameModel::SolveStatic(const Vector& load) const {
  const Matrix k = AssembleStiffness();
  if (load.size() != k.rows()) {
    return util::InvalidArgument("load vector size mismatch");
  }
  return SolveLinear(k, load);
}

util::Result<Matrix> FrameModel::CondenseStiffness(
    const std::vector<std::size_t>& retained) const {
  const Matrix k = AssembleStiffness();
  const std::size_t n = k.rows();
  std::vector<bool> keep(n, false);
  for (std::size_t r : retained) {
    if (r >= n) return util::OutOfRange("retained DOF out of range");
    keep[r] = true;
  }
  std::vector<std::size_t> interior;
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) interior.push_back(i);
  }

  const std::size_t nr = retained.size();
  const std::size_t ni = interior.size();
  Matrix krr(nr, nr), kri(nr, ni), kir(ni, nr), kii(ni, ni);
  for (std::size_t a = 0; a < nr; ++a) {
    for (std::size_t b = 0; b < nr; ++b) krr(a, b) = k(retained[a], retained[b]);
    for (std::size_t b = 0; b < ni; ++b) kri(a, b) = k(retained[a], interior[b]);
  }
  for (std::size_t a = 0; a < ni; ++a) {
    for (std::size_t b = 0; b < nr; ++b) kir(a, b) = k(interior[a], retained[b]);
    for (std::size_t b = 0; b < ni; ++b) kii(a, b) = k(interior[a], interior[b]);
  }
  if (ni == 0) return krr;
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(kii));
  return krr - kri * lu.Solve(kir);
}

Matrix FrameModel::RayleighDamping(const Matrix& mass, const Matrix& stiffness,
                                   double omega1, double omega2, double zeta) {
  // zeta = alpha/(2 w) + beta w / 2 at w1 and w2.
  const double alpha = 2.0 * zeta * omega1 * omega2 / (omega1 + omega2);
  const double beta = 2.0 * zeta / (omega1 + omega2);
  return mass * alpha + stiffness * beta;
}

}  // namespace nees::structural
