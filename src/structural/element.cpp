#include "structural/element.h"

#include <cmath>

namespace nees::structural {

double BeamColumnElement::Length(double xi, double yi, double xj,
                                 double yj) const {
  return std::hypot(xj - xi, yj - yi);
}

Matrix BeamColumnElement::LocalStiffness(const Section& section,
                                         double length) {
  const double e = section.youngs_modulus;
  const double a = section.area;
  const double i = section.moment_of_inertia;
  const double l = length;
  const double ea_l = e * a / l;
  const double ei = e * i;

  Matrix k(6, 6);
  // Axial terms.
  k(0, 0) = ea_l;
  k(0, 3) = -ea_l;
  k(3, 0) = -ea_l;
  k(3, 3) = ea_l;
  // Bending terms.
  const double k1 = 12.0 * ei / (l * l * l);
  const double k2 = 6.0 * ei / (l * l);
  const double k3 = 4.0 * ei / l;
  const double k4 = 2.0 * ei / l;
  k(1, 1) = k1;
  k(1, 2) = k2;
  k(1, 4) = -k1;
  k(1, 5) = k2;
  k(2, 1) = k2;
  k(2, 2) = k3;
  k(2, 4) = -k2;
  k(2, 5) = k4;
  k(4, 1) = -k1;
  k(4, 2) = -k2;
  k(4, 4) = k1;
  k(4, 5) = -k2;
  k(5, 1) = k2;
  k(5, 2) = k4;
  k(5, 4) = -k2;
  k(5, 5) = k3;
  return k;
}

Matrix BeamColumnElement::LocalConsistentMass(const Section& section,
                                              double length) {
  const double m = section.mass_per_length * length;
  const double l = length;
  Matrix mass(6, 6);
  // Axial (2-node bar consistent mass).
  mass(0, 0) = m / 3.0;
  mass(0, 3) = m / 6.0;
  mass(3, 0) = m / 6.0;
  mass(3, 3) = m / 3.0;
  // Bending (Euler–Bernoulli consistent mass).
  const double c = m / 420.0;
  mass(1, 1) = 156.0 * c;
  mass(1, 2) = 22.0 * l * c;
  mass(1, 4) = 54.0 * c;
  mass(1, 5) = -13.0 * l * c;
  mass(2, 1) = 22.0 * l * c;
  mass(2, 2) = 4.0 * l * l * c;
  mass(2, 4) = 13.0 * l * c;
  mass(2, 5) = -3.0 * l * l * c;
  mass(4, 1) = 54.0 * c;
  mass(4, 2) = 13.0 * l * c;
  mass(4, 4) = 156.0 * c;
  mass(4, 5) = -22.0 * l * c;
  mass(5, 1) = -13.0 * l * c;
  mass(5, 2) = -3.0 * l * l * c;
  mass(5, 4) = -22.0 * l * c;
  mass(5, 5) = 4.0 * l * l * c;
  return mass;
}

Matrix BeamColumnElement::LocalLumpedMass(const Section& section,
                                          double length) {
  const double half = section.mass_per_length * length / 2.0;
  Matrix mass(6, 6);
  mass(0, 0) = half;
  mass(1, 1) = half;
  mass(3, 3) = half;
  mass(4, 4) = half;
  return mass;
}

Matrix BeamColumnElement::Transformation(double cos_a, double sin_a) {
  Matrix t(6, 6);
  for (int block = 0; block < 2; ++block) {
    const std::size_t o = 3 * block;
    t(o + 0, o + 0) = cos_a;
    t(o + 0, o + 1) = sin_a;
    t(o + 1, o + 0) = -sin_a;
    t(o + 1, o + 1) = cos_a;
    t(o + 2, o + 2) = 1.0;
  }
  return t;
}

Matrix BeamColumnElement::GlobalStiffness(double xi, double yi, double xj,
                                          double yj) const {
  const double l = Length(xi, yi, xj, yj);
  const double cos_a = (xj - xi) / l;
  const double sin_a = (yj - yi) / l;
  const Matrix t = Transformation(cos_a, sin_a);
  return t.Transpose() * LocalStiffness(section, l) * t;
}

Matrix BeamColumnElement::GlobalConsistentMass(double xi, double yi,
                                               double xj, double yj) const {
  const double l = Length(xi, yi, xj, yj);
  const double cos_a = (xj - xi) / l;
  const double sin_a = (yj - yi) / l;
  const Matrix t = Transformation(cos_a, sin_a);
  return t.Transpose() * LocalConsistentMass(section, l) * t;
}

double CantileverLateralStiffness(const Section& section, double length) {
  return 3.0 * section.youngs_modulus * section.moment_of_inertia /
         (length * length * length);
}

double FixedFixedLateralStiffness(const Section& section, double length) {
  return 12.0 * section.youngs_modulus * section.moment_of_inertia /
         (length * length * length);
}

}  // namespace nees::structural
