#include "structural/linalg.h"

#include <cassert>
#include <cmath>

namespace nees::structural {

Vector operator+(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector operator*(double scalar, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = scalar * v[i];
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double NormInf(const Vector& v) {
  double max = 0.0;
  for (double x : v) max = std::max(max, std::fabs(x));
  return max;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * scalar;
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::Distance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool Matrix::IsSymmetric(double tolerance) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tolerance) return false;
    }
  }
  return true;
}

util::Result<LuFactorization> LuFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return util::InvalidArgument("LU requires a square matrix");
  }
  const std::size_t n = a.rows();
  LuFactorization f;
  f.lu_ = a;
  f.pivots_.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.pivots_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at/below the diagonal.
    std::size_t pivot_row = col;
    double pivot_value = std::fabs(f.lu_(col, col));
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(f.lu_(row, col)) > pivot_value) {
        pivot_value = std::fabs(f.lu_(row, col));
        pivot_row = row;
      }
    }
    if (pivot_value < 1e-13) {
      return util::FailedPrecondition("matrix is singular");
    }
    if (pivot_row != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(f.lu_(col, j), f.lu_(pivot_row, j));
      }
      std::swap(f.pivots_[col], f.pivots_[pivot_row]);
      f.pivot_sign_ = -f.pivot_sign_;
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      f.lu_(row, col) /= f.lu_(col, col);
      const double factor = f.lu_(row, col);
      for (std::size_t j = col + 1; j < n; ++j) {
        f.lu_(row, j) -= factor * f.lu_(col, j);
      }
    }
  }
  return f;
}

Vector LuFactorization::Solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivots_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

Matrix LuFactorization::Solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
    const Vector solved = Solve(column);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = solved[i];
  }
  return x;
}

double LuFactorization::Determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

util::Result<Vector> SolveLinear(const Matrix& a, const Vector& b) {
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Solve(b);
}

util::Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return util::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!a.IsSymmetric(1e-8)) {
    return util::FailedPrecondition("Cholesky requires a symmetric matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return util::FailedPrecondition("matrix is not positive definite");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

util::Result<Matrix> Inverse(const Matrix& a) {
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Solve(Matrix::Identity(a.rows()));
}

util::Result<double> LargestEigenvalue(const Matrix& a, int iterations) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    return util::InvalidArgument("eigenvalue estimate requires square matrix");
  }
  Vector v(a.rows(), 1.0);
  v[0] = 1.3;  // break symmetry against eigenvector-orthogonal starts
  double lambda = 0.0;
  for (int i = 0; i < iterations; ++i) {
    Vector w = a * v;
    const double norm = Norm2(w);
    if (norm < 1e-300) return util::FailedPrecondition("matrix maps to zero");
    v = (1.0 / norm) * w;
    lambda = Dot(v, a * v) / Dot(v, v);
  }
  return lambda;
}

util::Result<double> SmallestEigenvalue(const Matrix& a, int iterations) {
  NEES_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  Vector v(a.rows(), 1.0);
  v[0] = 1.3;
  double mu = 0.0;
  for (int i = 0; i < iterations; ++i) {
    Vector w = lu.Solve(v);
    const double norm = Norm2(w);
    if (norm < 1e-300) return util::FailedPrecondition("inverse maps to zero");
    v = (1.0 / norm) * w;
    mu = Dot(v, a * v) / Dot(v, v);
  }
  return mu;
}

}  // namespace nees::structural
