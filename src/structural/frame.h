// Plane-frame finite element model: nodes, members, boundary conditions,
// global assembly, static solves, Guyan (static) condensation, and Rayleigh
// damping. The MOST structure (Fig. 4) and the soil-structure follow-on
// (§5) are built from this.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "structural/element.h"
#include "structural/linalg.h"

namespace nees::structural {

/// Per-node DOFs in order: u (horizontal), v (vertical), theta (rotation).
enum class Dof { kUx = 0, kUy = 1, kRz = 2 };

struct Node {
  double x = 0.0;
  double y = 0.0;
  std::array<bool, 3> fixed = {false, false, false};
  /// Extra lumped mass attached at this node (per translational DOF), kg.
  double lumped_mass = 0.0;
};

class FrameModel {
 public:
  /// Returns the node index.
  std::size_t AddNode(double x, double y);
  /// Fixes a DOF (support).
  void Fix(std::size_t node, Dof dof);
  void FixAll(std::size_t node);
  void AddLumpedMass(std::size_t node, double mass_kg);

  /// Connects two nodes with a beam-column; returns element index.
  std::size_t AddElement(std::size_t node_i, std::size_t node_j,
                         const Section& section);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t element_count() const { return elements_.size(); }
  const Node& node(std::size_t i) const { return nodes_[i]; }

  /// Number of free (unconstrained) DOFs after numbering.
  std::size_t FreeDofCount() const;
  /// Global free-DOF index of (node, dof), or nullopt if fixed.
  std::optional<std::size_t> DofIndex(std::size_t node, Dof dof) const;

  /// Assembled stiffness/mass over free DOFs.
  Matrix AssembleStiffness() const;
  Matrix AssembleMass(bool consistent = true) const;

  /// Static solve: displacement of free DOFs under nodal loads.
  util::Result<Vector> SolveStatic(const Vector& load) const;

  /// Guyan condensation of the stiffness to the `retained` free-DOF indices
  /// (the interface DOFs shared with other substructures):
  ///   K_c = K_rr - K_ri K_ii^{-1} K_ir
  util::Result<Matrix> CondenseStiffness(
      const std::vector<std::size_t>& retained) const;

  /// Rayleigh damping C = alpha M + beta K calibrated so the two given
  /// circular frequencies (rad/s) both see damping ratio `zeta`.
  static Matrix RayleighDamping(const Matrix& mass, const Matrix& stiffness,
                                double omega1, double omega2, double zeta);

 private:
  std::vector<Node> nodes_;
  std::vector<BeamColumnElement> elements_;
};

}  // namespace nees::structural
