// GridFTP-sim: secure, checksummed, multi-stream file transport over the
// simulated network — the reproduction's stand-in for GridFTP [3], which
// the NEESgrid repository used for all file movement (§2.3, §3.2).
//
// The protocol is pull/push in fixed-size chunks. A logical transfer is
// striped across `streams` interleaved chunk sequences; with a
// bandwidth-limited link this models GridFTP's parallel-stream behaviour
// (bench E3 sweeps stream count). Every completed transfer is verified
// against its SHA-256 digest; a mismatch fails with kDataLoss.
//
// RPC surface:
//   gftp.stat        {path} -> {size, sha256hex}
//   gftp.read        {path, offset, length} -> bytes
//   gftp.openWrite   {path, size, sha256hex} -> {transfer_id}
//   gftp.writeChunk  {transfer_id, offset, bytes} -> {}
//   gftp.commit      {transfer_id} -> {}    (verifies checksum, installs)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/mutex.h"

#include "net/rpc.h"
#include "repo/filestore.h"
#include "util/result.h"

namespace nees::repo {

class GridFtpServer {
 public:
  GridFtpServer(net::Network* network, std::string endpoint,
                FileStore* store);

  util::Status Start();
  void Stop();

  const std::string& endpoint() const { return rpc_server_.endpoint(); }
  net::RpcServer& rpc() { return rpc_server_; }

  /// Incomplete uploads currently buffered.
  std::size_t pending_uploads() const;

 private:
  struct PendingUpload {
    std::string path;
    std::string sha256hex;
    Bytes buffer;
    std::size_t received = 0;
  };

  net::RpcServer rpc_server_;
  FileStore* store_;
  mutable util::Mutex mu_{"repo.GridFtpServer"};
  std::map<std::string, PendingUpload> uploads_;
  std::uint64_t next_transfer_id_ = 1;
};

struct TransferOptions {
  std::size_t chunk_bytes = 16 * 1024;
  int streams = 4;           // interleaved chunk sequences
  int chunk_retries = 3;     // transient-failure retries per chunk
  std::int64_t rpc_timeout_micros = 5'000'000;
};

struct TransferReport {
  std::size_t bytes = 0;
  int chunks = 0;
  int retried_chunks = 0;
};

class GridFtpClient {
 public:
  GridFtpClient(net::RpcClient* rpc, TransferOptions options = {});

  /// Downloads a remote file, verifying its checksum.
  util::Result<Bytes> Download(const std::string& server,
                               const std::string& path);

  /// Uploads and commits; the server verifies the checksum before install.
  util::Status Upload(const std::string& server, const std::string& path,
                      const Bytes& content);

  const TransferReport& last_report() const { return last_report_; }

 private:
  util::Result<net::Bytes> CallChunked(const std::string& server,
                                       const std::string& method,
                                       const net::Bytes& body);
  /// Runs `work(stream)` on options_.streams threads; returns first error.
  util::Status RunStreams(
      const std::function<util::Status(int stream)>& work);

  net::RpcClient* rpc_;
  TransferOptions options_;
  TransferReport last_report_;
  std::atomic<int> chunks_{0};
  std::atomic<int> retried_{0};
};

/// Lowercase hex SHA-256 of a byte buffer (shared by client and server).
std::string ContentDigest(const Bytes& content);

}  // namespace nees::repo
