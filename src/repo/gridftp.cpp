#include "repo/gridftp.h"

#include <algorithm>
#include <thread>

#include "util/sha256.h"

namespace nees::repo {

std::string ContentDigest(const Bytes& content) {
  return util::ToHex(util::Sha256::Hash(content));
}

GridFtpServer::GridFtpServer(net::Network* network, std::string endpoint,
                             FileStore* store)
    : rpc_server_(network, std::move(endpoint)), store_(store) {}

util::Status GridFtpServer::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "gftp.stat",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string path, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(Bytes content, store_->Get(path));
        util::ByteWriter writer;
        writer.WriteU64(content.size());
        writer.WriteString(ContentDigest(content));
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "gftp.read",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string path, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint64_t offset, reader.ReadU64());
        NEES_ASSIGN_OR_RETURN(std::uint64_t length, reader.ReadU64());
        NEES_ASSIGN_OR_RETURN(Bytes content, store_->Get(path));
        if (offset > content.size()) {
          return util::OutOfRange("read past end of file");
        }
        const std::size_t take =
            std::min<std::size_t>(length, content.size() - offset);
        util::ByteWriter writer;
        writer.WriteBytes(
            Bytes(content.begin() + offset, content.begin() + offset + take));
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "gftp.openWrite",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string path, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint64_t size, reader.ReadU64());
        NEES_ASSIGN_OR_RETURN(std::string digest, reader.ReadString());
        util::MutexLock lock(mu_);
        const std::string id = "xfer-" + std::to_string(next_transfer_id_++);
        PendingUpload upload;
        upload.path = path;
        upload.sha256hex = digest;
        upload.buffer.resize(size);
        uploads_[id] = std::move(upload);
        util::ByteWriter writer;
        writer.WriteString(id);
        return writer.Take();
      });
  rpc_server_.RegisterMethod(
      "gftp.writeChunk",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint64_t offset, reader.ReadU64());
        NEES_ASSIGN_OR_RETURN(Bytes chunk, reader.ReadBytes());
        util::MutexLock lock(mu_);
        auto it = uploads_.find(id);
        if (it == uploads_.end()) {
          return util::NotFound("unknown transfer: " + id);
        }
        if (offset + chunk.size() > it->second.buffer.size()) {
          return util::OutOfRange("chunk past declared size");
        }
        std::copy(chunk.begin(), chunk.end(),
                  it->second.buffer.begin() + offset);
        it->second.received += chunk.size();
        return net::Bytes{};
      });
  rpc_server_.RegisterMethod(
      "gftp.commit",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        PendingUpload upload;
        {
          util::MutexLock lock(mu_);
          auto it = uploads_.find(id);
          if (it == uploads_.end()) {
            return util::NotFound("unknown transfer: " + id);
          }
          upload = std::move(it->second);
          uploads_.erase(it);
        }
        if (ContentDigest(upload.buffer) != upload.sha256hex) {
          return util::DataLoss("upload checksum mismatch for " + upload.path);
        }
        store_->Put(upload.path, std::move(upload.buffer));
        return net::Bytes{};
      });
  return util::OkStatus();
}

void GridFtpServer::Stop() { rpc_server_.Stop(); }

std::size_t GridFtpServer::pending_uploads() const {
  util::MutexLock lock(mu_);
  return uploads_.size();
}

GridFtpClient::GridFtpClient(net::RpcClient* rpc, TransferOptions options)
    : rpc_(rpc), options_(options) {}

util::Result<net::Bytes> GridFtpClient::CallChunked(const std::string& server,
                                                    const std::string& method,
                                                    const net::Bytes& body) {
  util::Status last = util::Internal("chunk retry loop did not run");
  for (int attempt = 0; attempt <= options_.chunk_retries; ++attempt) {
    auto result =
        rpc_->Call(server, method, body, options_.rpc_timeout_micros);
    if (result.ok()) {
      if (attempt > 0) ++retried_;
      return result;
    }
    last = result.status();
    if (!last.transient()) return last;
  }
  return last;
}

util::Status GridFtpClient::RunStreams(
    const std::function<util::Status(int stream)>& work) {
  const int streams = std::max(options_.streams, 1);
  if (streams == 1) return work(0);
  util::Mutex status_mu{"repo.GridFtpClient.streams"};
  util::Status first_error;
  std::vector<std::thread> workers;
  for (int stream = 1; stream < streams; ++stream) {
    workers.emplace_back([&, stream] {
      const util::Status status = work(stream);
      if (!status.ok()) {
        util::MutexLock lock(status_mu);
        if (first_error.ok()) first_error = status;
      }
    });
  }
  const util::Status status = work(0);
  for (std::thread& worker : workers) worker.join();
  {
    util::MutexLock lock(status_mu);
    if (!status.ok() && first_error.ok()) first_error = status;
    return first_error;
  }
}

util::Result<Bytes> GridFtpClient::Download(const std::string& server,
                                            const std::string& path) {
  last_report_ = {};
  chunks_ = 0;
  retried_ = 0;
  util::ByteWriter stat_writer;
  stat_writer.WriteString(path);
  NEES_ASSIGN_OR_RETURN(net::Bytes stat_reply,
                        CallChunked(server, "gftp.stat", stat_writer.Take()));
  util::ByteReader stat_reader(stat_reply);
  NEES_ASSIGN_OR_RETURN(std::uint64_t size, stat_reader.ReadU64());
  NEES_ASSIGN_OR_RETURN(std::string digest, stat_reader.ReadString());

  Bytes content(size);
  const std::size_t chunk = options_.chunk_bytes;
  const std::size_t total_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;

  // Stripe chunks round-robin across parallel streams, each on its own
  // thread: over a latency-bearing WAN the per-chunk round trips overlap,
  // which is exactly why GridFTP stripes transfers.
  auto fetch_stream = [&](int stream) -> util::Status {
    for (std::size_t index = static_cast<std::size_t>(stream);
         index < total_chunks;
         index += static_cast<std::size_t>(options_.streams)) {
      const std::size_t offset = index * chunk;
      const std::size_t want = std::min(chunk, size - offset);
      util::ByteWriter read_writer;
      read_writer.WriteString(path);
      read_writer.WriteU64(offset);
      read_writer.WriteU64(want);
      NEES_ASSIGN_OR_RETURN(
          net::Bytes reply,
          CallChunked(server, "gftp.read", read_writer.Take()));
      util::ByteReader reply_reader(reply);
      NEES_ASSIGN_OR_RETURN(Bytes piece, reply_reader.ReadBytes());
      if (piece.size() != want) {
        return util::DataLoss("short read at offset " +
                              std::to_string(offset));
      }
      // Streams write disjoint ranges of `content`; no locking needed.
      std::copy(piece.begin(), piece.end(), content.begin() + offset);
      ++chunks_;
    }
    return util::OkStatus();
  };
  NEES_RETURN_IF_ERROR(RunStreams(fetch_stream));
  last_report_.bytes = content.size();
  last_report_.chunks = chunks_;
  last_report_.retried_chunks = retried_;

  if (ContentDigest(content) != digest) {
    return util::DataLoss("download checksum mismatch for " + path);
  }
  return content;
}

util::Status GridFtpClient::Upload(const std::string& server,
                                   const std::string& path,
                                   const Bytes& content) {
  last_report_ = {};
  chunks_ = 0;
  retried_ = 0;
  util::ByteWriter open_writer;
  open_writer.WriteString(path);
  open_writer.WriteU64(content.size());
  open_writer.WriteString(ContentDigest(content));
  NEES_ASSIGN_OR_RETURN(
      net::Bytes open_reply,
      CallChunked(server, "gftp.openWrite", open_writer.Take()));
  util::ByteReader open_reader(open_reply);
  NEES_ASSIGN_OR_RETURN(std::string transfer_id, open_reader.ReadString());

  const std::size_t chunk = options_.chunk_bytes;
  const std::size_t total_chunks =
      content.empty() ? 0 : (content.size() + chunk - 1) / chunk;
  auto push_stream = [&](int stream) -> util::Status {
    for (std::size_t index = static_cast<std::size_t>(stream);
         index < total_chunks;
         index += static_cast<std::size_t>(options_.streams)) {
      const std::size_t offset = index * chunk;
      const std::size_t take = std::min(chunk, content.size() - offset);
      util::ByteWriter chunk_writer;
      chunk_writer.WriteString(transfer_id);
      chunk_writer.WriteU64(offset);
      chunk_writer.WriteBytes(Bytes(content.begin() + offset,
                                    content.begin() + offset + take));
      NEES_RETURN_IF_ERROR(
          CallChunked(server, "gftp.writeChunk", chunk_writer.Take())
              .status());
      ++chunks_;
    }
    return util::OkStatus();
  };
  NEES_RETURN_IF_ERROR(RunStreams(push_stream));
  last_report_.bytes = content.size();
  last_report_.chunks = chunks_;
  last_report_.retried_chunks = retried_;

  util::ByteWriter commit_writer;
  commit_writer.WriteString(transfer_id);
  return CallChunked(server, "gftp.commit", commit_writer.Take()).status();
}

}  // namespace nees::repo
