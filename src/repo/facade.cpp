#include "repo/facade.h"

#include <fstream>
#include <set>

#include "util/strings.h"

namespace nees::repo {

RepositoryFacade::RepositoryFacade(net::Network* network, std::string endpoint)
    : rpc_server_(network, std::move(endpoint)),
      gridftp_(network, rpc_server_.endpoint() + ".gftp", &store_) {}

util::Status RepositoryFacade::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  NEES_RETURN_IF_ERROR(gridftp_.Start());
  nmds_.BindRpc(rpc_server_);
  nfms_.BindRpc(rpc_server_);
  return util::OkStatus();
}

void RepositoryFacade::Stop() {
  gridftp_.Stop();
  rpc_server_.Stop();
}

void RepositoryFacade::EnableCapabilityAuthorization(
    std::uint64_t cas_public_key, util::Clock* clock) {
  auto authenticator =
      [cas_public_key, clock](
          const std::string& token,
          const std::string& method) -> util::Result<std::string> {
    static const std::set<std::string> kWriteMethods = {
        "nmds.put",       "nfms.register",   "gftp.openWrite",
        "gftp.writeChunk", "gftp.commit"};
    if (!kWriteMethods.contains(method)) return std::string();  // open read
    if (token.empty()) {
      return util::Unauthenticated("repository write requires a CAS "
                                   "capability");
    }
    NEES_ASSIGN_OR_RETURN(security::Capability capability,
                          security::CapabilityFromToken(token));
    if (capability.resource != kRepositoryResource ||
        capability.action != "write") {
      return util::PermissionDenied("capability does not grant repository "
                                    "write");
    }
    NEES_RETURN_IF_ERROR(security::VerifyCapability(capability,
                                                    cas_public_key,
                                                    clock->NowMicros()));
    return capability.subject;
  };
  rpc_server_.SetAuthenticator(authenticator);
  gridftp_.rpc().SetAuthenticator(authenticator);
}

util::Status RepositoryFacade::Ingest(
    const std::string& logical_name, const Bytes& content,
    const std::string& type,
    std::map<std::string, std::string> metadata_fields,
    const std::string& subject) {
  const std::string physical = "files/" + logical_name;
  store_.Put(physical, content);

  FileEntry entry;
  entry.logical_name = logical_name;
  entry.server_endpoint = gridftp_.endpoint();
  entry.physical_path = physical;
  entry.size_bytes = content.size();
  entry.sha256hex = ContentDigest(content);
  nfms_.RegisterFile(entry);

  MetadataObject object;
  object.id = "file:" + logical_name;
  object.type = type;
  object.fields = std::move(metadata_fields);
  object.fields["logical_name"] = logical_name;
  object.fields["size_bytes"] = std::to_string(content.size());
  object.fields["sha256"] = entry.sha256hex;
  return nmds_.Put(std::move(object), subject).status();
}

util::Result<Bytes> RepositoryFacade::Fetch(const std::string& logical_name) {
  NEES_ASSIGN_OR_RETURN(TransferTicket ticket, nfms_.Negotiate(logical_name));
  NEES_ASSIGN_OR_RETURN(Bytes content, store_.Get(ticket.physical_path));
  if (ContentDigest(content) != ticket.sha256hex) {
    return util::DataLoss("stored content fails checksum for " +
                          logical_name);
  }
  return content;
}

// ---------------------------------------------------------------------------
// IngestionTool

IngestionTool::IngestionTool(net::RpcClient* rpc,
                             std::string repository_endpoint,
                             std::string experiment_id, std::string site)
    : rpc_(rpc),
      repository_(std::move(repository_endpoint)),
      experiment_id_(std::move(experiment_id)),
      site_(std::move(site)) {}

util::Status IngestionTool::IngestDropFile(
    const std::filesystem::path& file,
    const std::vector<nsds::DataSample>& samples) {
  // Read the raw bytes back (the repository stores the original file).
  std::ifstream in(file, std::ios::binary);
  if (!in) return util::NotFound("cannot reopen " + file.string());
  Bytes content((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());

  const std::string logical =
      experiment_id_ + "/daq/" + site_ + "/" + file.filename().string();

  // 1. Bytes via GridFTP-sim.
  GridFtpClient gridftp(rpc_);
  NEES_RETURN_IF_ERROR(
      gridftp.Upload(repository_ + ".gftp", "files/" + logical, content));

  // 2. Location via NFMS.
  NfmsClient nfms(rpc_, repository_);
  FileEntry entry;
  entry.logical_name = logical;
  entry.server_endpoint = repository_ + ".gftp";
  entry.physical_path = "files/" + logical;
  entry.size_bytes = content.size();
  entry.sha256hex = ContentDigest(content);
  NEES_RETURN_IF_ERROR(nfms.RegisterFile(entry));

  // 3. Description via NMDS.
  std::int64_t t_min = 0, t_max = 0;
  if (!samples.empty()) {
    t_min = t_max = samples.front().time_micros;
    for (const nsds::DataSample& sample : samples) {
      t_min = std::min(t_min, sample.time_micros);
      t_max = std::max(t_max, sample.time_micros);
    }
  }
  NmdsClient nmds(rpc_, repository_);
  MetadataObject object;
  object.id = "file:" + logical;
  object.type = "daq-data";
  object.fields["experiment"] = experiment_id_;
  object.fields["site"] = site_;
  object.fields["samples"] = std::to_string(samples.size());
  object.fields["t_min_micros"] = std::to_string(t_min);
  object.fields["t_max_micros"] = std::to_string(t_max);
  object.fields["logical_name"] = logical;
  NEES_RETURN_IF_ERROR(nmds.Put(object).status());

  ++files_ingested_;
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// HttpsBridge

HttpsBridge::HttpsBridge(net::Network* network, std::string endpoint,
                         std::string repository_endpoint)
    : rpc_server_(network, std::move(endpoint)),
      rpc_client_(network, rpc_server_.endpoint() + ".client"),
      repository_(std::move(repository_endpoint)) {}

util::Status HttpsBridge::Start() {
  NEES_RETURN_IF_ERROR(rpc_server_.Start());
  rpc_server_.RegisterMethod(
      "https.get",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string logical, reader.ReadString());
        NfmsClient nfms(&rpc_client_, repository_);
        nfms.RegisterTransport(
            std::make_unique<GridFtpTransport>(&rpc_client_));
        NEES_ASSIGN_OR_RETURN(Bytes content, nfms.Fetch(logical));
        util::ByteWriter writer;
        writer.WriteBytes(content);
        return writer.Take();
      });
  return util::OkStatus();
}

util::Result<Bytes> HttpsGet(net::RpcClient* rpc, const std::string& bridge,
                             const std::string& logical_name) {
  util::ByteWriter writer;
  writer.WriteString(logical_name);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc->Call(bridge, "https.get", writer.Take()));
  util::ByteReader reader(reply);
  return reader.ReadBytes();
}

}  // namespace nees::repo
