// NEESgrid Metadata Service (NMDS, §2.3): creates, updates, manages, and
// validates metadata. Distinctive properties the paper calls out, all
// reproduced here:
//   * schemas are FIRST-CLASS objects — a schema is itself a metadata
//     object (type "schema") and can be versioned/managed like any other;
//   * per-object version control — every Put appends a new version, and
//     any historical version remains retrievable;
//   * per-object authorization — the creating subject owns the object;
//     writers can be granted per object.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "util/result.h"

namespace nees::repo {

struct MetadataObject {
  std::string id;     // unique, e.g. "most.experiment" or "schema.daq-file"
  std::string type;   // domain type; "schema" for schema objects
  std::map<std::string, std::string> fields;
  // Server-assigned:
  std::int64_t version = 0;  // 1-based, increments per Put
  std::string owner;

  bool operator==(const MetadataObject&) const = default;
};

void EncodeMetadataObject(const MetadataObject& object,
                          util::ByteWriter& writer);
util::Result<MetadataObject> DecodeMetadataObject(util::ByteReader& reader);

/// Schema semantics: a schema object's fields map entries of the form
///   "field.<name>" -> "string" | "number" | "optional-string" | "optional-number"
/// An object validates against the schema if every non-optional field is
/// present and every present declared field parses per its type.
util::Status ValidateAgainstSchema(const MetadataObject& object,
                                   const MetadataObject& schema);

class NmdsService {
 public:
  /// Creates or updates. On create the caller becomes owner; on update the
  /// caller must be the owner or a granted writer. If the object carries a
  /// "schema" field, it is validated against that schema (latest version)
  /// before being stored. Returns the stored version number.
  util::Result<std::int64_t> Put(MetadataObject object,
                                 const std::string& subject);

  /// Latest version.
  util::Result<MetadataObject> Get(const std::string& id) const;
  /// Specific version (1-based).
  util::Result<MetadataObject> GetVersion(const std::string& id,
                                          std::int64_t version) const;
  /// Number of stored versions (0 if unknown).
  std::int64_t VersionCount(const std::string& id) const;

  /// Latest version of every object with the given type ("" = all).
  std::vector<MetadataObject> Query(const std::string& type) const;

  /// Grants `subject` write access to an existing object (owner-only op).
  util::Status GrantWrite(const std::string& id, const std::string& owner,
                          const std::string& subject);

  /// Validates `object` against the latest version of schema `schema_id`.
  util::Status Validate(const MetadataObject& object,
                        const std::string& schema_id) const;

  /// Binds nmds.* RPC methods; the authenticated subject (from the GSI
  /// handshake) is used for ownership checks.
  void BindRpc(net::RpcServer& server);

 private:
  util::Status CheckWritableLocked(const std::string& id,
                                   const std::string& subject) const;

  mutable util::Mutex mu_{"repo.NmdsService"};
  std::map<std::string, std::vector<MetadataObject>> history_;
  std::map<std::string, std::set<std::string>> writers_;
};

/// Client for the nmds.* RPC surface.
class NmdsClient {
 public:
  NmdsClient(net::RpcClient* rpc, std::string server_endpoint);

  util::Result<std::int64_t> Put(const MetadataObject& object);
  util::Result<MetadataObject> Get(const std::string& id);
  util::Result<MetadataObject> GetVersion(const std::string& id,
                                          std::int64_t version);
  util::Result<std::vector<MetadataObject>> Query(const std::string& type);

 private:
  net::RpcClient* rpc_;
  std::string server_;
};

}  // namespace nees::repo
