// NEESgrid File Management Service (NFMS, §2.3). Two capabilities the
// paper names explicitly:
//   * logical file naming — applications use stable logical names; NFMS
//     resolves them to a physical (server, path) location;
//   * transport neutrality — "applications negotiate file transfers with
//     NFMS, which resolves a transfer request for a logical file to a
//     protocol request for a physical resource", with "a plug-in API that
//     allows other transport protocols to be used if desired".
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "net/rpc.h"
#include "repo/gridftp.h"
#include "util/result.h"

namespace nees::repo {

struct FileEntry {
  std::string logical_name;  // e.g. "most/daq/uiuc/run1_000001.csv"
  std::string protocol = "gridftp-sim";
  std::string server_endpoint;  // where the bytes live
  std::string physical_path;    // path on that server's store
  std::size_t size_bytes = 0;
  std::string sha256hex;
};

/// The outcome of transfer negotiation: everything a transport plugin
/// needs to move the bytes.
struct TransferTicket {
  std::string protocol;
  std::string server_endpoint;
  std::string physical_path;
  std::string sha256hex;
};

/// Transport plugin API (the paper's plug-in point).
class TransportPlugin {
 public:
  virtual ~TransportPlugin() = default;
  virtual util::Result<Bytes> Fetch(const TransferTicket& ticket) = 0;
  virtual util::Status Store(const TransferTicket& ticket,
                             const Bytes& content) = 0;
  virtual std::string_view protocol() const = 0;
};

/// GridFTP-sim transport plugin (the default, as in NEESgrid).
class GridFtpTransport final : public TransportPlugin {
 public:
  explicit GridFtpTransport(net::RpcClient* rpc, TransferOptions options = {});
  util::Result<Bytes> Fetch(const TransferTicket& ticket) override;
  util::Status Store(const TransferTicket& ticket,
                     const Bytes& content) override;
  std::string_view protocol() const override { return "gridftp-sim"; }

 private:
  GridFtpClient client_;
};

class NfmsService {
 public:
  /// Registers (or updates) the location of a logical file.
  void RegisterFile(const FileEntry& entry);
  util::Status Unregister(const std::string& logical_name);

  util::Result<FileEntry> Lookup(const std::string& logical_name) const;
  std::vector<FileEntry> List(const std::string& logical_prefix) const;

  /// Transfer negotiation: resolves a logical name to a protocol ticket,
  /// preferring the first protocol in `accepted_protocols` the entry
  /// supports ("" entry list accepts anything).
  util::Result<TransferTicket> Negotiate(
      const std::string& logical_name,
      const std::vector<std::string>& accepted_protocols = {}) const;

  /// Binds nfms.* RPC methods.
  void BindRpc(net::RpcServer& server);

 private:
  mutable util::Mutex mu_{"repo.NfmsService"};
  std::map<std::string, FileEntry> entries_;
};

/// Client-side: negotiation via RPC + pluggable transports for the fetch.
class NfmsClient {
 public:
  NfmsClient(net::RpcClient* rpc, std::string nfms_endpoint);

  void RegisterTransport(std::unique_ptr<TransportPlugin> transport);

  util::Status RegisterFile(const FileEntry& entry);
  util::Result<FileEntry> Lookup(const std::string& logical_name);
  util::Result<std::vector<FileEntry>> List(const std::string& prefix);

  /// Negotiate + fetch through the matching transport plugin.
  util::Result<Bytes> Fetch(const std::string& logical_name);

 private:
  net::RpcClient* rpc_;
  std::string nfms_;
  std::map<std::string, std::unique_ptr<TransportPlugin>, std::less<>>
      transports_;
};

void EncodeFileEntry(const FileEntry& entry, util::ByteWriter& writer);
util::Result<FileEntry> DecodeFileEntry(util::ByteReader& reader);

}  // namespace nees::repo
