#include "repo/filestore.h"

#include "util/strings.h"

namespace nees::repo {

void FileStore::Put(const std::string& path, Bytes content) {
  util::MutexLock lock(mu_);
  files_[path] = std::move(content);
}

util::Result<Bytes> FileStore::Get(const std::string& path) const {
  util::MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return util::NotFound("no file: " + path);
  return it->second;
}

bool FileStore::Exists(const std::string& path) const {
  util::MutexLock lock(mu_);
  return files_.contains(path);
}

util::Result<std::size_t> FileStore::Size(const std::string& path) const {
  util::MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return util::NotFound("no file: " + path);
  return it->second.size();
}

std::vector<std::string> FileStore::List(const std::string& prefix) const {
  util::MutexLock lock(mu_);
  std::vector<std::string> paths;
  for (const auto& [path, content] : files_) {
    (void)content;
    if (util::StartsWith(path, prefix)) paths.push_back(path);
  }
  return paths;
}

util::Status FileStore::Remove(const std::string& path) {
  util::MutexLock lock(mu_);
  if (files_.erase(path) == 0) return util::NotFound("no file: " + path);
  return util::OkStatus();
}

std::size_t FileStore::count() const {
  util::MutexLock lock(mu_);
  return files_.size();
}

std::size_t FileStore::total_bytes() const {
  util::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [path, content] : files_) {
    (void)path;
    total += content.size();
  }
  return total;
}

}  // namespace nees::repo
