// In-memory content store backing a site's GridFTP-sim server (the
// repository's disk). Paths are opaque strings ("daq/uiuc/run1_000001.csv").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.h"

#include "util/result.h"

namespace nees::repo {

using Bytes = std::vector<std::uint8_t>;

class FileStore {
 public:
  void Put(const std::string& path, Bytes content);
  util::Result<Bytes> Get(const std::string& path) const;
  bool Exists(const std::string& path) const;
  util::Result<std::size_t> Size(const std::string& path) const;
  std::vector<std::string> List(const std::string& prefix) const;
  util::Status Remove(const std::string& path);
  std::size_t count() const;
  std::size_t total_bytes() const;

 private:
  mutable util::Mutex mu_{"repo.FileStore"};
  std::map<std::string, Bytes> files_;
};

}  // namespace nees::repo
