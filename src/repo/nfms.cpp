#include "repo/nfms.h"

#include <algorithm>

#include "util/strings.h"

namespace nees::repo {

void EncodeFileEntry(const FileEntry& entry, util::ByteWriter& writer) {
  writer.WriteString(entry.logical_name);
  writer.WriteString(entry.protocol);
  writer.WriteString(entry.server_endpoint);
  writer.WriteString(entry.physical_path);
  writer.WriteU64(entry.size_bytes);
  writer.WriteString(entry.sha256hex);
}

util::Result<FileEntry> DecodeFileEntry(util::ByteReader& reader) {
  FileEntry entry;
  NEES_ASSIGN_OR_RETURN(entry.logical_name, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(entry.protocol, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(entry.server_endpoint, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(entry.physical_path, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::uint64_t size, reader.ReadU64());
  entry.size_bytes = size;
  NEES_ASSIGN_OR_RETURN(entry.sha256hex, reader.ReadString());
  return entry;
}

GridFtpTransport::GridFtpTransport(net::RpcClient* rpc,
                                   TransferOptions options)
    : client_(rpc, options) {}

util::Result<Bytes> GridFtpTransport::Fetch(const TransferTicket& ticket) {
  return client_.Download(ticket.server_endpoint, ticket.physical_path);
}

util::Status GridFtpTransport::Store(const TransferTicket& ticket,
                                     const Bytes& content) {
  return client_.Upload(ticket.server_endpoint, ticket.physical_path,
                        content);
}

void NfmsService::RegisterFile(const FileEntry& entry) {
  util::MutexLock lock(mu_);
  entries_[entry.logical_name] = entry;
}

util::Status NfmsService::Unregister(const std::string& logical_name) {
  util::MutexLock lock(mu_);
  if (entries_.erase(logical_name) == 0) {
    return util::NotFound("no logical file: " + logical_name);
  }
  return util::OkStatus();
}

util::Result<FileEntry> NfmsService::Lookup(
    const std::string& logical_name) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(logical_name);
  if (it == entries_.end()) {
    return util::NotFound("no logical file: " + logical_name);
  }
  return it->second;
}

std::vector<FileEntry> NfmsService::List(
    const std::string& logical_prefix) const {
  util::MutexLock lock(mu_);
  std::vector<FileEntry> results;
  for (const auto& [name, entry] : entries_) {
    if (util::StartsWith(name, logical_prefix)) results.push_back(entry);
  }
  return results;
}

util::Result<TransferTicket> NfmsService::Negotiate(
    const std::string& logical_name,
    const std::vector<std::string>& accepted_protocols) const {
  NEES_ASSIGN_OR_RETURN(FileEntry entry, Lookup(logical_name));
  if (!accepted_protocols.empty() &&
      std::find(accepted_protocols.begin(), accepted_protocols.end(),
                entry.protocol) == accepted_protocols.end()) {
    return util::FailedPrecondition(
        "no mutually acceptable transport for " + logical_name +
        " (file is served via " + entry.protocol + ")");
  }
  TransferTicket ticket;
  ticket.protocol = entry.protocol;
  ticket.server_endpoint = entry.server_endpoint;
  ticket.physical_path = entry.physical_path;
  ticket.sha256hex = entry.sha256hex;
  return ticket;
}

void NfmsService::BindRpc(net::RpcServer& server) {
  server.RegisterMethod(
      "nfms.register",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(FileEntry entry, DecodeFileEntry(reader));
        RegisterFile(entry);
        return net::Bytes{};
      });
  server.RegisterMethod(
      "nfms.lookup",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(FileEntry entry, Lookup(name));
        util::ByteWriter writer;
        EncodeFileEntry(entry, writer);
        return writer.Take();
      });
  server.RegisterMethod(
      "nfms.list",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string prefix, reader.ReadString());
        const auto results = List(prefix);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(results.size()));
        for (const FileEntry& entry : results) {
          EncodeFileEntry(entry, writer);
        }
        return writer.Take();
      });
  server.RegisterMethod(
      "nfms.negotiate",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
        std::vector<std::string> protocols;
        for (std::uint32_t i = 0; i < count; ++i) {
          NEES_ASSIGN_OR_RETURN(std::string protocol, reader.ReadString());
          protocols.push_back(std::move(protocol));
        }
        NEES_ASSIGN_OR_RETURN(TransferTicket ticket,
                              Negotiate(name, protocols));
        util::ByteWriter writer;
        writer.WriteString(ticket.protocol);
        writer.WriteString(ticket.server_endpoint);
        writer.WriteString(ticket.physical_path);
        writer.WriteString(ticket.sha256hex);
        return writer.Take();
      });
}

NfmsClient::NfmsClient(net::RpcClient* rpc, std::string nfms_endpoint)
    : rpc_(rpc), nfms_(std::move(nfms_endpoint)) {}

void NfmsClient::RegisterTransport(
    std::unique_ptr<TransportPlugin> transport) {
  transports_[std::string(transport->protocol())] = std::move(transport);
}

util::Status NfmsClient::RegisterFile(const FileEntry& entry) {
  util::ByteWriter writer;
  EncodeFileEntry(entry, writer);
  return rpc_->Call(nfms_, "nfms.register", writer.Take()).status();
}

util::Result<FileEntry> NfmsClient::Lookup(const std::string& logical_name) {
  util::ByteWriter writer;
  writer.WriteString(logical_name);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(nfms_, "nfms.lookup", writer.Take()));
  util::ByteReader reader(reply);
  return DecodeFileEntry(reader);
}

util::Result<std::vector<FileEntry>> NfmsClient::List(
    const std::string& prefix) {
  util::ByteWriter writer;
  writer.WriteString(prefix);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(nfms_, "nfms.list", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<FileEntry> results;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(FileEntry entry, DecodeFileEntry(reader));
    results.push_back(std::move(entry));
  }
  return results;
}

util::Result<Bytes> NfmsClient::Fetch(const std::string& logical_name) {
  util::ByteWriter writer;
  writer.WriteString(logical_name);
  std::vector<std::string> protocols;
  protocols.reserve(transports_.size());
  for (const auto& [protocol, transport] : transports_) {
    (void)transport;
    protocols.push_back(protocol);
  }
  writer.WriteU32(static_cast<std::uint32_t>(protocols.size()));
  for (const std::string& protocol : protocols) writer.WriteString(protocol);

  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(nfms_, "nfms.negotiate", writer.Take()));
  util::ByteReader reader(reply);
  TransferTicket ticket;
  NEES_ASSIGN_OR_RETURN(ticket.protocol, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(ticket.server_endpoint, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(ticket.physical_path, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(ticket.sha256hex, reader.ReadString());

  auto transport = transports_.find(ticket.protocol);
  if (transport == transports_.end()) {
    return util::FailedPrecondition("no local transport for protocol " +
                                    ticket.protocol);
  }
  return transport->second->Fetch(ticket);
}

}  // namespace nees::repo
