// Repository facade + ingestion + https bridge (Fig. 3).
//
// "These components are coupled using the Facade pattern, but may be used
// independently" (§2.3): RepositoryFacade wires one site's NMDS + NFMS +
// GridFTP-sim server over a shared FileStore, giving the one-call ingest /
// fetch operations the ingestion tool and CHEF viewers use.
//
// IngestionTool: "uploads data and metadata to the repository as an
// experiment is run" — it is the Harvester sink: each DAQ drop file becomes
// a stored file + a metadata object describing it.
//
// HttpsBridge: "a servlet that acts as a bridge between GridFTP and https"
// — a thin read-only endpoint ("https.get") that fetches a logical file
// through NFMS/GridFTP and returns the bytes, for clients that speak only
// the web protocol (CHEF).
#pragma once

#include <memory>

#include "daq/daq.h"
#include "repo/nfms.h"
#include "repo/nmds.h"
#include "security/cas.h"
#include "util/clock.h"

namespace nees::repo {

/// Resource name repository capabilities are issued against.
inline constexpr const char* kRepositoryResource = "repository";

class RepositoryFacade {
 public:
  /// Brings up the repository's RPC endpoint (`endpoint`), hosting nmds.*,
  /// nfms.*, and gftp.* methods backed by one FileStore.
  RepositoryFacade(net::Network* network, std::string endpoint);

  util::Status Start();
  void Stop();

  /// Enables CAS-based access control (the §3.3 "areas to be more fully
  /// developed in later releases, such [as] CAS-based access control"):
  /// write methods (nmds.put, nfms.register, gftp.openWrite/writeChunk/
  /// commit) then require the caller's auth token to be a capability signed
  /// by the CAS whose public key is given, naming the "repository" resource
  /// with action "write". Reads stay open. The capability's subject becomes
  /// the authenticated subject (so NMDS ownership works unchanged).
  void EnableCapabilityAuthorization(std::uint64_t cas_public_key,
                                     util::Clock* clock);

  /// Stores bytes under "files/<logical>" locally, registers the logical
  /// name in NFMS, and puts a metadata object (id = "file:<logical>").
  /// `metadata_fields` is merged into the object.
  util::Status Ingest(const std::string& logical_name, const Bytes& content,
                      const std::string& type,
                      std::map<std::string, std::string> metadata_fields,
                      const std::string& subject = "ingest");

  /// Negotiated fetch by logical name (server side, no network hop).
  util::Result<Bytes> Fetch(const std::string& logical_name);

  NmdsService& nmds() { return nmds_; }
  NfmsService& nfms() { return nfms_; }
  FileStore& store() { return store_; }
  net::RpcServer& rpc() { return rpc_server_; }
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

 private:
  net::RpcServer rpc_server_;
  FileStore store_;
  GridFtpServer gridftp_;
  NmdsService nmds_;
  NfmsService nfms_;
};

/// Harvester sink that uploads each DAQ drop file to a (possibly remote)
/// repository: bytes via GridFTP-sim, location via NFMS, description via
/// NMDS — the §3.2 pipeline.
class IngestionTool {
 public:
  IngestionTool(net::RpcClient* rpc, std::string repository_endpoint,
                std::string experiment_id, std::string site);

  /// The daq::Harvester::FileSink signature.
  util::Status IngestDropFile(const std::filesystem::path& file,
                              const std::vector<nsds::DataSample>& samples);

  std::uint64_t files_ingested() const { return files_ingested_; }

 private:
  net::RpcClient* rpc_;
  std::string repository_;
  std::string experiment_id_;
  std::string site_;
  std::uint64_t files_ingested_ = 0;
};

/// Read-only https analog in front of the repository.
class HttpsBridge {
 public:
  HttpsBridge(net::Network* network, std::string endpoint,
              std::string repository_endpoint);

  util::Status Start();
  const std::string& endpoint() const { return rpc_server_.endpoint(); }

 private:
  net::RpcServer rpc_server_;
  net::RpcClient rpc_client_;
  std::string repository_;
};

/// Convenience: fetch through the https bridge ("GET <logical>").
util::Result<Bytes> HttpsGet(net::RpcClient* rpc, const std::string& bridge,
                             const std::string& logical_name);

}  // namespace nees::repo
