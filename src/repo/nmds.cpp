#include "repo/nmds.h"

#include "util/strings.h"

namespace nees::repo {

void EncodeMetadataObject(const MetadataObject& object,
                          util::ByteWriter& writer) {
  writer.WriteString(object.id);
  writer.WriteString(object.type);
  writer.WriteU32(static_cast<std::uint32_t>(object.fields.size()));
  for (const auto& [key, value] : object.fields) {
    writer.WriteString(key);
    writer.WriteString(value);
  }
  writer.WriteI64(object.version);
  writer.WriteString(object.owner);
}

util::Result<MetadataObject> DecodeMetadataObject(util::ByteReader& reader) {
  MetadataObject object;
  NEES_ASSIGN_OR_RETURN(object.id, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(object.type, reader.ReadString());
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    NEES_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
    object.fields[std::move(key)] = std::move(value);
  }
  NEES_ASSIGN_OR_RETURN(object.version, reader.ReadI64());
  NEES_ASSIGN_OR_RETURN(object.owner, reader.ReadString());
  return object;
}

util::Status ValidateAgainstSchema(const MetadataObject& object,
                                   const MetadataObject& schema) {
  if (schema.type != "schema") {
    return util::InvalidArgument(schema.id + " is not a schema object");
  }
  static constexpr std::string_view kPrefix = "field.";
  for (const auto& [key, spec] : schema.fields) {
    if (!util::StartsWith(key, kPrefix)) continue;
    const std::string field_name = key.substr(kPrefix.size());
    const bool optional = util::StartsWith(spec, "optional-");
    const std::string base_type =
        optional ? spec.substr(std::string("optional-").size()) : spec;

    auto it = object.fields.find(field_name);
    if (it == object.fields.end()) {
      if (optional) continue;
      return util::FailedPrecondition("missing required field '" +
                                      field_name + "' (schema " + schema.id +
                                      " v" + std::to_string(schema.version) +
                                      ")");
    }
    if (base_type == "number") {
      double parsed = 0.0;
      if (!util::ParseDouble(it->second, &parsed)) {
        return util::FailedPrecondition("field '" + field_name +
                                        "' must be a number, got '" +
                                        it->second + "'");
      }
    } else if (base_type != "string") {
      return util::InvalidArgument("schema " + schema.id +
                                   " declares unknown type '" + base_type +
                                   "' for field '" + field_name + "'");
    }
  }
  return util::OkStatus();
}

util::Status NmdsService::CheckWritableLocked(
    const std::string& id, const std::string& subject) const {
  auto it = history_.find(id);
  if (it == history_.end()) return util::OkStatus();  // create
  const std::string& owner = it->second.back().owner;
  if (owner == subject) return util::OkStatus();
  auto writer_set = writers_.find(id);
  if (writer_set != writers_.end() && writer_set->second.contains(subject)) {
    return util::OkStatus();
  }
  return util::PermissionDenied(subject + " may not update " + id +
                                " (owned by " + owner + ")");
}

util::Result<std::int64_t> NmdsService::Put(MetadataObject object,
                                            const std::string& subject) {
  if (object.id.empty()) return util::InvalidArgument("object id required");
  util::MutexLock lock(mu_);
  NEES_RETURN_IF_ERROR(CheckWritableLocked(object.id, subject));

  // Validate against the referenced schema, if any.
  auto schema_ref = object.fields.find("schema");
  if (schema_ref != object.fields.end()) {
    auto schema_history = history_.find(schema_ref->second);
    if (schema_history == history_.end()) {
      return util::NotFound("schema not found: " + schema_ref->second);
    }
    NEES_RETURN_IF_ERROR(
        ValidateAgainstSchema(object, schema_history->second.back()));
  }

  auto& versions = history_[object.id];
  object.version = static_cast<std::int64_t>(versions.size()) + 1;
  object.owner = versions.empty() ? subject : versions.back().owner;
  versions.push_back(object);
  return object.version;
}

util::Result<MetadataObject> NmdsService::Get(const std::string& id) const {
  util::MutexLock lock(mu_);
  auto it = history_.find(id);
  if (it == history_.end()) return util::NotFound("no object: " + id);
  return it->second.back();
}

util::Result<MetadataObject> NmdsService::GetVersion(
    const std::string& id, std::int64_t version) const {
  util::MutexLock lock(mu_);
  auto it = history_.find(id);
  if (it == history_.end()) return util::NotFound("no object: " + id);
  if (version < 1 || version > static_cast<std::int64_t>(it->second.size())) {
    return util::OutOfRange("no version " + std::to_string(version) +
                            " of " + id);
  }
  return it->second[version - 1];
}

std::int64_t NmdsService::VersionCount(const std::string& id) const {
  util::MutexLock lock(mu_);
  auto it = history_.find(id);
  return it == history_.end() ? 0
                              : static_cast<std::int64_t>(it->second.size());
}

std::vector<MetadataObject> NmdsService::Query(const std::string& type) const {
  util::MutexLock lock(mu_);
  std::vector<MetadataObject> results;
  for (const auto& [id, versions] : history_) {
    (void)id;
    if (type.empty() || versions.back().type == type) {
      results.push_back(versions.back());
    }
  }
  return results;
}

util::Status NmdsService::GrantWrite(const std::string& id,
                                     const std::string& owner,
                                     const std::string& subject) {
  util::MutexLock lock(mu_);
  auto it = history_.find(id);
  if (it == history_.end()) return util::NotFound("no object: " + id);
  if (it->second.back().owner != owner) {
    return util::PermissionDenied("only the owner may grant write access");
  }
  writers_[id].insert(subject);
  return util::OkStatus();
}

void NmdsService::BindRpc(net::RpcServer& server) {
  server.RegisterMethod(
      "nmds.put",
      [this](const net::CallContext& context,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(MetadataObject object,
                              DecodeMetadataObject(reader));
        const std::string subject =
            context.subject.empty() ? "anonymous" : context.subject;
        NEES_ASSIGN_OR_RETURN(std::int64_t version,
                              Put(std::move(object), subject));
        util::ByteWriter writer;
        writer.WriteI64(version);
        return writer.Take();
      });
  server.RegisterMethod(
      "nmds.get",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string id, reader.ReadString());
        NEES_ASSIGN_OR_RETURN(std::int64_t version, reader.ReadI64());
        MetadataObject object;
        if (version <= 0) {
          NEES_ASSIGN_OR_RETURN(object, Get(id));
        } else {
          NEES_ASSIGN_OR_RETURN(object, GetVersion(id, version));
        }
        util::ByteWriter writer;
        EncodeMetadataObject(object, writer);
        return writer.Take();
      });
  server.RegisterMethod(
      "nmds.query",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        util::ByteReader reader(body);
        NEES_ASSIGN_OR_RETURN(std::string type, reader.ReadString());
        const auto results = Query(type);
        util::ByteWriter writer;
        writer.WriteU32(static_cast<std::uint32_t>(results.size()));
        for (const MetadataObject& object : results) {
          EncodeMetadataObject(object, writer);
        }
        return writer.Take();
      });
}

NmdsClient::NmdsClient(net::RpcClient* rpc, std::string server_endpoint)
    : rpc_(rpc), server_(std::move(server_endpoint)) {}

util::Result<std::int64_t> NmdsClient::Put(const MetadataObject& object) {
  util::ByteWriter writer;
  EncodeMetadataObject(object, writer);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(server_, "nmds.put", writer.Take()));
  util::ByteReader reader(reply);
  return reader.ReadI64();
}

util::Result<MetadataObject> NmdsClient::Get(const std::string& id) {
  return GetVersion(id, 0);
}

util::Result<MetadataObject> NmdsClient::GetVersion(const std::string& id,
                                                    std::int64_t version) {
  util::ByteWriter writer;
  writer.WriteString(id);
  writer.WriteI64(version);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(server_, "nmds.get", writer.Take()));
  util::ByteReader reader(reply);
  return DecodeMetadataObject(reader);
}

util::Result<std::vector<MetadataObject>> NmdsClient::Query(
    const std::string& type) {
  util::ByteWriter writer;
  writer.WriteString(type);
  NEES_ASSIGN_OR_RETURN(net::Bytes reply,
                        rpc_->Call(server_, "nmds.query", writer.Take()));
  util::ByteReader reader(reply);
  NEES_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadU32());
  std::vector<MetadataObject> results;
  for (std::uint32_t i = 0; i < count; ++i) {
    NEES_ASSIGN_OR_RETURN(MetadataObject object,
                          DecodeMetadataObject(reader));
    results.push_back(std::move(object));
  }
  return results;
}

}  // namespace nees::repo
