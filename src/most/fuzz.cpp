#include "most/fuzz.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "check/checker.h"
#include "net/network.h"
#include "net/rpc.h"
#include "ntcp/server.h"
#include "obs/trace.h"
#include "plugins/mplugin.h"
#include "structural/groundmotion.h"
#include "structural/substructure.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wal/wal.h"

namespace nees::most {
namespace {

std::string SiteNtcpEndpoint(std::size_t i) {
  return util::Format("ntcp.s%zu", i);
}
std::string BackendEndpoint(std::size_t i) {
  return util::Format("backend.s%zu", i);
}
std::string WakeEndpoint(std::size_t i) { return util::Format("wake.s%zu", i); }
std::string NotifierEndpoint(std::size_t i) {
  return util::Format("notify.s%zu", i);
}

constexpr char kCoordinatorEndpoint[] = "fuzz.coordinator";
constexpr char kControlPoint[] = "cp";

bool FaultEnabled(std::uint64_t mask, std::size_t index) {
  return index >= 64 || (mask & (1ULL << index)) != 0;
}

bool HistoriesIdentical(const structural::TimeHistory& a,
                        const structural::TimeHistory& b) {
  return a.dt_seconds == b.dt_seconds && a.displacement == b.displacement &&
         a.velocity == b.velocity && a.acceleration == b.acceleration;
}

/// One site's full server-side stack — one process *incarnation*. A crash
/// discards it and a fresh one is rebuilt over the durable state.
/// Declaration order doubles as a safe destruction order (backend stops
/// before the RPC plumbing it uses).
struct SiteHarness {
  std::unique_ptr<wal::Log> wal;             // this incarnation's log handle
  std::unique_ptr<ntcp::NtcpServer> server;  // owns the MPlugin
  plugins::MPlugin* plugin = nullptr;
  std::unique_ptr<net::RpcClient> backend_rpc;  // backend -> plugin calls
  std::unique_ptr<net::RpcClient> notify_tx;    // plugin -> backend wakes
  std::unique_ptr<net::RpcServer> wake_server;  // hosts "mplugin.wake"
  std::unique_ptr<plugins::VirtualPollingBackend> backend;
};

/// One site across the whole run: what survives a crash (the WAL storage,
/// the physical specimen) plus the live incarnation and the graveyard of
/// dead ones. Dead stacks are kept, not destroyed: a crash timer can fire
/// while the dying site's own frames (a pumping plugin Execute, an RPC
/// handler) are still on the stack below it, so destruction is deferred to
/// end of run. A dead stack is inert — its plugin is shut down, its
/// endpoints are unregistered, and every send it attempts is swallowed by
/// the network's crashed-endpoint filter.
struct SiteSlot {
  wal::MemoryStorage storage;  // durable: survives the crash
  std::shared_ptr<
      std::map<std::string, std::unique_ptr<structural::SubstructureModel>>>
      models;                  // the physical specimen never resets
  std::unique_ptr<SiteHarness> live;
  std::vector<std::unique_ptr<SiteHarness>> graveyard;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t transactions_recovered = 0;
  std::uint64_t inflight_failed = 0;
};

}  // namespace

std::string FuzzFault::ToString() const {
  switch (kind) {
    case Kind::kOutage:
      return util::Format(
          "outage  site=%zu dir=%s at=%lldus dur=%lldus", site,
          to_site ? "coord->site" : "site->coord",
          static_cast<long long>(at_micros),
          static_cast<long long>(duration_micros));
    case Kind::kDropNext:
      return util::Format("drop    site=%zu dir=%s at=%lldus count=%d", site,
                          to_site ? "coord->site" : "site->coord",
                          static_cast<long long>(at_micros), count);
    case Kind::kWakeDrop:
      return util::Format("wakedrop site=%zu at=%lldus count=%d", site,
                          static_cast<long long>(at_micros), count);
    case Kind::kSiteCrashRestart:
      return util::Format("crash   site=%zu at=%lldus downtime=%lldus", site,
                          static_cast<long long>(at_micros),
                          static_cast<long long>(duration_micros));
  }
  return "?";
}

std::string_view EngineName(psd::StepEngine engine) {
  switch (engine) {
    case psd::StepEngine::kSequential:
      return "sequential";
    case psd::StepEngine::kThreadPerSite:
      return "thread-per-site";
    case psd::StepEngine::kAsync:
      return "async";
  }
  return "?";
}

std::string FuzzScenario::Describe() const {
  std::string out = util::Format(
      "seed=%llu sites=%zu steps=%zu engine=%s heartbeat=%lldus "
      "expiry=%lldus faults=%zu\n",
      static_cast<unsigned long long>(seed), sites, steps,
      std::string(EngineName(engine)).c_str(),
      static_cast<long long>(heartbeat_micros),
      static_cast<long long>(expiry_period_micros), faults.size());
  for (std::size_t i = 0; i < site_links.size(); ++i) {
    out += util::Format(
        "  link s%zu: latency=%lldus jitter=%lldus drop=%.4f\n", i,
        static_cast<long long>(site_links[i].latency_micros),
        static_cast<long long>(site_links[i].jitter_micros),
        site_links[i].drop_probability);
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out += util::Format("  fault[bit %zu] %s\n", i, faults[i].ToString().c_str());
  }
  return out;
}

FuzzScenario GenerateScenario(std::uint64_t seed) {
  // Each dimension draws from its own forked lane so widening one (say,
  // adding a fault kind) never shifts another dimension's values for the
  // same seed.
  util::Rng root(seed);
  util::Rng topo = root.Fork(1);
  util::Rng links = root.Fork(2);
  util::Rng engines = root.Fork(3);
  util::Rng timing = root.Fork(4);
  util::Rng faults = root.Fork(5);
  util::Rng crashes = root.Fork(6);

  FuzzScenario s;
  s.seed = seed;
  s.sites = static_cast<std::size_t>(topo.UniformInt(3, 32));
  s.steps = static_cast<std::size_t>(topo.UniformInt(8, 24));
  // kThreadPerSite is excluded: threads break virtual-time determinism.
  s.engine = engines.Bernoulli(0.5) ? psd::StepEngine::kAsync
                                    : psd::StepEngine::kSequential;
  s.heartbeat_micros = 1000LL * timing.UniformInt(150, 400);
  s.expiry_period_micros = 1000LL * timing.UniformInt(200, 1000);

  for (std::size_t i = 0; i < s.sites; ++i) {
    net::LinkModel m;
    m.latency_micros = 1000LL * links.UniformInt(1, 80);
    m.jitter_micros = 1000LL * links.UniformInt(0, 10);
    // Lossy links on roughly a third of sites, bounded so six attempts
    // virtually never all drop (the completion oracle must stay sound).
    m.drop_probability =
        links.Bernoulli(0.35) ? links.UniformDouble(0.0, 0.05) : 0.0;
    s.site_links.push_back(m);
  }

  // Fault schedule: scattered over a horizon that comfortably covers the
  // run (a faulty step takes well under 400ms of virtual time on average).
  const std::int64_t horizon = static_cast<std::int64_t>(s.steps) * 400'000;
  const int fault_count = faults.UniformInt(0, 8);
  for (int j = 0; j < fault_count; ++j) {
    FuzzFault f;
    switch (faults.UniformInt(0, 2)) {
      case 0:
        f.kind = FuzzFault::Kind::kOutage;
        break;
      case 1:
        f.kind = FuzzFault::Kind::kDropNext;
        break;
      default:
        f.kind = FuzzFault::Kind::kWakeDrop;
        break;
    }
    f.site = static_cast<std::size_t>(
        faults.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.to_site = faults.Bernoulli(0.5);
    f.at_micros = 1000LL * faults.UniformInt(
                               100, static_cast<int>(horizon / 1000));
    // Outages stay far under the ~4.5s retry span (6 attempts x 500ms
    // timeout plus backoffs), so every schedule is survivable and the
    // completion oracle is sound by construction.
    f.duration_micros = 1000LL * faults.UniformInt(100, 1500);
    f.count = faults.UniformInt(1, 3);
    s.faults.push_back(f);
  }

  // Crash/restart faults draw from their own lane and are appended AFTER
  // the base schedule, so adding this fault class shifted neither the base
  // faults' values nor their mask bits for any pre-existing seed. Downtime
  // (250ms–1.2s) stays far under the coordinator's ~6s re-proposal
  // tolerance (4 step attempts x ~1.55s of dead-site RPC backoff), keeping
  // the completion oracle sound by construction.
  const int crash_count = crashes.UniformInt(0, 2);
  for (int j = 0; j < crash_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kSiteCrashRestart;
    f.site = static_cast<std::size_t>(
        crashes.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * crashes.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * crashes.UniformInt(250, 1200);
    s.faults.push_back(f);
  }
  return s;
}

FuzzOutcome RunFuzzCase(const FuzzScenario& scenario,
                        std::uint64_t fault_mask) {
  FuzzOutcome out;

  // Oracle 5 (lockdep builds): no lock-order inversion, wait-while-holding,
  // or blocking-RPC-under-lock may appear during the run. Snapshot the
  // global count so violations from earlier cases aren't re-billed here.
  const std::size_t lockdep_before = util::lockdep::ViolationCount();

  net::Network network(net::DeliveryMode::kVirtual, scenario.seed);
  // modeled == nullptr: in kVirtual the wall clock IS the modeled timeline;
  // letting the tracer advance a second SimClock would double-count time.
  obs::Tracer tracer(network.clock(), nullptr);
  network.set_tracer(&tracer);

  net::LinkModel local;  // backend-local plumbing: fast, clean
  local.latency_micros = 200;
  network.SetDefaultLink(local);

  // --- per-site stacks -------------------------------------------------------
  std::vector<std::unique_ptr<SiteSlot>> sites;
  std::vector<std::string> ntcp_endpoints;
  // Split a fixed total stiffness across sites so the structure (and the
  // central-difference stability bound) doesn't change with site count.
  const double site_stiffness = 4.0e6 / static_cast<double>(scenario.sites);

  // Builds one process incarnation over the slot's durable state (WAL
  // storage + specimen models) and recovers from whatever the log holds.
  // Used both at startup (empty log -> fresh state) and on revival.
  auto build_site_stack = [&](std::size_t i, SiteSlot& slot) {
    auto harness = std::make_unique<SiteHarness>();
    const std::string ntcp_ep = SiteNtcpEndpoint(i);

    plugins::MPluginConfig mconfig;
    mconfig.execute_timeout_micros = 30'000'000;  // virtual; generous
    auto plugin = std::make_unique<plugins::MPlugin>(mconfig);
    harness->plugin = plugin.get();
    harness->server = std::make_unique<ntcp::NtcpServer>(
        &network, ntcp_ep, std::move(plugin), network.clock());
    harness->server->set_tracer(&tracer);
    harness->server->Start();
    // Recovery before traffic: replay the surviving log (unsynced tail was
    // lost at the crash), crash-mark interrupted executions, then log
    // every new transition durably.
    harness->wal = std::make_unique<wal::Log>(&slot.storage);
    const auto recovered = harness->server->AttachWal(harness->wal.get());
    if (recovered.ok()) {
      slot.transactions_recovered += recovered->transactions_recovered;
      slot.inflight_failed += recovered->inflight_failed;
    } else {
      out.failures.push_back(util::Format(
          "wal: site %zu failed to recover from its log: %s", i,
          recovered.status().ToString().c_str()));
    }
    harness->plugin->AttachVirtualNetwork(&network);
    harness->plugin->BindBackendRpc(harness->server->rpc());
    harness->server->ArmExpiryTimer(&network, scenario.expiry_period_micros);

    harness->backend_rpc =
        std::make_unique<net::RpcClient>(&network, BackendEndpoint(i));
    harness->wake_server =
        std::make_unique<net::RpcServer>(&network, WakeEndpoint(i));
    harness->wake_server->Start();
    harness->backend = std::make_unique<plugins::VirtualPollingBackend>(
        &network, harness->backend_rpc.get(), ntcp_ep,
        plugins::MakeSimulationCompute(slot.models),
        scenario.heartbeat_micros);
    harness->backend->BindWakeRpc(*harness->wake_server);
    harness->backend->Start();

    // The wake notification crosses the network on its own directed link
    // (notify.sN -> wake.sN) so kWakeDrop faults can sever exactly that
    // path without touching poll/notify traffic.
    harness->notify_tx =
        std::make_unique<net::RpcClient>(&network, NotifierEndpoint(i));
    net::RpcClient* tx = harness->notify_tx.get();
    const std::string wake_ep = WakeEndpoint(i);
    harness->plugin->SetWorkNotifier(
        [tx, wake_ep] { (void)tx->OneWay(wake_ep, "mplugin.wake", {}); });

    slot.live = std::move(harness);
  };

  for (std::size_t i = 0; i < scenario.sites; ++i) {
    auto slot = std::make_unique<SiteSlot>();
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    ntcp_endpoints.push_back(ntcp_ep);

    network.SetLink(kCoordinatorEndpoint, ntcp_ep, scenario.site_links[i]);
    network.SetLink(ntcp_ep, kCoordinatorEndpoint, scenario.site_links[i]);

    slot->models = std::make_shared<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>();
    structural::Matrix k(1, 1);
    k(0, 0) = site_stiffness;
    (*slot->models)[kControlPoint] =
        std::make_unique<structural::ElasticSubstructure>(k);

    build_site_stack(i, *slot);
    sites.push_back(std::move(slot));
  }

  // Kills site i's whole process: the WAL's unsynced tail is lost, every
  // endpoint vanishes, zombie stack frames unwind against a dead backend
  // and write to the void. Returns false if the site is already dead
  // (overlapping crash faults — the earlier crash's revival stands).
  auto kill_site = [&](std::size_t i) -> bool {
    SiteSlot& slot = *sites[i];
    if (slot.live == nullptr) return false;
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    tracer.RecordEvent(
        "site.crash", "fault", 0,
        {{"endpoint", ntcp_ep},
         {"site", util::Format("S%zu", i)},
         {"at", std::to_string(network.clock()->NowMicros())}});
    // The kernel view of the crash: the unsynced WAL tail is gone and every
    // write from the dead process is swallowed from here on.
    slot.storage.Crash();
    // A dead process emits no telemetry.
    slot.live->server->set_tracer(nullptr);
    // Tear down timers and endpoint registrations; mark all four of the
    // site's endpoints crashed so sends from zombie frames go nowhere.
    slot.live->backend->Stop();
    slot.live->server->Stop();
    slot.live->wake_server->Stop();
    slot.live->backend_rpc->Stop();
    slot.live->notify_tx->Stop();
    slot.live->plugin->Shutdown();
    network.SetEndpointCrashed(ntcp_ep, true);
    network.SetEndpointCrashed(BackendEndpoint(i), true);
    network.SetEndpointCrashed(WakeEndpoint(i), true);
    network.SetEndpointCrashed(NotifierEndpoint(i), true);
    slot.graveyard.push_back(std::move(slot.live));
    ++slot.crashes;
    return true;
  };

  // Revives site i: clears the crash marks, re-admits storage writes, and
  // builds a fresh incarnation whose AttachWal replays the log (silent
  // replay + one "ntcp.recover" event + traced crash-marks).
  auto revive_site = [&](std::size_t i) {
    SiteSlot& slot = *sites[i];
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    network.SetEndpointCrashed(ntcp_ep, false);
    network.SetEndpointCrashed(BackendEndpoint(i), false);
    network.SetEndpointCrashed(WakeEndpoint(i), false);
    network.SetEndpointCrashed(NotifierEndpoint(i), false);
    slot.storage.Revive();
    // Restart precedes the recover event in the trace: the lint rule
    // requires an endpoint to be alive again before it may recover.
    tracer.RecordEvent(
        "site.restart", "fault", 0,
        {{"endpoint", ntcp_ep},
         {"site", util::Format("S%zu", i)},
         {"at", std::to_string(network.clock()->NowMicros())}});
    build_site_stack(i, slot);
    ++slot.recoveries;
  };

  // --- fault schedule --------------------------------------------------------
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (!FaultEnabled(fault_mask, i)) continue;
    const FuzzFault& f = scenario.faults[i];
    const std::string ntcp_ep = SiteNtcpEndpoint(f.site);
    switch (f.kind) {
      case FuzzFault::Kind::kOutage: {
        net::OutageWindow window{f.at_micros, f.at_micros + f.duration_micros};
        if (f.to_site) {
          network.AddOutage(kCoordinatorEndpoint, ntcp_ep, window);
        } else {
          network.AddOutage(ntcp_ep, kCoordinatorEndpoint, window);
        }
        break;
      }
      case FuzzFault::Kind::kDropNext: {
        const std::string from = f.to_site ? kCoordinatorEndpoint : ntcp_ep;
        const std::string to = f.to_site ? ntcp_ep : kCoordinatorEndpoint;
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.DropNext(from, to, count);
        });
        break;
      }
      case FuzzFault::Kind::kWakeDrop: {
        const std::string from = NotifierEndpoint(f.site);
        const std::string to = WakeEndpoint(f.site);
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.DropNext(from, to, count);
        });
        break;
      }
      case FuzzFault::Kind::kSiteCrashRestart: {
        // Revival is scheduled only when the kill actually happened: if an
        // overlapping crash already holds the site down, this fault is a
        // no-op and the earlier crash's revival stands.
        network.ScheduleAt(
            f.at_micros, [&network, &kill_site, &revive_site, site = f.site,
                          revive_at = f.at_micros + f.duration_micros] {
              if (!kill_site(site)) return;
              network.ScheduleAt(revive_at,
                                 [&revive_site, site] { revive_site(site); });
            });
        break;
      }
    }
  }

  // --- coordinator -----------------------------------------------------------
  psd::CoordinatorConfig config;
  config.run_id = util::Format("fuzz-%llu",
                               static_cast<unsigned long long>(scenario.seed));
  config.mass = structural::Matrix::Identity(1) * 5.0e4;
  config.damping = structural::Matrix::Identity(1) * 1.0e4;
  config.iota = {1.0};
  config.motion = structural::SinePulse(0.02, scenario.steps, 1.0, 1.0);
  for (std::size_t i = 0; i < scenario.sites; ++i) {
    config.sites.push_back({util::Format("S%zu", i), SiteNtcpEndpoint(i),
                            kControlPoint, {0}});
  }
  config.fault_policy = psd::FaultPolicy::kFaultTolerant;
  config.step_engine = scenario.engine;
  config.max_step_attempts = 4;
  config.proposal_timeout_micros = 20'000'000;
  config.retry.max_attempts = 6;
  config.retry.rpc_timeout_micros = 500'000;
  config.retry.initial_backoff_micros = 50'000;
  config.retry.max_backoff_micros = 1'000'000;
  config.tracer = &tracer;

  net::RpcClient coordinator_rpc(&network, kCoordinatorEndpoint);
  psd::SimulationCoordinator coordinator(config, &coordinator_rpc,
                                         network.clock());
  psd::RunReport report = coordinator.Run();

  // --- teardown --------------------------------------------------------------
  // A dropped propose *response* leaves the server holding an accepted
  // transaction the coordinator never learned about (so it cannot cancel
  // it — found by seed 187's first sweep). The protocol's backstop is
  // server-side proposal expiry; advance past the proposal window so every
  // armed expiry timer fires and terminalizes such orphans BEFORE the trace
  // snapshot. nees-lint then enforces the backstop: any transaction still
  // non-terminal at end of trace fails the run, and each kExpired
  // transition must be legal on the trace clock.
  network.AdvanceTo(network.clock()->NowMicros() +
                    config.proposal_timeout_micros +
                    2 * scenario.expiry_period_micros);
  // Now disarm the timer chains and drain to empty. Every crash fault's
  // revival has fired by now (faults land inside the run horizon and the
  // teardown advance runs 20+ virtual seconds past it), so each slot holds
  // a live stack again.
  for (auto& slot : sites) {
    if (slot->live == nullptr) continue;
    slot->live->backend->Stop();
    slot->live->server->Stop();
  }
  network.RunUntilQuiescent();

  // --- collect ---------------------------------------------------------------
  out.run_completed = report.completed;
  out.steps_completed = report.steps_completed;
  for (const auto& stats : report.site_stats) {
    out.step_reattempts = std::max(out.step_reattempts, stats.step_reattempts);
  }
  for (const auto& slot : sites) {
    // Wake/heartbeat counters accumulate across every incarnation.
    if (slot->live != nullptr) {
      out.wakes += slot->live->backend->wakes();
      out.heartbeats += slot->live->backend->heartbeats();
    }
    for (const auto& dead : slot->graveyard) {
      out.wakes += dead->backend->wakes();
      out.heartbeats += dead->backend->heartbeats();
    }
    out.site_crashes += slot->crashes;
    out.site_recoveries += slot->recoveries;
    out.transactions_recovered += slot->transactions_recovered;
    out.inflight_failed += slot->inflight_failed;
  }
  out.trace_jsonl = tracer.ExportJsonLines();
  out.metrics_table = tracer.metrics().ReportTable();
  out.history = report.history;
  out.net_totals = network.TotalMetrics();
  out.events_processed = network.virtual_stats().events();

  // --- oracles ---------------------------------------------------------------
  if (!report.completed) {
    out.failures.push_back(util::Format(
        "completion: run stopped at step %zu/%zu: %s", report.steps_completed,
        report.total_steps, report.failure.ToString().c_str()));
  }

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  const check::LintReport lint = check::LintSpans(spans);
  for (const auto& violation : lint.violations) {
    out.failures.push_back("lint: " + violation.ToString());
  }

  if (report.completed) {
    for (const auto& message : check::CheckExactlyOncePerStep(
             spans, ntcp_endpoints, report.steps_completed,
             out.step_reattempts)) {
      out.failures.push_back("exactly-once: " + message);
    }
  }

  if (util::lockdep::kEnabled) {
    const auto violations = util::lockdep::Violations();
    for (std::size_t i = lockdep_before; i < violations.size(); ++i) {
      out.failures.push_back("lockdep: " + violations[i].description);
    }
  }

  return out;
}

FuzzOutcome RunFuzzCaseChecked(const FuzzScenario& scenario,
                               std::uint64_t fault_mask) {
  FuzzOutcome first = RunFuzzCase(scenario, fault_mask);
  const FuzzOutcome second = RunFuzzCase(scenario, fault_mask);
  if (first.trace_jsonl != second.trace_jsonl) {
    first.failures.push_back(
        "determinism: span traces differ between same-seed runs");
  }
  if (first.metrics_table != second.metrics_table) {
    first.failures.push_back(
        "determinism: metrics snapshots differ between same-seed runs");
  }
  if (!HistoriesIdentical(first.history, second.history)) {
    first.failures.push_back(
        "determinism: displacement histories differ between same-seed runs");
  }
  return first;
}

std::uint64_t ShrinkFaultMask(const FuzzScenario& scenario,
                              std::uint64_t failing_mask) {
  const std::size_t bits = std::min<std::size_t>(scenario.faults.size(), 64);
  std::uint64_t mask = failing_mask;
  if (bits < 64) mask &= (1ULL << bits) - 1;

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::uint64_t candidate = mask & ~(1ULL << bit);
      if (candidate == mask) continue;
      if (!RunFuzzCaseChecked(scenario, candidate).ok()) {
        mask = candidate;
        shrunk = true;
      }
    }
  }
  return mask;
}

std::string ReplayCommand(std::uint64_t seed, std::uint64_t fault_mask) {
  return util::Format("nees_fuzz --seed %llu --fault-mask 0x%llx",
                      static_cast<unsigned long long>(seed),
                      static_cast<unsigned long long>(fault_mask));
}

}  // namespace nees::most
