#include "most/fuzz.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "centrifuge/plugin.h"
#include "check/checker.h"
#include "net/network.h"
#include "net/rpc.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "obs/trace.h"
#include "plugins/mplugin.h"
#include "security/auth.h"
#include "security/certificate.h"
#include "structural/groundmotion.h"
#include "structural/substructure.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wal/wal.h"

namespace nees::most {
namespace {

std::string SiteNtcpEndpoint(std::size_t i) {
  return util::Format("ntcp.s%zu", i);
}
std::string BackendEndpoint(std::size_t i) {
  return util::Format("backend.s%zu", i);
}
std::string WakeEndpoint(std::size_t i) { return util::Format("wake.s%zu", i); }
std::string NotifierEndpoint(std::size_t i) {
  return util::Format("notify.s%zu", i);
}

constexpr char kCoordinatorEndpoint[] = "fuzz.coordinator";
constexpr char kControlPoint[] = "cp";
// kCentrifuge endpoints: one rig, one remote operator (the E12 topology).
constexpr char kCentrifugeEndpoint[] = "ntcp.centrifuge";
constexpr char kOperatorEndpoint[] = "fuzz.operator";

bool FaultEnabled(std::uint64_t mask, std::size_t index) {
  return index >= 64 || (mask & (1ULL << index)) != 0;
}

bool HistoriesIdentical(const structural::TimeHistory& a,
                        const structural::TimeHistory& b) {
  return a.dt_seconds == b.dt_seconds && a.displacement == b.displacement &&
         a.velocity == b.velocity && a.acceleration == b.acceleration;
}

// --- structural fingerprints -------------------------------------------------
// FNV-1a over the run's observable artifacts. The determinism oracle compares
// these instead of the JSONL export: building the export string is the single
// most expensive part of a clean run, and the replica run exists only to
// prove the artifacts would have matched.

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void FnvBytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void FnvU64(std::uint64_t& h, std::uint64_t value) {
  FnvBytes(h, &value, sizeof(value));
}

void FnvString(std::uint64_t& h, std::string_view s) {
  FnvU64(h, s.size());
  FnvBytes(h, s.data(), s.size());
}

void FnvDouble(std::uint64_t& h, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  FnvU64(h, bits);
}

std::uint64_t FingerprintSpans(const std::vector<obs::SpanRecord>& spans) {
  std::uint64_t h = kFnvOffset;
  FnvU64(h, spans.size());
  for (const auto& span : spans) {
    FnvU64(h, span.id);
    FnvU64(h, span.parent_id);
    FnvString(h, span.name);
    FnvString(h, span.category);
    FnvU64(h, static_cast<std::uint64_t>(span.start_micros));
    FnvU64(h, static_cast<std::uint64_t>(span.end_micros));
    FnvU64(h, static_cast<std::uint64_t>(span.modeled_micros));
    FnvU64(h, span.tags.size());
    for (const auto& [key, value] : span.tags) {
      FnvString(h, key);
      FnvString(h, value);
    }
  }
  return h;
}

std::uint64_t FingerprintString(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  FnvString(h, s);
  return h;
}

std::uint64_t FingerprintHistory(const structural::TimeHistory& history) {
  std::uint64_t h = kFnvOffset;
  FnvDouble(h, history.dt_seconds);
  const auto series = [&h](const std::vector<structural::Vector>& s) {
    FnvU64(h, s.size());
    for (const auto& v : s) {
      FnvU64(h, v.size());
      for (const double x : v) FnvDouble(h, x);
    }
  };
  series(history.displacement);
  series(history.velocity);
  series(history.acceleration);
  return h;
}

/// One site's full server-side stack — one process *incarnation*. A crash
/// discards it and a fresh one is rebuilt over the durable state.
/// Declaration order doubles as a safe destruction order (backend stops
/// before the RPC plumbing it uses).
struct SiteHarness {
  std::unique_ptr<wal::Log> wal;             // this incarnation's log handle
  std::unique_ptr<ntcp::NtcpServer> server;  // owns the MPlugin
  plugins::MPlugin* plugin = nullptr;
  std::unique_ptr<net::RpcClient> backend_rpc;  // backend -> plugin calls
  std::unique_ptr<net::RpcClient> notify_tx;    // plugin -> backend wakes
  std::unique_ptr<net::RpcServer> wake_server;  // hosts "mplugin.wake"
  std::unique_ptr<plugins::VirtualPollingBackend> backend;
};

/// One site across the whole run: what survives a crash (the WAL storage,
/// the physical specimen, the machine clock, the site's auth service) plus
/// the live incarnation and the graveyard of dead ones. Dead stacks are
/// kept, not destroyed: a crash timer can fire while the dying site's own
/// frames (a pumping plugin Execute, an RPC handler) are still on the stack
/// below it, so destruction is deferred to end of run. A dead stack is
/// inert — its plugin is shut down, its endpoints are unregistered, and
/// every send it attempts is swallowed by the network's crashed-endpoint
/// filter.
struct SiteSlot {
  wal::MemoryStorage storage;  // durable: survives the crash
  std::shared_ptr<
      std::map<std::string, std::unique_ptr<structural::SubstructureModel>>>
      models;                  // the physical specimen never resets
  /// The site's NTP-disciplined machine clock (kClockSkew faults jump its
  /// offset). Like the specimen, a crash does not reset it — the incarnation
  /// dies, the machine's idea of time does not.
  std::unique_ptr<util::SkewedClock> skewed;
  /// Real GSI-shaped auth for sites with a kCredentialExpiry fault. Lives
  /// in the slot so issued session tokens (and their expiry) survive a
  /// crash/restart; each incarnation re-attaches it to its RPC server.
  std::unique_ptr<security::AuthService> auth;
  std::unique_ptr<SiteHarness> live;
  std::vector<std::unique_ptr<SiteHarness>> graveyard;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t transactions_recovered = 0;
  std::uint64_t inflight_failed = 0;
};

}  // namespace

std::string FuzzFault::ToString() const {
  switch (kind) {
    case Kind::kOutage:
      return util::Format(
          "outage  site=%zu dir=%s at=%lldus dur=%lldus", site,
          to_site ? "coord->site" : "site->coord",
          static_cast<long long>(at_micros),
          static_cast<long long>(duration_micros));
    case Kind::kDropNext:
      return util::Format("drop    site=%zu dir=%s at=%lldus count=%d", site,
                          to_site ? "coord->site" : "site->coord",
                          static_cast<long long>(at_micros), count);
    case Kind::kWakeDrop:
      return util::Format("wakedrop site=%zu at=%lldus count=%d", site,
                          static_cast<long long>(at_micros), count);
    case Kind::kSiteCrashRestart:
      return util::Format("crash   site=%zu at=%lldus downtime=%lldus", site,
                          static_cast<long long>(at_micros),
                          static_cast<long long>(duration_micros));
    case Kind::kFrameCorrupt:
      return util::Format("corrupt site=%zu dir=%s at=%lldus count=%d", site,
                          to_site ? "coord->site" : "site->coord",
                          static_cast<long long>(at_micros), count);
    case Kind::kClockSkew:
      return util::Format("skew    site=%zu at=%lldus jump=%lldus", site,
                          static_cast<long long>(at_micros),
                          static_cast<long long>(duration_micros));
    case Kind::kCredentialExpiry:
      return util::Format("credexp site=%zu at=%lldus", site,
                          static_cast<long long>(at_micros));
  }
  return "?";
}

std::string_view EngineName(psd::StepEngine engine) {
  switch (engine) {
    case psd::StepEngine::kSequential:
      return "sequential";
    case psd::StepEngine::kThreadPerSite:
      return "thread-per-site";
    case psd::StepEngine::kAsync:
      return "async";
  }
  return "?";
}

std::string_view TemplateName(FuzzTemplate t) {
  switch (t) {
    case FuzzTemplate::kMini:
      return "mini";
    case FuzzTemplate::kStandard:
      return "standard";
    case FuzzTemplate::kFullMost:
      return "full-most";
    case FuzzTemplate::kCentrifuge:
      return "centrifuge";
  }
  return "?";
}

bool ParseTemplateName(std::string_view name, FuzzTemplate* out) {
  if (name == "mini") {
    *out = FuzzTemplate::kMini;
  } else if (name == "standard") {
    *out = FuzzTemplate::kStandard;
  } else if (name == "full-most") {
    *out = FuzzTemplate::kFullMost;
  } else if (name == "centrifuge") {
    *out = FuzzTemplate::kCentrifuge;
  } else {
    return false;
  }
  return true;
}

FuzzTemplate TemplateForSeed(std::uint64_t seed) {
  // Lane 10: never shared with any generator, so the template choice is a
  // pure function of the seed and consumes no generator draws. The weights
  // set the campaign's seeds/hour budget (EXPERIMENTS.md E14): minis carry
  // the throughput target, the long shapes ride along at a rate that keeps
  // the mean case cheap while every multi-thousand-seed sweep still runs
  // dozens of centrifuge campaigns and a handful of full-length MOSTs.
  // Measured per-seed cost (release, 1 core): mini ~2ms, centrifuge ~2ms,
  // standard ~27ms, full-most ~1.6s — a full-most seed costs ~800 minis,
  // which is why its weight is a tenth of a percent.
  util::Rng lane = util::Rng(seed).Fork(10);
  const int roll = lane.UniformInt(0, 999);
  if (roll < 935) return FuzzTemplate::kMini;
  if (roll < 955) return FuzzTemplate::kStandard;
  if (roll < 999) return FuzzTemplate::kCentrifuge;
  return FuzzTemplate::kFullMost;
}

std::string FuzzScenario::Describe() const {
  std::string out = util::Format(
      "seed=%llu template=%s sites=%zu steps=%zu engine=%s heartbeat=%lldus "
      "expiry=%lldus faults=%zu\n",
      static_cast<unsigned long long>(seed),
      std::string(TemplateName(shape)).c_str(), sites, steps,
      std::string(EngineName(engine)).c_str(),
      static_cast<long long>(heartbeat_micros),
      static_cast<long long>(expiry_period_micros), faults.size());
  if (shape == FuzzTemplate::kCentrifuge) {
    out += util::Format("  piles=%zu\n", piles);
  }
  for (std::size_t i = 0; i < site_links.size(); ++i) {
    out += util::Format(
        "  link s%zu: latency=%lldus jitter=%lldus drop=%.4f\n", i,
        static_cast<long long>(site_links[i].latency_micros),
        static_cast<long long>(site_links[i].jitter_micros),
        site_links[i].drop_probability);
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out += util::Format("  fault[bit %zu] %s\n", i, faults[i].ToString().c_str());
  }
  return out;
}

namespace {

/// Appends the three post-crash fault lanes shared by the MOST-shaped
/// generators. Each class draws from its own forked lane and lands after
/// every earlier class in the schedule, so adding one never shifts another
/// class's values or mask bits for any pre-existing seed.
///
/// Survivability by construction, per class:
///  * kFrameCorrupt — a mutated frame either fails the Decode CRC (a
///    detected loss the 6-attempt retry ladder absorbs) or parses (and
///    must then be semantically harmless or caught by the oracles);
///  * kClockSkew — forward jumps are capped far below the 20s proposal
///    window, so a skewed server's expiry clock never kills a live step;
///  * kCredentialExpiry — expiry at `at` forces a mid-run re-handshake;
///    the refresher grants the op one extra attempt, so the retry budget
///    is never consumed by the auth round trip.
void AppendNewFaultLanes(FuzzScenario& s, util::Rng& corrupt, util::Rng& skew,
                         util::Rng& creds, std::int64_t horizon,
                         int max_corrupt, int max_skew, double cred_prob) {
  const int corrupt_count = corrupt.UniformInt(0, max_corrupt);
  for (int j = 0; j < corrupt_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kFrameCorrupt;
    f.site = static_cast<std::size_t>(
        corrupt.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.to_site = corrupt.Bernoulli(0.5);
    f.at_micros =
        1000LL * corrupt.UniformInt(100, static_cast<int>(horizon / 1000));
    f.count = corrupt.UniformInt(1, 3);
    s.faults.push_back(f);
  }
  const int skew_count = skew.UniformInt(0, max_skew);
  for (int j = 0; j < skew_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kClockSkew;
    f.site = static_cast<std::size_t>(
        skew.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * skew.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * skew.UniformInt(500, 5000);
    s.faults.push_back(f);
  }
  if (creds.Bernoulli(cred_prob)) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kCredentialExpiry;
    f.site = static_cast<std::size_t>(
        creds.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * creds.UniformInt(500, static_cast<int>(horizon / 1000));
    s.faults.push_back(f);
  }
}

FuzzScenario GenerateMini(std::uint64_t seed) {
  // Same lane layout as the standard generator; only the ranges shrink.
  // Minis are the campaign's throughput carrier: small topologies, short
  // runs, but every fault class still reachable.
  util::Rng root(seed);
  util::Rng topo = root.Fork(1);
  util::Rng links = root.Fork(2);
  util::Rng engines = root.Fork(3);
  util::Rng timing = root.Fork(4);
  util::Rng faults = root.Fork(5);
  util::Rng crashes = root.Fork(6);
  util::Rng corrupt = root.Fork(7);
  util::Rng skew = root.Fork(8);
  util::Rng creds = root.Fork(9);

  FuzzScenario s;
  s.seed = seed;
  s.shape = FuzzTemplate::kMini;
  s.sites = static_cast<std::size_t>(topo.UniformInt(2, 5));
  s.steps = static_cast<std::size_t>(topo.UniformInt(5, 10));
  s.engine = engines.Bernoulli(0.5) ? psd::StepEngine::kAsync
                                    : psd::StepEngine::kSequential;
  s.heartbeat_micros = 1000LL * timing.UniformInt(150, 400);
  s.expiry_period_micros = 1000LL * timing.UniformInt(200, 1000);

  for (std::size_t i = 0; i < s.sites; ++i) {
    net::LinkModel m;
    m.latency_micros = 1000LL * links.UniformInt(1, 40);
    m.jitter_micros = 1000LL * links.UniformInt(0, 5);
    m.drop_probability =
        links.Bernoulli(0.25) ? links.UniformDouble(0.0, 0.03) : 0.0;
    s.site_links.push_back(m);
  }

  const std::int64_t horizon = static_cast<std::int64_t>(s.steps) * 400'000;
  const int fault_count = faults.UniformInt(0, 3);
  for (int j = 0; j < fault_count; ++j) {
    FuzzFault f;
    switch (faults.UniformInt(0, 2)) {
      case 0:
        f.kind = FuzzFault::Kind::kOutage;
        break;
      case 1:
        f.kind = FuzzFault::Kind::kDropNext;
        break;
      default:
        f.kind = FuzzFault::Kind::kWakeDrop;
        break;
    }
    f.site = static_cast<std::size_t>(
        faults.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.to_site = faults.Bernoulli(0.5);
    f.at_micros =
        1000LL * faults.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * faults.UniformInt(100, 1000);
    f.count = faults.UniformInt(1, 3);
    s.faults.push_back(f);
  }

  if (crashes.Bernoulli(0.35)) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kSiteCrashRestart;
    f.site = static_cast<std::size_t>(
        crashes.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * crashes.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * crashes.UniformInt(250, 1000);
    s.faults.push_back(f);
  }

  AppendNewFaultLanes(s, corrupt, skew, creds, horizon, /*max_corrupt=*/2,
                      /*max_skew=*/1, /*cred_prob=*/0.15);
  return s;
}

FuzzScenario GenerateFullMost(std::uint64_t seed) {
  // Paper-length: the §3 MOST run was a 1,500-step earthquake record, and
  // the public run died at step 1493 — bugs that only appear deep into a
  // long campaign (slow leaks of retry budget, expiry interactions, late
  // faults) are exactly what the short templates cannot see.
  util::Rng root(seed);
  util::Rng topo = root.Fork(1);
  util::Rng links = root.Fork(2);
  util::Rng engines = root.Fork(3);
  util::Rng timing = root.Fork(4);
  util::Rng faults = root.Fork(5);
  util::Rng crashes = root.Fork(6);
  util::Rng corrupt = root.Fork(7);
  util::Rng skew = root.Fork(8);
  util::Rng creds = root.Fork(9);

  FuzzScenario s;
  s.seed = seed;
  s.shape = FuzzTemplate::kFullMost;
  s.sites = static_cast<std::size_t>(topo.UniformInt(2, 4));
  s.steps = 1500;
  s.engine = engines.Bernoulli(0.5) ? psd::StepEngine::kAsync
                                    : psd::StepEngine::kSequential;
  s.heartbeat_micros = 1000LL * timing.UniformInt(150, 400);
  s.expiry_period_micros = 1000LL * timing.UniformInt(200, 1000);

  for (std::size_t i = 0; i < s.sites; ++i) {
    net::LinkModel m;
    m.latency_micros = 1000LL * links.UniformInt(5, 80);
    m.jitter_micros = 1000LL * links.UniformInt(0, 10);
    m.drop_probability =
        links.Bernoulli(0.35) ? links.UniformDouble(0.0, 0.02) : 0.0;
    s.site_links.push_back(m);
  }

  // 1,500 steps x 400ms budget = the full 10-minute virtual horizon; the
  // fault schedule is scattered across all of it, so late-run faults (the
  // step-1493 class) are as likely as early ones.
  const std::int64_t horizon = static_cast<std::int64_t>(s.steps) * 400'000;
  const int fault_count = faults.UniformInt(8, 20);
  for (int j = 0; j < fault_count; ++j) {
    FuzzFault f;
    switch (faults.UniformInt(0, 2)) {
      case 0:
        f.kind = FuzzFault::Kind::kOutage;
        break;
      case 1:
        f.kind = FuzzFault::Kind::kDropNext;
        break;
      default:
        f.kind = FuzzFault::Kind::kWakeDrop;
        break;
    }
    f.site = static_cast<std::size_t>(
        faults.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.to_site = faults.Bernoulli(0.5);
    f.at_micros =
        1000LL * faults.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * faults.UniformInt(100, 1500);
    f.count = faults.UniformInt(1, 3);
    s.faults.push_back(f);
  }

  const int crash_count = crashes.UniformInt(0, 3);
  for (int j = 0; j < crash_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kSiteCrashRestart;
    f.site = static_cast<std::size_t>(
        crashes.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * crashes.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * crashes.UniformInt(250, 1200);
    s.faults.push_back(f);
  }

  AppendNewFaultLanes(s, corrupt, skew, creds, horizon, /*max_corrupt=*/4,
                      /*max_skew=*/2, /*cred_prob=*/0.5);
  return s;
}

FuzzScenario GenerateCentrifuge(std::uint64_t seed) {
  // The E12 UC Davis shape: a single robot-arm/bender-element rig driven
  // over one operator link, every action a propose/execute transaction.
  // Fault classes are limited to what that link can do to a teleoperation
  // session: outages, deterministic drops, frame corruption.
  util::Rng root(seed);
  util::Rng topo = root.Fork(1);
  util::Rng links = root.Fork(2);
  util::Rng timing = root.Fork(4);
  util::Rng faults = root.Fork(5);
  util::Rng corrupt = root.Fork(7);

  FuzzScenario s;
  s.seed = seed;
  s.shape = FuzzTemplate::kCentrifuge;
  s.sites = 1;
  s.piles = static_cast<std::size_t>(topo.UniformInt(4, 12));
  s.steps = s.piles;
  s.engine = psd::StepEngine::kAsync;  // unused: no coordinator in this shape
  s.expiry_period_micros = 1000LL * timing.UniformInt(200, 1000);

  net::LinkModel m;
  m.latency_micros = 1000LL * links.UniformInt(1, 60);
  m.jitter_micros = 1000LL * links.UniformInt(0, 8);
  m.drop_probability =
      links.Bernoulli(0.35) ? links.UniformDouble(0.0, 0.04) : 0.0;
  s.site_links.push_back(m);

  // 3 measurement transactions up front + 6 per pile (gripper, move, drive,
  // then re-characterize), each budgeted ~250ms of virtual time.
  const std::int64_t horizon =
      static_cast<std::int64_t>(3 + s.piles * 6) * 250'000;
  // Survivability budget, specific to this shape: unlike the MOST
  // templates there is no heartbeat/poll background traffic on the
  // operator link, so armed DropNext/CorruptNext counts don't drain
  // between transactions — they stack. A transaction gets 6 RPC attempts
  // and (corrupted frames fail the CRC, i.e. are drops) every armed loss
  // can land on the same transaction, so the total armed loss count across
  // the schedule must stay under the retry ladder. Draws beyond the budget
  // keep their lane position but degrade to outages (drops) or are
  // skipped (corruption), so sibling faults' values never shift.
  int loss_budget = 4;
  const int fault_count = faults.UniformInt(0, 4);
  for (int j = 0; j < fault_count; ++j) {
    FuzzFault f;
    f.kind = faults.Bernoulli(0.5) ? FuzzFault::Kind::kOutage
                                   : FuzzFault::Kind::kDropNext;
    f.site = 0;
    f.to_site = faults.Bernoulli(0.5);
    f.at_micros =
        1000LL * faults.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * faults.UniformInt(100, 1500);
    f.count = faults.UniformInt(1, 3);
    if (f.kind == FuzzFault::Kind::kDropNext) {
      if (f.count > loss_budget) f.kind = FuzzFault::Kind::kOutage;
      else loss_budget -= f.count;
    }
    s.faults.push_back(f);
  }

  const int corrupt_count = corrupt.UniformInt(0, 2);
  for (int j = 0; j < corrupt_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kFrameCorrupt;
    f.site = 0;
    f.to_site = corrupt.Bernoulli(0.5);
    f.at_micros =
        1000LL * corrupt.UniformInt(100, static_cast<int>(horizon / 1000));
    f.count = corrupt.UniformInt(1, 3);
    if (f.count > loss_budget) continue;
    loss_budget -= f.count;
    s.faults.push_back(f);
  }
  return s;
}

}  // namespace

FuzzScenario GenerateScenario(std::uint64_t seed) {
  // Each dimension draws from its own forked lane so widening one (say,
  // adding a fault kind) never shifts another dimension's values for the
  // same seed.
  util::Rng root(seed);
  util::Rng topo = root.Fork(1);
  util::Rng links = root.Fork(2);
  util::Rng engines = root.Fork(3);
  util::Rng timing = root.Fork(4);
  util::Rng faults = root.Fork(5);
  util::Rng crashes = root.Fork(6);
  util::Rng corrupt = root.Fork(7);
  util::Rng skew = root.Fork(8);
  util::Rng creds = root.Fork(9);

  FuzzScenario s;
  s.seed = seed;
  s.shape = FuzzTemplate::kStandard;
  s.sites = static_cast<std::size_t>(topo.UniformInt(3, 32));
  s.steps = static_cast<std::size_t>(topo.UniformInt(8, 24));
  // kThreadPerSite is excluded: threads break virtual-time determinism.
  s.engine = engines.Bernoulli(0.5) ? psd::StepEngine::kAsync
                                    : psd::StepEngine::kSequential;
  s.heartbeat_micros = 1000LL * timing.UniformInt(150, 400);
  s.expiry_period_micros = 1000LL * timing.UniformInt(200, 1000);

  for (std::size_t i = 0; i < s.sites; ++i) {
    net::LinkModel m;
    m.latency_micros = 1000LL * links.UniformInt(1, 80);
    m.jitter_micros = 1000LL * links.UniformInt(0, 10);
    // Lossy links on roughly a third of sites, bounded so six attempts
    // virtually never all drop (the completion oracle must stay sound).
    m.drop_probability =
        links.Bernoulli(0.35) ? links.UniformDouble(0.0, 0.05) : 0.0;
    s.site_links.push_back(m);
  }

  // Fault schedule: scattered over a horizon that comfortably covers the
  // run (a faulty step takes well under 400ms of virtual time on average).
  const std::int64_t horizon = static_cast<std::int64_t>(s.steps) * 400'000;
  const int fault_count = faults.UniformInt(0, 8);
  for (int j = 0; j < fault_count; ++j) {
    FuzzFault f;
    switch (faults.UniformInt(0, 2)) {
      case 0:
        f.kind = FuzzFault::Kind::kOutage;
        break;
      case 1:
        f.kind = FuzzFault::Kind::kDropNext;
        break;
      default:
        f.kind = FuzzFault::Kind::kWakeDrop;
        break;
    }
    f.site = static_cast<std::size_t>(
        faults.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.to_site = faults.Bernoulli(0.5);
    f.at_micros = 1000LL * faults.UniformInt(
                               100, static_cast<int>(horizon / 1000));
    // Outages stay far under the ~4.5s retry span (6 attempts x 500ms
    // timeout plus backoffs), so every schedule is survivable and the
    // completion oracle is sound by construction.
    f.duration_micros = 1000LL * faults.UniformInt(100, 1500);
    f.count = faults.UniformInt(1, 3);
    s.faults.push_back(f);
  }

  // Crash/restart faults draw from their own lane and are appended AFTER
  // the base schedule, so adding this fault class shifted neither the base
  // faults' values nor their mask bits for any pre-existing seed. Downtime
  // (250ms–1.2s) stays far under the coordinator's ~6s re-proposal
  // tolerance (4 step attempts x ~1.55s of dead-site RPC backoff), keeping
  // the completion oracle sound by construction.
  const int crash_count = crashes.UniformInt(0, 2);
  for (int j = 0; j < crash_count; ++j) {
    FuzzFault f;
    f.kind = FuzzFault::Kind::kSiteCrashRestart;
    f.site = static_cast<std::size_t>(
        crashes.UniformInt(0, static_cast<int>(s.sites) - 1));
    f.at_micros =
        1000LL * crashes.UniformInt(100, static_cast<int>(horizon / 1000));
    f.duration_micros = 1000LL * crashes.UniformInt(250, 1200);
    s.faults.push_back(f);
  }

  // Corruption / skew / credential lanes follow the same append discipline,
  // one lane per class (see AppendNewFaultLanes).
  AppendNewFaultLanes(s, corrupt, skew, creds, horizon, /*max_corrupt=*/2,
                      /*max_skew=*/1, /*cred_prob=*/0.25);
  return s;
}

FuzzScenario GenerateScenario(std::uint64_t seed, FuzzTemplate shape) {
  switch (shape) {
    case FuzzTemplate::kMini:
      return GenerateMini(seed);
    case FuzzTemplate::kStandard:
      return GenerateScenario(seed);
    case FuzzTemplate::kFullMost:
      return GenerateFullMost(seed);
    case FuzzTemplate::kCentrifuge:
      return GenerateCentrifuge(seed);
  }
  return GenerateScenario(seed);
}

namespace {

FuzzOutcome RunMostCase(const FuzzScenario& scenario, std::uint64_t fault_mask,
                        const FuzzRunOptions& options) {
  FuzzOutcome out;

  // Oracle 5 (lockdep builds): no lock-order inversion, wait-while-holding,
  // or blocking-RPC-under-lock may appear during the run. Snapshot the
  // global count so violations from earlier cases aren't re-billed here.
  const std::size_t lockdep_before = util::lockdep::ViolationCount();

  net::Network network(net::DeliveryMode::kVirtual, scenario.seed);
  // modeled == nullptr: in kVirtual the wall clock IS the modeled timeline;
  // letting the tracer advance a second SimClock would double-count time.
  obs::Tracer tracer(network.clock(), nullptr);
  network.set_tracer(&tracer);

  net::LinkModel local;  // backend-local plumbing: fast, clean
  local.latency_micros = 200;
  network.SetDefaultLink(local);

  // Which sites need a skewable machine clock / a real auth service. Bit
  // semantics matter for the shrinker: a disabled kClockSkew leaves the
  // site on the grid clock, a disabled kCredentialExpiry removes the auth
  // world entirely — the fault bit owns *all* of its machinery.
  std::vector<char> want_skew(scenario.sites, 0);
  // 0 = no auth; otherwise the site's session-token lifetime (the earliest
  // enabled expiry time — tokens are minted at login, time starts at ~0).
  std::vector<std::int64_t> token_lifetime(scenario.sites, 0);
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (!FaultEnabled(fault_mask, i)) continue;
    const FuzzFault& f = scenario.faults[i];
    if (f.kind == FuzzFault::Kind::kClockSkew) want_skew[f.site] = 1;
    if (f.kind == FuzzFault::Kind::kCredentialExpiry) {
      token_lifetime[f.site] = token_lifetime[f.site] == 0
                                   ? f.at_micros
                                   : std::min(token_lifetime[f.site],
                                              f.at_micros);
    }
  }
  const bool any_auth = std::any_of(token_lifetime.begin(),
                                    token_lifetime.end(),
                                    [](std::int64_t t) { return t > 0; });

  // The auth world: one virtual-organization CA, one coordinator identity.
  // Its rng is derived from the seed (not the network's stream), so key
  // material is deterministic per seed and independent of delivery order.
  util::Rng auth_rng(scenario.seed ^ 0xA01D5EEDULL);
  std::optional<security::CertificateAuthority> ca;
  std::optional<security::Credential> coordinator_identity;
  if (any_auth) {
    ca.emplace("/O=NEES/CN=NEES CA", *network.clock(), auth_rng);
    coordinator_identity =
        ca->IssueIdentity("/O=NEES/CN=coordinator", 0, auth_rng);
  }

  // --- per-site stacks -------------------------------------------------------
  std::vector<std::unique_ptr<SiteSlot>> sites;
  std::vector<std::string> ntcp_endpoints;
  // Split a fixed total stiffness across sites so the structure (and the
  // central-difference stability bound) doesn't change with site count.
  const double site_stiffness = 4.0e6 / static_cast<double>(scenario.sites);

  // Builds one process incarnation over the slot's durable state (WAL
  // storage + specimen models + machine clock + auth service) and recovers
  // from whatever the log holds. Used both at startup (empty log -> fresh
  // state) and on revival.
  auto build_site_stack = [&](std::size_t i, SiteSlot& slot) {
    auto harness = std::make_unique<SiteHarness>();
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    util::Clock* site_clock =
        slot.skewed != nullptr ? slot.skewed.get() : network.clock();

    plugins::MPluginConfig mconfig;
    mconfig.execute_timeout_micros = 30'000'000;  // virtual; generous
    auto plugin = std::make_unique<plugins::MPlugin>(mconfig);
    harness->plugin = plugin.get();
    harness->server = std::make_unique<ntcp::NtcpServer>(
        &network, ntcp_ep, std::move(plugin), site_clock);
    harness->server->set_tracer(&tracer);
    harness->server->Start();
    // Each incarnation re-attaches the slot's auth service: session tokens
    // issued before a crash keep working after the restart (they live in
    // the service, not the process).
    if (slot.auth != nullptr) slot.auth->Attach(harness->server->rpc());
    // Recovery before traffic: replay the surviving log (unsynced tail was
    // lost at the crash), crash-mark interrupted executions, then log
    // every new transition durably.
    harness->wal = std::make_unique<wal::Log>(&slot.storage);
    const auto recovered = harness->server->AttachWal(harness->wal.get());
    if (recovered.ok()) {
      slot.transactions_recovered += recovered->transactions_recovered;
      slot.inflight_failed += recovered->inflight_failed;
    } else {
      out.failures.push_back(util::Format(
          "wal: site %zu failed to recover from its log: %s", i,
          recovered.status().ToString().c_str()));
    }
    harness->plugin->AttachVirtualNetwork(&network);
    harness->plugin->BindBackendRpc(harness->server->rpc());
    harness->server->ArmExpiryTimer(&network, scenario.expiry_period_micros);

    harness->backend_rpc =
        std::make_unique<net::RpcClient>(&network, BackendEndpoint(i));
    harness->wake_server =
        std::make_unique<net::RpcServer>(&network, WakeEndpoint(i));
    harness->wake_server->Start();
    harness->backend = std::make_unique<plugins::VirtualPollingBackend>(
        &network, harness->backend_rpc.get(), ntcp_ep,
        plugins::MakeSimulationCompute(slot.models),
        scenario.heartbeat_micros);
    harness->backend->BindWakeRpc(*harness->wake_server);
    harness->backend->Start();

    // The wake notification crosses the network on its own directed link
    // (notify.sN -> wake.sN) so kWakeDrop faults can sever exactly that
    // path without touching poll/notify traffic.
    harness->notify_tx =
        std::make_unique<net::RpcClient>(&network, NotifierEndpoint(i));
    net::RpcClient* tx = harness->notify_tx.get();
    const std::string wake_ep = WakeEndpoint(i);
    harness->plugin->SetWorkNotifier(
        [tx, wake_ep] { (void)tx->OneWay(wake_ep, "mplugin.wake", {}); });

    slot.live = std::move(harness);
  };

  for (std::size_t i = 0; i < scenario.sites; ++i) {
    auto slot = std::make_unique<SiteSlot>();
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    ntcp_endpoints.push_back(ntcp_ep);

    network.SetLink(kCoordinatorEndpoint, ntcp_ep, scenario.site_links[i]);
    network.SetLink(ntcp_ep, kCoordinatorEndpoint, scenario.site_links[i]);

    slot->models = std::make_shared<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>();
    structural::Matrix k(1, 1);
    k(0, 0) = site_stiffness;
    (*slot->models)[kControlPoint] =
        std::make_unique<structural::ElasticSubstructure>(k);

    if (want_skew[i]) {
      slot->skewed = std::make_unique<util::SkewedClock>(network.clock());
    }
    if (token_lifetime[i] > 0) {
      security::TrustStore trust;
      trust.AddRoot(ca->root_certificate());
      security::AuthOptions aopts;
      aopts.token_lifetime_micros = token_lifetime[i];
      // The backend's long-poll plumbing is site-local, not grid traffic;
      // it never holds a grid credential (same split as a real site, where
      // the DAQ loop lives inside the security perimeter).
      aopts.open_methods = {"mplugin.poll", "mplugin.notify"};
      slot->auth = std::make_unique<security::AuthService>(
          std::move(trust),
          slot->skewed != nullptr ? static_cast<util::Clock*>(slot->skewed.get())
                                  : network.clock(),
          auth_rng.Split(), aopts);
      slot->auth->acl().Allow("/O=NEES/CN=coordinator", "ntcp.");
    }

    build_site_stack(i, *slot);
    sites.push_back(std::move(slot));
  }

  // Kills site i's whole process: the WAL's unsynced tail is lost, every
  // endpoint vanishes, zombie stack frames unwind against a dead backend
  // and write to the void. Returns false if the site is already dead
  // (overlapping crash faults — the earlier crash's revival stands).
  auto kill_site = [&](std::size_t i) -> bool {
    SiteSlot& slot = *sites[i];
    if (slot.live == nullptr) return false;
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    tracer.RecordEvent(
        "site.crash", "fault", 0,
        {{"endpoint", ntcp_ep},
         {"site", util::Format("S%zu", i)},
         {"at", std::to_string(network.clock()->NowMicros())}});
    // The kernel view of the crash: the unsynced WAL tail is gone and every
    // write from the dead process is swallowed from here on.
    slot.storage.Crash();
    // A dead process emits no telemetry.
    slot.live->server->set_tracer(nullptr);
    // Tear down timers and endpoint registrations; mark all four of the
    // site's endpoints crashed so sends from zombie frames go nowhere.
    slot.live->backend->Stop();
    slot.live->server->Stop();
    slot.live->wake_server->Stop();
    slot.live->backend_rpc->Stop();
    slot.live->notify_tx->Stop();
    slot.live->plugin->Shutdown();
    network.SetEndpointCrashed(ntcp_ep, true);
    network.SetEndpointCrashed(BackendEndpoint(i), true);
    network.SetEndpointCrashed(WakeEndpoint(i), true);
    network.SetEndpointCrashed(NotifierEndpoint(i), true);
    slot.graveyard.push_back(std::move(slot.live));
    ++slot.crashes;
    return true;
  };

  // Revives site i: clears the crash marks, re-admits storage writes, and
  // builds a fresh incarnation whose AttachWal replays the log (silent
  // replay + one "ntcp.recover" event + traced crash-marks).
  auto revive_site = [&](std::size_t i) {
    SiteSlot& slot = *sites[i];
    const std::string ntcp_ep = SiteNtcpEndpoint(i);
    network.SetEndpointCrashed(ntcp_ep, false);
    network.SetEndpointCrashed(BackendEndpoint(i), false);
    network.SetEndpointCrashed(WakeEndpoint(i), false);
    network.SetEndpointCrashed(NotifierEndpoint(i), false);
    slot.storage.Revive();
    // Restart precedes the recover event in the trace: the lint rule
    // requires an endpoint to be alive again before it may recover.
    tracer.RecordEvent(
        "site.restart", "fault", 0,
        {{"endpoint", ntcp_ep},
         {"site", util::Format("S%zu", i)},
         {"at", std::to_string(network.clock()->NowMicros())}});
    build_site_stack(i, slot);
    ++slot.recoveries;
  };

  // --- fault schedule --------------------------------------------------------
  // Tracks the last instant any enabled fault can still be in flight; the
  // teardown advance must clear it, or (on runs that fail early, or long
  // templates whose faults land past the natural end) a crash fault's
  // revival would fire inside RunUntilQuiescent and build a fresh backend
  // whose self-rescheduling heartbeat never quiesces.
  std::int64_t fault_horizon = 0;
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (!FaultEnabled(fault_mask, i)) continue;
    const FuzzFault& f = scenario.faults[i];
    fault_horizon = std::max(
        fault_horizon, f.at_micros + std::max<std::int64_t>(
                                         f.duration_micros, 0));
    const std::string ntcp_ep = SiteNtcpEndpoint(f.site);
    switch (f.kind) {
      case FuzzFault::Kind::kOutage: {
        net::OutageWindow window{f.at_micros, f.at_micros + f.duration_micros};
        if (f.to_site) {
          network.AddOutage(kCoordinatorEndpoint, ntcp_ep, window);
        } else {
          network.AddOutage(ntcp_ep, kCoordinatorEndpoint, window);
        }
        break;
      }
      case FuzzFault::Kind::kDropNext: {
        const std::string from = f.to_site ? kCoordinatorEndpoint : ntcp_ep;
        const std::string to = f.to_site ? ntcp_ep : kCoordinatorEndpoint;
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.DropNext(from, to, count);
        });
        break;
      }
      case FuzzFault::Kind::kWakeDrop: {
        const std::string from = NotifierEndpoint(f.site);
        const std::string to = WakeEndpoint(f.site);
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.DropNext(from, to, count);
        });
        break;
      }
      case FuzzFault::Kind::kSiteCrashRestart: {
        // Revival is scheduled only when the kill actually happened: if an
        // overlapping crash already holds the site down, this fault is a
        // no-op and the earlier crash's revival stands.
        network.ScheduleAt(
            f.at_micros, [&network, &kill_site, &revive_site, site = f.site,
                          revive_at = f.at_micros + f.duration_micros] {
              if (!kill_site(site)) return;
              network.ScheduleAt(revive_at,
                                 [&revive_site, site] { revive_site(site); });
            });
        break;
      }
      case FuzzFault::Kind::kFrameCorrupt: {
        const std::string from = f.to_site ? kCoordinatorEndpoint : ntcp_ep;
        const std::string to = f.to_site ? ntcp_ep : kCoordinatorEndpoint;
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.CorruptNext(from, to, count);
        });
        break;
      }
      case FuzzFault::Kind::kClockSkew: {
        // The skewed clock lives in the slot (want_skew built it above), so
        // the jump survives any crash/revival interleaving.
        util::SkewedClock* skewed = sites[f.site]->skewed.get();
        network.ScheduleAt(f.at_micros,
                           [skewed, delta = f.duration_micros] {
                             skewed->AdvanceOffset(delta);
                           });
        break;
      }
      case FuzzFault::Kind::kCredentialExpiry:
        // Nothing to schedule: the expiry time is baked into the site's
        // session-token lifetime (token_lifetime above). The fault "fires"
        // when the coordinator's next RPC after at_micros is rejected.
        break;
    }
  }

  // --- coordinator -----------------------------------------------------------
  psd::CoordinatorConfig config;
  config.run_id = util::Format("fuzz-%llu",
                               static_cast<unsigned long long>(scenario.seed));
  config.mass = structural::Matrix::Identity(1) * 5.0e4;
  config.damping = structural::Matrix::Identity(1) * 1.0e4;
  config.iota = {1.0};
  config.motion = structural::SinePulse(0.02, scenario.steps, 1.0, 1.0);
  for (std::size_t i = 0; i < scenario.sites; ++i) {
    config.sites.push_back({util::Format("S%zu", i), SiteNtcpEndpoint(i),
                            kControlPoint, {0}});
  }
  config.fault_policy = psd::FaultPolicy::kFaultTolerant;
  config.step_engine = scenario.engine;
  config.max_step_attempts = 4;
  config.proposal_timeout_micros = 20'000'000;
  config.retry.max_attempts = 6;
  config.retry.rpc_timeout_micros = 500'000;
  config.retry.initial_backoff_micros = 50'000;
  config.retry.max_backoff_micros = 1'000'000;
  config.tracer = &tracer;

  net::RpcClient coordinator_rpc(&network, kCoordinatorEndpoint);

  // GSI logins (sites with an enabled kCredentialExpiry fault): handshake
  // once up front, then hand the coordinator a per-endpoint refresher so a
  // mid-run token expiry re-handshakes instead of killing the experiment.
  auto auth_refresh_count = std::make_shared<std::uint64_t>(0);
  if (any_auth) {
    security::Credential proxy = coordinator_identity->CreateProxy(
        3'600'000'000, *network.clock(), auth_rng);
    std::map<std::string, std::shared_ptr<security::AuthClient>> login_by_ep;
    for (std::size_t i = 0; i < scenario.sites; ++i) {
      if (token_lifetime[i] <= 0) continue;
      const std::string ntcp_ep = SiteNtcpEndpoint(i);
      auto login = std::make_shared<security::AuthClient>(
          &coordinator_rpc, proxy, network.clock(), auth_rng.Split());
      util::Status status;
      // The handshake rides the same lossy link as everything else; retry
      // it like any other call.
      for (int attempt = 0; attempt < 8; ++attempt) {
        status = login->Login(ntcp_ep);
        if (status.ok()) break;
        network.clock()->SleepMicros(100'000);
      }
      if (!status.ok()) {
        out.failures.push_back(util::Format(
            "auth: initial login to %s failed: %s", ntcp_ep.c_str(),
            status.ToString().c_str()));
      }
      login_by_ep[ntcp_ep] = std::move(login);
    }
    if (options.install_auth_refresher) {
      config.auth_refresher =
          [login_by_ep, auth_refresh_count, clock = network.clock()](
              const std::string& endpoint) -> std::function<util::Status()> {
        const auto it = login_by_ep.find(endpoint);
        if (it == login_by_ep.end()) return {};
        return [login = it->second, endpoint, auth_refresh_count,
                clock]() -> util::Status {
          util::Status status;
          for (int attempt = 0; attempt < 6; ++attempt) {
            status = login->Login(endpoint);
            if (status.ok()) {
              ++*auth_refresh_count;
              return status;
            }
            clock->SleepMicros(100'000);
          }
          return status;
        };
      };
    }
  }

  psd::SimulationCoordinator coordinator(config, &coordinator_rpc,
                                         network.clock());
  psd::RunReport report = coordinator.Run();

  // --- teardown --------------------------------------------------------------
  // A dropped propose *response* leaves the server holding an accepted
  // transaction the coordinator never learned about (so it cannot cancel
  // it — found by seed 187's first sweep). The protocol's backstop is
  // server-side proposal expiry; advance past the proposal window so every
  // armed expiry timer fires and terminalizes such orphans BEFORE the trace
  // snapshot. nees-lint then enforces the backstop: any transaction still
  // non-terminal at end of trace fails the run, and each kExpired
  // transition must be legal on the trace clock.
  //
  // The advance starts from the fault horizon, not just `now`: on a run
  // that stopped early (completion failure) or a long template whose
  // schedule outlives the natural end, crash faults may still be pending,
  // and their revivals must fire here — not during RunUntilQuiescent,
  // where a freshly built backend's heartbeat chain would never drain.
  network.AdvanceTo(std::max(network.clock()->NowMicros(), fault_horizon) +
                    config.proposal_timeout_micros +
                    2 * scenario.expiry_period_micros);
  // Now disarm the timer chains and drain to empty. Every crash fault's
  // revival has fired by now, so each slot holds a live stack again.
  for (auto& slot : sites) {
    if (slot->live == nullptr) continue;
    slot->live->backend->Stop();
    slot->live->server->Stop();
  }
  network.RunUntilQuiescent();

  // --- collect ---------------------------------------------------------------
  out.run_completed = report.completed;
  out.steps_completed = report.steps_completed;
  for (const auto& stats : report.site_stats) {
    out.step_reattempts = std::max(out.step_reattempts, stats.step_reattempts);
  }
  for (const auto& slot : sites) {
    // Wake/heartbeat counters accumulate across every incarnation.
    if (slot->live != nullptr) {
      out.wakes += slot->live->backend->wakes();
      out.heartbeats += slot->live->backend->heartbeats();
    }
    for (const auto& dead : slot->graveyard) {
      out.wakes += dead->backend->wakes();
      out.heartbeats += dead->backend->heartbeats();
    }
    out.site_crashes += slot->crashes;
    out.site_recoveries += slot->recoveries;
    out.transactions_recovered += slot->transactions_recovered;
    out.inflight_failed += slot->inflight_failed;
  }
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  out.metrics_table = tracer.metrics().ReportTable();
  out.history = report.history;
  out.trace_fingerprint = FingerprintSpans(spans);
  out.metrics_fingerprint = FingerprintString(out.metrics_table);
  out.history_fingerprint = FingerprintHistory(out.history);
  out.net_totals = network.TotalMetrics();
  out.events_processed = network.virtual_stats().events();
  out.frames_corrupted = out.net_totals.corrupted;
  out.auth_refreshes = *auth_refresh_count;
  if (options.export_artifacts) {
    out.trace_jsonl = tracer.ExportJsonLines();
  }

  // --- oracles ---------------------------------------------------------------
  if (!report.completed) {
    out.failures.push_back(util::Format(
        "completion: run stopped at step %zu/%zu: %s", report.steps_completed,
        report.total_steps, report.failure.ToString().c_str()));
  }

  if (options.run_oracles) {
    const check::LintReport lint = check::LintSpans(spans);
    for (const auto& violation : lint.violations) {
      out.failures.push_back("lint: " + violation.ToString());
    }

    if (report.completed) {
      for (const auto& message : check::CheckExactlyOncePerStep(
               spans, ntcp_endpoints, report.steps_completed,
               out.step_reattempts)) {
        out.failures.push_back("exactly-once: " + message);
      }
    }
  }

  if (util::lockdep::kEnabled) {
    const auto violations = util::lockdep::Violations();
    for (std::size_t i = lockdep_before; i < violations.size(); ++i) {
      out.failures.push_back("lockdep: " + violations[i].description);
    }
  }

  return out;
}

FuzzOutcome RunCentrifugeCase(const FuzzScenario& scenario,
                              std::uint64_t fault_mask,
                              const FuzzRunOptions& options) {
  FuzzOutcome out;
  const std::size_t lockdep_before = util::lockdep::ViolationCount();

  net::Network network(net::DeliveryMode::kVirtual, scenario.seed);
  obs::Tracer tracer(network.clock(), nullptr);
  network.set_tracer(&tracer);

  net::LinkModel local;
  local.latency_micros = 200;
  network.SetDefaultLink(local);
  network.SetLink(kOperatorEndpoint, kCentrifugeEndpoint,
                  scenario.site_links[0]);
  network.SetLink(kCentrifugeEndpoint, kOperatorEndpoint,
                  scenario.site_links[0]);

  // The E12 rig: soil container, robot arm, embedded bender elements. All
  // sensor noise is seeded from the scenario, so runs replay bit-identically.
  auto soil = std::make_shared<centrifuge::SoilModel>(
      centrifuge::SoilModel::DefaultProfile(0.3));
  auto arm = std::make_shared<centrifuge::RobotArm>(
      centrifuge::RobotArm::Params{}, soil.get(), scenario.seed ^ 0x0a21);
  auto benders = std::make_shared<centrifuge::BenderElementArray>(
      soil.get(), scenario.seed ^ 0x0be1);
  benders->AddElement("be1", {0.10, 0.10, -0.05});
  benders->AddElement("be2", {0.35, 0.10, -0.05});

  ntcp::NtcpServer server(
      &network, kCentrifugeEndpoint,
      std::make_unique<centrifuge::RobotArmPlugin>(arm, benders),
      network.clock());
  server.set_tracer(&tracer);
  if (!server.Start().ok()) {
    out.failures.push_back("centrifuge: NTCP server failed to start");
    return out;
  }
  server.ArmExpiryTimer(&network, scenario.expiry_period_micros);

  // --- fault schedule (operator link only) -----------------------------------
  std::int64_t fault_horizon = 0;
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (!FaultEnabled(fault_mask, i)) continue;
    const FuzzFault& f = scenario.faults[i];
    fault_horizon = std::max(
        fault_horizon,
        f.at_micros + std::max<std::int64_t>(f.duration_micros, 0));
    const std::string from =
        f.to_site ? kOperatorEndpoint : kCentrifugeEndpoint;
    const std::string to = f.to_site ? kCentrifugeEndpoint : kOperatorEndpoint;
    switch (f.kind) {
      case FuzzFault::Kind::kOutage: {
        net::OutageWindow window{f.at_micros, f.at_micros + f.duration_micros};
        network.AddOutage(from, to, window);
        break;
      }
      case FuzzFault::Kind::kDropNext:
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.DropNext(from, to, count);
        });
        break;
      case FuzzFault::Kind::kFrameCorrupt:
        network.ScheduleAt(f.at_micros, [&network, from, to, count = f.count] {
          network.CorruptNext(from, to, count);
        });
        break;
      default:
        // The centrifuge generator only emits the three classes above.
        break;
    }
  }

  // --- the campaign ----------------------------------------------------------
  net::RpcClient rpc(&network, kOperatorEndpoint);
  ntcp::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.rpc_timeout_micros = 500'000;
  retry.initial_backoff_micros = 50'000;
  retry.max_backoff_micros = 1'000'000;
  ntcp::NtcpClient client(&rpc, kCentrifugeEndpoint, retry, network.clock());
  client.set_tracer(&tracer);

  int transaction = 0;
  // The campaign's "history": an FNV digest over every measured control
  // point (Vs, tip resistance, arm state). Plays the TimeHistory's role in
  // the determinism oracle — there is no integrator in this shape.
  std::uint64_t measured_digest = kFnvOffset;
  auto run_txn = [&](std::vector<ntcp::ControlPointRequest> actions) -> bool {
    // Monotone step indices keep the lint step-ordering rule meaningful for
    // teleoperation traces too.
    const int step = transaction;
    ++transaction;
    // The MOST runner survives armed drop/corrupt bursts because the
    // coordinator re-drives a failed step (max_step_attempts); this shape
    // needs the same outer ladder. Each round is a fresh transaction id —
    // a round whose execute timed out may or may not have driven the arm,
    // and both the arm and soil models are idempotent for these actions, so
    // re-proposing is safe and the measured digest only ever folds in the
    // round that returned a result.
    util::Status failure = util::Status::Ok();
    for (int round = 0; round < 3; ++round) {
      ntcp::Proposal proposal;
      proposal.transaction_id =
          round == 0 ? util::Format("fuzz-cam-%d", step)
                     : util::Format("fuzz-cam-%d-r%d", step, round);
      proposal.step_index = step;
      proposal.actions = actions;
      proposal.timeout_micros = 20'000'000;
      const util::Status accepted = client.Propose(proposal);
      if (!accepted.ok()) {
        failure = util::Unavailable(
            util::Format("propose %s failed: %s",
                         proposal.transaction_id.c_str(),
                         accepted.ToString().c_str()));
        continue;
      }
      const util::Result<ntcp::TransactionResult> result =
          client.Execute(proposal.transaction_id);
      if (!result.ok()) {
        failure = util::Unavailable(
            util::Format("execute %s failed: %s",
                         proposal.transaction_id.c_str(),
                         result.status().ToString().c_str()));
        continue;
      }
      for (const auto& point : result->results) {
        FnvString(measured_digest, point.control_point);
        for (const double v : point.measured_displacement) {
          FnvDouble(measured_digest, v);
        }
        for (const double v : point.measured_force) {
          FnvDouble(measured_digest, v);
        }
      }
      return true;
    }
    out.failures.push_back(util::Format("completion: centrifuge %s",
                                        failure.ToString().c_str()));
    return false;
  };
  // One soil-characterization pass: shear-wave velocity between the bender
  // pair, then a cone penetration at -0.25m (the E12 measurement loop).
  auto characterize = [&]() -> bool {
    return run_txn({{"bender:be1:be2", {}, {}}}) &&
           run_txn({{"tool:cone-penetrometer", {}, {}}}) &&
           run_txn({{"penetrate", {-0.25}, {}}});
  };

  std::size_t piles_installed = 0;
  bool completed = characterize();
  if (completed) {
    for (std::size_t pile = 1; pile <= scenario.piles; ++pile) {
      // Pile grid stays inside the arm's 0.6m x 0.4m workspace for up to
      // 12 piles.
      const double x = 0.08 + 0.04 * static_cast<double>(pile);
      if (!run_txn({{"tool:gripper", {}, {}}}) ||
          !run_txn({{"arm", {x, 0.12, 0.0}, {}}}) ||
          !run_txn({{"pile", {-0.22}, {}}}) || !characterize()) {
        completed = false;
        break;
      }
      ++piles_installed;
    }
  }
  out.run_completed = completed;
  out.steps_completed = piles_installed;

  // --- teardown (same expiry backstop + fault-horizon rule as MOST) ----------
  network.AdvanceTo(std::max(network.clock()->NowMicros(), fault_horizon) +
                    20'000'000 + 2 * scenario.expiry_period_micros);
  server.Stop();
  network.RunUntilQuiescent();

  // --- collect + oracles -----------------------------------------------------
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  out.metrics_table = tracer.metrics().ReportTable();
  out.trace_fingerprint = FingerprintSpans(spans);
  out.metrics_fingerprint = FingerprintString(out.metrics_table);
  out.history_fingerprint = measured_digest;
  out.net_totals = network.TotalMetrics();
  out.frames_corrupted = out.net_totals.corrupted;
  out.events_processed = network.virtual_stats().events();
  if (options.export_artifacts) {
    out.trace_jsonl = tracer.ExportJsonLines();
  }

  if (options.run_oracles) {
    const check::LintReport lint = check::LintSpans(spans);
    for (const auto& violation : lint.violations) {
      out.failures.push_back("lint: " + violation.ToString());
    }
    // exactly-once is a coordinator-shaped oracle (per-(site, step) spans);
    // teleoperation's equivalent — no duplicated execution — is already
    // covered by lint's at-most-once rule on transaction ids.
  }

  if (util::lockdep::kEnabled) {
    const auto violations = util::lockdep::Violations();
    for (std::size_t i = lockdep_before; i < violations.size(); ++i) {
      out.failures.push_back("lockdep: " + violations[i].description);
    }
  }

  return out;
}

}  // namespace

FuzzOutcome RunFuzzCase(const FuzzScenario& scenario, std::uint64_t fault_mask,
                        const FuzzRunOptions& options) {
  if (scenario.shape == FuzzTemplate::kCentrifuge) {
    return RunCentrifugeCase(scenario, fault_mask, options);
  }
  return RunMostCase(scenario, fault_mask, options);
}

FuzzOutcome RunFuzzCaseChecked(const FuzzScenario& scenario,
                               std::uint64_t fault_mask,
                               const FuzzRunOptions& options) {
  FuzzOutcome first = RunFuzzCase(scenario, fault_mask, options);
  // The replica exists only to prove the fingerprints match: skip the
  // export and the re-run of oracles 2–3 (their verdict cannot change when
  // the fingerprints agree, and a disagreement fails the case anyway).
  FuzzRunOptions replica = options;
  replica.export_artifacts = false;
  replica.run_oracles = false;
  const FuzzOutcome second = RunFuzzCase(scenario, fault_mask, replica);
  if (first.trace_fingerprint != second.trace_fingerprint) {
    first.failures.push_back(
        "determinism: span traces differ between same-seed runs");
  }
  if (first.metrics_fingerprint != second.metrics_fingerprint) {
    first.failures.push_back(
        "determinism: metrics snapshots differ between same-seed runs");
  }
  if (first.history_fingerprint != second.history_fingerprint ||
      !HistoriesIdentical(first.history, second.history)) {
    first.failures.push_back(
        "determinism: displacement histories differ between same-seed runs");
  }
  return first;
}

std::uint64_t ShrinkFaultMask(std::size_t fault_count,
                              std::uint64_t failing_mask,
                              const std::function<bool(std::uint64_t)>& fails) {
  const std::size_t bits = std::min<std::size_t>(fault_count, 64);
  std::uint64_t mask = failing_mask;
  if (bits < 64) mask &= (1ULL << bits) - 1;

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::uint64_t candidate = mask & ~(1ULL << bit);
      if (candidate == mask) continue;
      if (fails(candidate)) {
        mask = candidate;
        shrunk = true;
      }
    }
  }
  return mask;
}

std::uint64_t ShrinkFaultMask(const FuzzScenario& scenario,
                              std::uint64_t failing_mask) {
  FuzzRunOptions options;
  options.export_artifacts = false;  // shrink probes only need verdicts
  return ShrinkFaultMask(
      scenario.faults.size(), failing_mask, [&](std::uint64_t candidate) {
        return !RunFuzzCaseChecked(scenario, candidate, options).ok();
      });
}

std::string ReplayCommand(std::uint64_t seed, FuzzTemplate shape,
                          std::uint64_t fault_mask) {
  return util::Format("nees_fuzz --seed %llu --template %s --fault-mask 0x%llx",
                      static_cast<unsigned long long>(seed),
                      std::string(TemplateName(shape)).c_str(),
                      static_cast<unsigned long long>(fault_mask));
}

}  // namespace nees::most
