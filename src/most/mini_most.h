// Mini-MOST (§3.5): the tabletop, single-PC emulation of the UIUC portion
// of MOST — a 1 m x 10 cm beam positioned by a stepper motor, LabVIEW for
// control and DAQ, a strain gauge + LVDT + load cell, and "a program where
// the beam is replaced by a first-order kinetic simulator ... for testing
// when the actual hardware is not available".
//
// Deployment: one NTCP server ("ntcp.minimost") whose plugin is either the
// LabVIEW plugin driving the stepper rig, or the kinetic simulator; the
// hybrid coordinator couples it with a numerical substructure for the rest
// of the (scaled) frame.
#pragma once

#include <memory>

#include "grid/container.h"
#include "grid/registry.h"
#include "grid/tenant.h"
#include "ntcp/server.h"
#include "obs/trace.h"
#include "psd/coordinator.h"
#include "structural/substructure.h"
#include "testbed/motion.h"

namespace nees::most {

struct MiniMostOptions {
  std::size_t steps = 600;
  double dt_seconds = 0.02;
  double peak_accel = 1.0;        // tabletop-scale shaking, m/s^2
  std::uint64_t seed = 42;

  // 1 m x 10 cm x 6 mm steel beam, cantilever.
  double beam_length_m = 1.0;
  double beam_width_m = 0.10;
  double beam_thickness_m = 0.006;
  double youngs_modulus = 200e9;
  double effective_mass_kg = 2.0;
  double damping_ratio = 0.02;
  double numeric_stiffness_fraction = 2.0;  // rest-of-frame / beam stiffness

  /// true: stepper rig behind the LabVIEW plugin; false: the first-order
  /// kinetic simulator stands in for the hardware.
  bool real_hardware = true;

  /// Optional observability: propagated to the network, both NTCP servers
  /// and the coordinator at Start(). Must outlive the experiment.
  obs::Tracer* tracer = nullptr;

  /// Experiment namespace (grid/tenant.h). Empty keeps the historical
  /// canonical names; non-empty prefixes both NTCP endpoints and the
  /// coordinator endpoint with "<ns>/" so many Mini-MOSTs share a network.
  std::string experiment_ns;

  /// Shared farm fabric (optional, must outlive the experiment): when set,
  /// Start() publishes both NTCP services to the shared container and
  /// registers the namespaced endpoints in the shared registry.
  grid::ServiceContainer* shared_container = nullptr;
  grid::RegistryService* shared_registry = nullptr;
  /// Lease for shared-registry registrations, 0 = no expiry.
  std::int64_t registry_lease_micros = 0;
};

/// Cantilever tip stiffness of the Mini-MOST beam: 3EI/L^3.
double MiniMostBeamStiffness(const MiniMostOptions& options);

class MiniMostExperiment {
 public:
  static constexpr const char* kNtcp = "ntcp.minimost";

  MiniMostExperiment(net::Network* network, util::Clock* clock,
                     MiniMostOptions options);
  ~MiniMostExperiment();

  util::Status Start();
  /// Tears down the servers and reaps this tenant's services/registrations
  /// from the shared farm fabric (no-op when standalone or never started).
  void Stop();

  psd::CoordinatorConfig MakeCoordinatorConfig(const std::string& run_id) const;
  util::Result<psd::RunReport> Run(const std::string& run_id);

  const MiniMostOptions& options() const { return options_; }
  const structural::GroundMotion& motion() const { return motion_; }
  ntcp::NtcpServerStats ServerStats() const;
  /// Stepper steps taken so far (real_hardware mode only, else 0).
  std::int64_t stepper_steps() const;

  /// The deployed (namespace-qualified) name for a canonical base name.
  std::string Qualified(std::string_view base) const {
    return grid::QualifiedName(options_.experiment_ns, base);
  }

 private:
  /// Registered endpoint for the qualified name, or the qualified name
  /// itself when no registry (or no entry) is available.
  std::string ResolveEndpoint(std::string_view base) const;

  net::Network* network_;
  util::Clock* clock_;
  MiniMostOptions options_;
  structural::GroundMotion motion_;
  std::unique_ptr<ntcp::NtcpServer> ntcp_;
  std::unique_ptr<ntcp::NtcpServer> sim_server_;
  testbed::StepperMotor* stepper_ = nullptr;  // owned via the plugin chain
  std::unique_ptr<net::RpcClient> coordinator_rpc_;
  bool started_ = false;
};

}  // namespace nees::most
