// The MOST experiment assembly (§3, Figs. 4/5/9): wires every subsystem
// into the July 30, 2003 topology —
//
//   coordinator (Matlab toolbox -> NTCP API)        [psd::SimulationCoordinator]
//     -> ntcp.uiuc -> ShoreWesternPlugin -> sw.uiuc -> servo-hydraulics
//     -> ntcp.ncsa -> MPlugin <- polling "Matlab" simulation backend
//     -> ntcp.cu   -> MPlugin <- polling backend -> xPC target -> rig
//   DAQ -> drop dir -> harvester -> ingestion -> repository (NCSA)
//   step observer  -> NSDS -> remote viewers
//   containers per site publish NTCP transaction SDEs for inspection
//
// The reduced structural model is the paper's two-bay single-story steel
// frame collapsed to its lateral story DOF; the three substructures carry
// the left column (UIUC, pinned at the beam: 3EI/L^3), the right column
// (CU, rigid connection: 12EI/L^3), and the center section (NCSA).
#pragma once

#include <array>
#include <filesystem>
#include <memory>

#include "daq/daq.h"
#include "grid/container.h"
#include "grid/registry.h"
#include "grid/tenant.h"
#include "nsds/nsds.h"
#include "ntcp/server.h"
#include "obs/trace.h"
#include "plugins/mplugin.h"
#include "psd/coordinator.h"
#include "repo/facade.h"
#include "structural/frame.h"
#include "testbed/shorewestern.h"
#include "testbed/xpc.h"

namespace nees::most {

struct MostOptions {
  std::size_t steps = 1500;     // the MOST step count
  double dt_seconds = 0.02;
  double peak_accel = 3.0;      // ~0.3 g synthetic record
  std::uint64_t seed = 2003'07'30;

  // Structure (Fig. 4): column/beam sections and story mass.
  structural::Section column_section;
  structural::Section beam_section;
  double column_height_m = 3.0;
  double bay_width_m = 4.0;
  double story_mass_kg = 5.0e4;
  double damping_ratio = 0.02;

  /// true: UIUC/CU are emulated physical rigs (the public experiment);
  /// false: all three substructures are simulations (the dry-run phase).
  bool hybrid = true;
  /// PSD scheme; operator splitting uses the derived stiffness breakdown
  /// as its K0 and tolerates arbitrarily coarse dt.
  psd::PsdIntegrator integrator = psd::PsdIntegrator::kCentralDifference;
  /// How the coordinator fans each NTCP phase out to the three sites.
  /// Results are identical across engines (E5/E6 assert this); only wall
  /// time and threading behavior differ.
  psd::StepEngine step_engine = psd::StepEngine::kAsync;
  /// Hysteretic (Bouc–Wen) columns at the physical sites instead of
  /// elastic ones — enables yielding/hysteresis studies.
  bool hysteretic_columns = false;

  bool with_repository = true;
  bool with_streaming = true;
  /// DAQ flush-and-ingest cadence, in PSD steps (0 disables the pipeline).
  std::size_t daq_flush_every_steps = 100;
  std::filesystem::path daq_drop_dir;  // default: temp dir per instance

  /// Optional observability: propagated to the network, NTCP servers and
  /// clients, plugins, DAQ and NSDS at Start(). Must outlive the experiment.
  obs::Tracer* tracer = nullptr;

  /// Experiment namespace (grid/tenant.h). Empty — the default — keeps the
  /// historical canonical names ("ntcp.uiuc", "container.nees", ...), so a
  /// standalone run is bit-identical to the pre-tenancy assembly. Non-empty
  /// prefixes every endpoint, registry entry, and data channel with
  /// "<ns>/", letting many experiments share one network.
  std::string experiment_ns;

  /// Shared farm fabric (all optional, must outlive the experiment). When
  /// set, Start() hosts its services in the shared container, registers its
  /// namespaced endpoints in the shared registry, and streams into the
  /// shared NSDS instead of creating private instances.
  grid::ServiceContainer* shared_container = nullptr;
  grid::RegistryService* shared_registry = nullptr;
  nsds::NsdsServer* shared_nsds = nullptr;

  MostOptions();
};

/// Lateral stiffness split across the three substructures.
struct StiffnessBreakdown {
  double left_n_per_m = 0.0;    // UIUC column (pin top): 3EI/L^3
  double right_n_per_m = 0.0;   // CU column (rigid top): 12EI/L^3
  double middle_n_per_m = 0.0;  // NCSA center section
  double total() const { return left_n_per_m + right_n_per_m + middle_n_per_m; }
};

/// Builds the full two-bay single-story FEM frame (for reference solutions
/// and modal checks).
structural::FrameModel BuildMostFrame(const MostOptions& options);

/// Derives the substructure stiffnesses from the member properties.
StiffnessBreakdown ComputeStiffnessBreakdown(const MostOptions& options);

class MostExperiment {
 public:
  // Canonical *base* endpoint names; the deployed name is
  // grid::QualifiedName(options.experiment_ns, base), which an empty
  // namespace leaves untouched. Discovery goes through the registry:
  // MakeCoordinatorConfig resolves each site's NTCP endpoint from its
  // namespaced registration rather than assuming name == endpoint.
  static constexpr const char* kNtcpUiuc = "ntcp.uiuc";
  static constexpr const char* kNtcpNcsa = "ntcp.ncsa";
  static constexpr const char* kNtcpCu = "ntcp.cu";
  static constexpr const char* kShoreWestern = "sw.uiuc";
  static constexpr const char* kNsds = "nsds.nees";
  static constexpr const char* kRepository = "repo.nees";
  static constexpr const char* kRegistry = "index.nees";

  MostExperiment(net::Network* network, util::Clock* clock,
                 MostOptions options);
  ~MostExperiment();

  /// Brings up all services and backend threads.
  util::Status Start();
  void Stop();

  /// Coordinator configuration for this deployment.
  psd::CoordinatorConfig MakeCoordinatorConfig(
      psd::FaultPolicy policy, const std::string& run_id) const;

  /// Runs a full experiment: coordinator + DAQ/streaming/ingestion hooks.
  util::Result<psd::RunReport> Run(psd::FaultPolicy policy,
                                   const std::string& run_id);

  /// All-numerical Newmark reference response (story displacement history).
  util::Result<structural::TimeHistory> ReferenceSolution() const;

  const MostOptions& options() const { return options_; }
  const StiffnessBreakdown& stiffness() const { return stiffness_; }
  const structural::GroundMotion& motion() const { return motion_; }

  nsds::NsdsServer* streaming() { return active_nsds_; }
  repo::RepositoryFacade* repository() { return repository_.get(); }
  grid::RegistryService* registry() { return active_registry_; }
  grid::ServiceContainer* container() { return active_container_; }
  daq::DaqSystem* daq() { return daq_.get(); }
  net::Network* network() { return network_; }

  /// The deployed (namespace-qualified) name for a canonical base name.
  std::string Qualified(std::string_view base) const {
    return grid::QualifiedName(options_.experiment_ns, base);
  }

  /// Per-site NTCP server statistics (executions, duplicates, ...); accepts
  /// the canonical base name or the namespace-qualified endpoint.
  ntcp::NtcpServerStats ServerStats(const std::string& endpoint) const;

 private:
  util::Status StartSiteServices();
  void ObserveStep(std::size_t step, const structural::Vector& displacement,
                   const std::vector<ntcp::TransactionResult>& results);
  /// Registry resolution for a site endpoint: the registered endpoint for
  /// the qualified name, or the qualified name itself pre-registration.
  std::string ResolveEndpoint(std::string_view base) const;

  net::Network* network_;
  util::Clock* clock_;
  MostOptions options_;
  StiffnessBreakdown stiffness_;
  structural::GroundMotion motion_;

  // Data channel names, namespace-qualified once at construction (the step
  // observer publishes them every step).
  std::string channel_displacement_;
  std::array<std::string, 3> channel_forces_;  // UIUC, NCSA, CU

  // Grid fabric: privately owned when standalone, borrowed from the farm
  // host when the shared_* options are set.
  std::unique_ptr<grid::ServiceContainer> container_;
  std::shared_ptr<grid::RegistryService> registry_;
  grid::ServiceContainer* active_container_ = nullptr;
  grid::RegistryService* active_registry_ = nullptr;
  nsds::NsdsServer* active_nsds_ = nullptr;

  // UIUC.
  std::unique_ptr<testbed::ShoreWesternEmulator> shore_western_;
  std::unique_ptr<net::RpcClient> uiuc_plugin_rpc_;
  std::unique_ptr<ntcp::NtcpServer> ntcp_uiuc_;

  // NCSA.
  plugins::MPlugin* ncsa_mplugin_ = nullptr;  // owned by its NtcpServer
  std::unique_ptr<plugins::PollingBackend> ncsa_backend_;
  std::unique_ptr<ntcp::NtcpServer> ntcp_ncsa_;

  // CU.
  plugins::MPlugin* cu_mplugin_ = nullptr;
  std::unique_ptr<plugins::PollingBackend> cu_backend_;
  std::shared_ptr<testbed::XpcTarget> cu_xpc_;
  std::unique_ptr<ntcp::NtcpServer> ntcp_cu_;

  // Data path.
  std::unique_ptr<nsds::NsdsServer> nsds_;
  std::unique_ptr<repo::RepositoryFacade> repository_;
  std::unique_ptr<daq::DaqSystem> daq_;
  std::unique_ptr<net::RpcClient> ingest_rpc_;
  std::unique_ptr<repo::IngestionTool> ingestion_;
  std::unique_ptr<daq::Harvester> harvester_;

  std::unique_ptr<net::RpcClient> coordinator_rpc_;
  bool started_ = false;
};

/// Reproduces the §3.4 fault narrative on a network: small transient bursts
/// at `transient_steps` (recoverable by RPC retry) and a long outage at
/// `fatal_step` sized to exhaust `public_run_attempts` RPC tries but not a
/// fully fault-tolerant coordinator's budget. Install via the coordinator's
/// step observer; returns the observer to chain.
class MostFaultSchedule {
 public:
  MostFaultSchedule(net::Network* network, std::string coordinator_endpoint,
                    std::string victim_endpoint);

  void AddTransientBurst(std::size_t step, int messages);
  void SetFatalOutage(std::size_t step, int messages);

  /// Call once per completed step (from the coordinator's observer).
  void OnStep(std::size_t step);

 private:
  net::Network* network_;
  std::string coordinator_;
  std::string victim_;
  std::vector<std::pair<std::size_t, int>> bursts_;
};

}  // namespace nees::most
