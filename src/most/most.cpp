#include "most/most.h"

#include "plugins/labview_plugin.h"
#include "plugins/policy_plugin.h"
#include "plugins/shorewestern_plugin.h"
#include "plugins/simulation_plugin.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/uuid.h"

namespace nees::most {
namespace {

std::unique_ptr<structural::SubstructureModel> MakeColumnModel(
    double stiffness, bool hysteretic) {
  if (hysteretic) {
    structural::BoucWenSubstructure::Params params;
    params.elastic_stiffness = stiffness;
    params.yield_displacement = 0.05;
    params.alpha = 0.1;
    return std::make_unique<structural::BoucWenSubstructure>(params);
  }
  structural::Matrix k(1, 1);
  k(0, 0) = stiffness;
  return std::make_unique<structural::ElasticSubstructure>(k);
}

std::unique_ptr<testbed::PhysicalSpecimen> MakeColumnRig(
    const std::string& name, double stiffness, bool hysteretic,
    std::uint64_t seed) {
  testbed::PhysicalSpecimen::Config config;
  config.name = name;
  config.limits.max_displacement_m = 0.15;
  config.limits.max_force_n = 5e5;
  config.sensor_seed = seed;
  auto motion = std::make_unique<testbed::ServoHydraulicActuator>(
      testbed::ServoHydraulicActuator::Params{});
  return std::make_unique<testbed::PhysicalSpecimen>(
      config, std::move(motion), MakeColumnModel(stiffness, hysteretic));
}

}  // namespace

MostOptions::MostOptions() {
  column_section.youngs_modulus = 200e9;
  column_section.area = 0.01;
  column_section.moment_of_inertia = 2e-5;
  column_section.mass_per_length = 78.5;
  beam_section = column_section;
  beam_section.moment_of_inertia = 4e-5;
  daq_drop_dir = std::filesystem::temp_directory_path() /
                 ("nees-most-" + util::NewUuid());
}

structural::FrameModel BuildMostFrame(const MostOptions& options) {
  structural::FrameModel frame;
  const double h = options.column_height_m;
  const double w = options.bay_width_m;
  const std::size_t b0 = frame.AddNode(0, 0);
  const std::size_t b1 = frame.AddNode(w, 0);
  const std::size_t b2 = frame.AddNode(2 * w, 0);
  const std::size_t t0 = frame.AddNode(0, h);
  const std::size_t t1 = frame.AddNode(w, h);
  const std::size_t t2 = frame.AddNode(2 * w, h);
  frame.FixAll(b0);
  frame.FixAll(b1);
  frame.FixAll(b2);
  frame.AddElement(b0, t0, options.column_section);
  frame.AddElement(b1, t1, options.column_section);
  frame.AddElement(b2, t2, options.column_section);
  frame.AddElement(t0, t1, options.beam_section);
  frame.AddElement(t1, t2, options.beam_section);
  for (std::size_t node : {t0, t1, t2}) {
    frame.AddLumpedMass(node, options.story_mass_kg / 3.0);
  }
  return frame;
}

StiffnessBreakdown ComputeStiffnessBreakdown(const MostOptions& options) {
  StiffnessBreakdown breakdown;
  // UIUC column: "a cantilever column because of the beam-column pin
  // connection" (§3) -> free rotation at the story level.
  breakdown.left_n_per_m = structural::CantileverLateralStiffness(
      options.column_section, options.column_height_m);
  // CU column: "rigidly connected ... suppressing all translational and
  // rotational degrees of freedom" -> fixed-fixed lateral stiffness.
  breakdown.right_n_per_m = structural::FixedFixedLateralStiffness(
      options.column_section, options.column_height_m);
  // NCSA center section: the middle column, rotation-restrained at the
  // story level by the beams it connects to.
  breakdown.middle_n_per_m = structural::FixedFixedLateralStiffness(
      options.column_section, options.column_height_m);
  return breakdown;
}

MostExperiment::MostExperiment(net::Network* network, util::Clock* clock,
                               MostOptions options)
    : network_(network), clock_(clock), options_(std::move(options)) {
  stiffness_ = ComputeStiffnessBreakdown(options_);
  structural::SyntheticQuakeParams quake;
  quake.dt_seconds = options_.dt_seconds;
  quake.steps = options_.steps;
  quake.peak_accel = options_.peak_accel;
  quake.seed = options_.seed;
  motion_ = structural::SynthesizeQuake(quake);
  channel_displacement_ = Qualified("most.displacement");
  channel_forces_ = {Qualified("most.force.UIUC"),
                     Qualified("most.force.NCSA"),
                     Qualified("most.force.CU")};
}

MostExperiment::~MostExperiment() { Stop(); }

util::Status MostExperiment::Start() {
  if (started_) return util::OkStatus();

  // Only install a tracer the experiment actually owns: under a shared farm
  // network the host wires the tracer once, and a tenant must not stomp it.
  if (options_.tracer != nullptr) network_->set_tracer(options_.tracer);

  if (options_.shared_container != nullptr) {
    active_container_ = options_.shared_container;
  } else {
    container_ = std::make_unique<grid::ServiceContainer>(
        network_, Qualified("container.nees"), clock_);
    NEES_RETURN_IF_ERROR(container_->Start());
    active_container_ = container_.get();
  }
  if (options_.shared_registry != nullptr) {
    active_registry_ = options_.shared_registry;
  } else {
    registry_ = std::make_shared<grid::RegistryService>(clock_);
    NEES_RETURN_IF_ERROR(active_container_->AddService(registry_).status());
    registry_->BindRpc(*active_container_);
    active_registry_ = registry_.get();
  }

  NEES_RETURN_IF_ERROR(StartSiteServices());

  if (options_.shared_nsds != nullptr) {
    active_nsds_ = options_.shared_nsds;
    active_registry_->Register({Qualified("nsds"), active_nsds_->endpoint(),
                                "nsds", "NCSA", 0},
                               0);
  } else if (options_.with_streaming) {
    nsds_ = std::make_unique<nsds::NsdsServer>(network_, Qualified(kNsds));
    NEES_RETURN_IF_ERROR(nsds_->Start());
    nsds_->set_tracer(options_.tracer);
    active_nsds_ = nsds_.get();
    active_registry_->Register(
        {Qualified("nsds"), nsds_->endpoint(), "nsds", "NCSA", 0}, 0);
  }
  if (options_.with_repository) {
    repository_ = std::make_unique<repo::RepositoryFacade>(
        network_, Qualified(kRepository));
    NEES_RETURN_IF_ERROR(repository_->Start());
    active_registry_->Register({Qualified("repository"),
                                Qualified(kRepository), "repository", "NCSA",
                                0},
                               0);

    daq_ = std::make_unique<daq::DaqSystem>();
    daq_->set_tracer(options_.tracer);
    daq_->AddChannel({channel_displacement_, "m", 50.0});
    for (const std::string& channel : channel_forces_) {
      daq_->AddChannel({channel, "N", 50.0});
    }
    ingest_rpc_ = std::make_unique<net::RpcClient>(network_,
                                                   Qualified("ingest.nees"));
    ingestion_ = std::make_unique<repo::IngestionTool>(
        ingest_rpc_.get(), Qualified(kRepository), "most", "nees");
    harvester_ = std::make_unique<daq::Harvester>(
        options_.daq_drop_dir,
        [this](const std::filesystem::path& file,
               const std::vector<nsds::DataSample>& samples) {
          return ingestion_->IngestDropFile(file, samples);
        });
    harvester_->set_tracer(options_.tracer);
  }

  coordinator_rpc_ = std::make_unique<net::RpcClient>(
      network_, Qualified("most.coordinator"));
  started_ = true;
  return util::OkStatus();
}

util::Status MostExperiment::StartSiteServices() {
  // ---------------- UIUC: Shore-Western path (Fig. 9 left branch) ---------
  std::unique_ptr<ntcp::ControlPlugin> uiuc_plugin;
  if (options_.hybrid) {
    shore_western_ = std::make_unique<testbed::ShoreWesternEmulator>(
        network_, Qualified(kShoreWestern),
        MakeColumnRig("uiuc-left-column", stiffness_.left_n_per_m,
                      options_.hysteretic_columns, options_.seed + 1));
    NEES_RETURN_IF_ERROR(shore_western_->Start());
    uiuc_plugin_rpc_ =
        std::make_unique<net::RpcClient>(network_, Qualified("plugin.uiuc"));
    plugins::ShoreWesternPlugin::Config sw_config;
    sw_config.control_point = "column-top";
    uiuc_plugin = std::make_unique<plugins::ShoreWesternPlugin>(
        sw_config, uiuc_plugin_rpc_.get(), Qualified(kShoreWestern));
  } else {
    auto simulation = std::make_unique<plugins::SimulationPlugin>();
    simulation->AddControlPoint(
        "column-top", MakeColumnModel(stiffness_.left_n_per_m, false));
    uiuc_plugin = std::move(simulation);
  }
  // Site policy wrapper: UIUC retains control over acceptable commands.
  plugins::SitePolicy uiuc_policy;
  uiuc_policy.max_abs_displacement_m = 0.15;
  uiuc_policy.reject_force_control = true;
  ntcp_uiuc_ = std::make_unique<ntcp::NtcpServer>(
      network_, Qualified(kNtcpUiuc),
      std::make_unique<plugins::LimitPolicyPlugin>(uiuc_policy,
                                                   std::move(uiuc_plugin)),
      clock_);
  NEES_RETURN_IF_ERROR(ntcp_uiuc_->Start());
  NEES_RETURN_IF_ERROR(ntcp_uiuc_->PublishTo(*active_container_));
  ntcp_uiuc_->set_tracer(options_.tracer);
  active_registry_->Register(
      {Qualified("ntcp.uiuc"), Qualified(kNtcpUiuc), "ntcp", "UIUC", 0}, 0);

  // ---------------- NCSA: Mplugin + polling simulation backend ------------
  {
    auto mplugin = std::make_unique<plugins::MPlugin>();
    ncsa_mplugin_ = mplugin.get();
    ntcp_ncsa_ = std::make_unique<ntcp::NtcpServer>(
        network_, Qualified(kNtcpNcsa), std::move(mplugin), clock_);
    NEES_RETURN_IF_ERROR(ntcp_ncsa_->Start());
    NEES_RETURN_IF_ERROR(ntcp_ncsa_->PublishTo(*active_container_));
    ntcp_ncsa_->set_tracer(options_.tracer);
    ncsa_mplugin_->BindBackendRpc(ntcp_ncsa_->rpc());

    auto models = std::make_shared<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>();
    (*models)["center-frame"] =
        MakeColumnModel(stiffness_.middle_n_per_m, false);
    ncsa_backend_ = std::make_unique<plugins::PollingBackend>(
        ncsa_mplugin_, plugins::MakeSimulationCompute(models),
        /*poll_wait_micros=*/500'000);
    ncsa_backend_->Start();
    active_registry_->Register(
        {Qualified("ntcp.ncsa"), Qualified(kNtcpNcsa), "ntcp", "NCSA", 0}, 0);
  }

  // ---------------- CU: same Mplugin code, xPC-driven rig -----------------
  {
    auto mplugin = std::make_unique<plugins::MPlugin>();
    cu_mplugin_ = mplugin.get();
    ntcp_cu_ = std::make_unique<ntcp::NtcpServer>(
        network_, Qualified(kNtcpCu), std::move(mplugin), clock_);
    NEES_RETURN_IF_ERROR(ntcp_cu_->Start());
    NEES_RETURN_IF_ERROR(ntcp_cu_->PublishTo(*active_container_));
    ntcp_cu_->set_tracer(options_.tracer);
    cu_mplugin_->BindBackendRpc(ntcp_cu_->rpc());

    plugins::PollingBackend::Compute compute;
    if (options_.hybrid) {
      cu_xpc_ = std::make_shared<testbed::XpcTarget>(
          testbed::XpcTarget::Params{},
          MakeColumnRig("cu-right-column", stiffness_.right_n_per_m,
                        options_.hysteretic_columns, options_.seed + 2));
      auto xpc = cu_xpc_;
      obs::Tracer* tracer = options_.tracer;
      compute = [xpc, tracer](const ntcp::Proposal& proposal)
          -> util::Result<ntcp::TransactionResult> {
        if (proposal.actions.size() != 1 ||
            proposal.actions[0].target_displacement.size() != 1) {
          return util::InvalidArgument("CU rig takes one 1-DOF action");
        }
        NEES_ASSIGN_OR_RETURN(
            testbed::Measurement measurement,
            xpc->Execute(proposal.actions[0].target_displacement[0]));
        if (tracer != nullptr) {
          tracer->RecordEvent(
              "actuator.settle", "settle",
              static_cast<std::int64_t>(measurement.motion_seconds * 1e6),
              {{"site", "CU"}});
          tracer->metrics().Observe(
              "actuator.settle_micros", measurement.motion_seconds * 1e6);
        }
        ntcp::TransactionResult result;
        ntcp::ControlPointResult cp;
        cp.control_point = proposal.actions[0].control_point;
        cp.measured_displacement = {measurement.displacement_m};
        cp.measured_force = {measurement.force_n};
        result.results.push_back(std::move(cp));
        return result;
      };
    } else {
      auto models = std::make_shared<std::map<
          std::string, std::unique_ptr<structural::SubstructureModel>>>();
      (*models)["column-top"] =
          MakeColumnModel(stiffness_.right_n_per_m, false);
      compute = plugins::MakeSimulationCompute(models);
    }
    cu_backend_ = std::make_unique<plugins::PollingBackend>(
        cu_mplugin_, std::move(compute), /*poll_wait_micros=*/500'000);
    cu_backend_->Start();
    active_registry_->Register(
        {Qualified("ntcp.cu"), Qualified(kNtcpCu), "ntcp", "CU", 0}, 0);
  }
  return util::OkStatus();
}

void MostExperiment::Stop() {
  if (ncsa_backend_) ncsa_backend_->Stop();
  if (cu_backend_) cu_backend_->Stop();
  // Farm-hosted tenants evict their soft state from the shared fabric; the
  // namespace guard keeps a (mis)configured empty-ns tenant from sweeping
  // neighbors out of a shared host.
  if (!options_.experiment_ns.empty()) {
    if (options_.shared_container != nullptr) {
      (void)options_.shared_container->DestroyTenant(options_.experiment_ns);
    }
    if (options_.shared_registry != nullptr) {
      (void)options_.shared_registry->UnregisterTenant(options_.experiment_ns);
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(options_.daq_drop_dir, ec);
  started_ = false;
}

psd::CoordinatorConfig MostExperiment::MakeCoordinatorConfig(
    psd::FaultPolicy policy, const std::string& run_id) const {
  psd::CoordinatorConfig config;
  config.run_id = run_id;
  config.mass = structural::Matrix::Identity(1) * options_.story_mass_kg;
  const double omega = std::sqrt(stiffness_.total() / options_.story_mass_kg);
  config.damping = structural::Matrix::Identity(1) *
                   (2.0 * options_.damping_ratio * omega *
                    options_.story_mass_kg);
  config.iota = {1.0};
  config.motion = motion_;
  config.sites = {
      {"UIUC", ResolveEndpoint(kNtcpUiuc), "column-top", {0}},
      {"NCSA", ResolveEndpoint(kNtcpNcsa), "center-frame", {0}},
      {"CU", ResolveEndpoint(kNtcpCu), "column-top", {0}},
  };
  config.fault_policy = policy;
  config.step_engine = options_.step_engine;
  config.integrator = options_.integrator;
  config.tracer = options_.tracer;
  if (options_.integrator == psd::PsdIntegrator::kOperatorSplitting) {
    config.initial_stiffness =
        structural::Matrix::Identity(1) * stiffness_.total();
  }
  return config;
}

void MostExperiment::ObserveStep(
    std::size_t step, const structural::Vector& displacement,
    const std::vector<ntcp::TransactionResult>& results) {
  const std::int64_t t_micros =
      static_cast<std::int64_t>(step * options_.dt_seconds * 1e6);
  std::vector<nsds::DataSample> samples;
  samples.push_back({channel_displacement_, t_micros, displacement[0]});
  for (std::size_t i = 0; i < results.size() && i < channel_forces_.size();
       ++i) {
    if (results[i].results.empty() ||
        results[i].results[0].measured_force.empty()) {
      continue;
    }
    samples.push_back({channel_forces_[i], t_micros,
                       results[i].results[0].measured_force[0]});
  }

  if (daq_) {
    for (const nsds::DataSample& sample : samples) {
      (void)daq_->Record(sample.channel, sample.time_micros, sample.value);
    }
    if (options_.daq_flush_every_steps > 0 && step > 0 &&
        step % options_.daq_flush_every_steps == 0) {
      if (daq_->Flush(options_.daq_drop_dir, "most").ok() && harvester_) {
        (void)harvester_->ScanOnce();
      }
    }
  }
  if (active_nsds_ != nullptr) active_nsds_->Publish(samples);
}

util::Result<psd::RunReport> MostExperiment::Run(psd::FaultPolicy policy,
                                                 const std::string& run_id) {
  NEES_RETURN_IF_ERROR(Start());
  psd::SimulationCoordinator coordinator(
      MakeCoordinatorConfig(policy, run_id), coordinator_rpc_.get(), clock_);
  coordinator.SetStepObserver(
      [this](std::size_t step, const structural::Vector& displacement,
             const std::vector<ntcp::TransactionResult>& results) {
        ObserveStep(step, displacement, results);
      });
  psd::RunReport report = coordinator.Run();

  // Final DAQ flush + ingest so the archive holds the complete record.
  if (daq_ && harvester_) {
    if (daq_->Flush(options_.daq_drop_dir, "most").ok()) {
      (void)harvester_->ScanOnce();
    }
  }
  return report;
}

util::Result<structural::TimeHistory> MostExperiment::ReferenceSolution()
    const {
  const structural::Matrix mass =
      structural::Matrix::Identity(1) * options_.story_mass_kg;
  const structural::Matrix stiffness =
      structural::Matrix::Identity(1) * stiffness_.total();
  const double omega = std::sqrt(stiffness_.total() / options_.story_mass_kg);
  const structural::Matrix damping =
      structural::Matrix::Identity(1) *
      (2.0 * options_.damping_ratio * omega * options_.story_mass_kg);
  structural::NewmarkBeta newmark(mass, damping, stiffness, {1.0});
  return newmark.Integrate(motion_);
}

std::string MostExperiment::ResolveEndpoint(std::string_view base) const {
  const std::string qualified = Qualified(base);
  if (active_registry_ != nullptr) {
    if (auto entry = active_registry_->LookupEntry(qualified)) {
      return entry->endpoint;
    }
  }
  return qualified;
}

ntcp::NtcpServerStats MostExperiment::ServerStats(
    const std::string& endpoint) const {
  const auto matches = [&](const char* base) {
    return endpoint == base || endpoint == Qualified(base);
  };
  if (matches(kNtcpUiuc) && ntcp_uiuc_) return ntcp_uiuc_->stats();
  if (matches(kNtcpNcsa) && ntcp_ncsa_) return ntcp_ncsa_->stats();
  if (matches(kNtcpCu) && ntcp_cu_) return ntcp_cu_->stats();
  return {};
}

// ---------------------------------------------------------------------------
// MostFaultSchedule

MostFaultSchedule::MostFaultSchedule(net::Network* network,
                                     std::string coordinator_endpoint,
                                     std::string victim_endpoint)
    : network_(network),
      coordinator_(std::move(coordinator_endpoint)),
      victim_(std::move(victim_endpoint)) {}

void MostFaultSchedule::AddTransientBurst(std::size_t step, int messages) {
  bursts_.emplace_back(step, messages);
}

void MostFaultSchedule::SetFatalOutage(std::size_t step, int messages) {
  bursts_.emplace_back(step, messages);
}

void MostFaultSchedule::OnStep(std::size_t step) {
  for (const auto& [at_step, messages] : bursts_) {
    if (at_step == step + 1) {
      // Arm the fault so it hits the *next* step's first messages.
      network_->DropNext(coordinator_, victim_, messages);
      NEES_LOG_INFO("most.faults")
          << "armed " << messages << "-message loss toward " << victim_
          << " at step " << at_step;
    }
  }
}

}  // namespace nees::most
