// Deterministic simulation fuzzer for the MOST stack (nees_fuzz).
//
// DeliveryMode::kVirtual turns the whole distributed experiment — RPC
// delivery, retry backoff, long-poll heartbeats, proposal-expiry timers —
// into one single-threaded, totally ordered event schedule per seed. This
// harness exploits that: GenerateScenario(seed) derives a random topology
// (3–32 sites), per-link latency/jitter/drop models, a step engine, and a
// fault schedule (outage windows, forced drops, lost mplugin.wake
// notifications, whole-site crash/restarts) from independent Rng lanes;
// RunFuzzCase wires up a full
// MOST-shaped experiment (coordinator + per-site NTCP server + MPlugin +
// event-driven polling backend) and runs it to completion on virtual time.
//
// Oracle stack, checked per case:
//   1. completion    — the fault schedule is survivable by construction
//                      (outages shorter than the retry span, bounded drop
//                      probability), so the run must complete;
//   2. nees-lint     — check::LintSpans replays the trace against the
//                      Fig. 1 protocol rules (at-most-once, legal paths,
//                      step monotonicity, expiry, span nesting);
//   3. exactly-once  — run completion implies every (site, step) executed
//                      exactly once modulo legitimate re-proposals
//                      (check::CheckExactlyOncePerStep);
//   4. determinism   — RunFuzzCaseChecked runs the same seed twice and
//                      requires byte-identical span traces, metrics tables,
//                      and displacement histories.
//
// A failing (seed, fault_mask) pair is shrunk greedily (ShrinkFaultMask)
// to a minimal fault subset that still fails, and ReplayCommand() prints
// the exact `nees_fuzz --seed N --fault-mask 0x..` line that reproduces it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.h"
#include "psd/coordinator.h"

namespace nees::most {

/// One schedulable fault. Times are virtual micros from the start of the
/// run; `site` indexes the scenario's site list.
struct FuzzFault {
  enum class Kind {
    kOutage,    // coordinator<->site link dead for [at, at+duration)
    kDropNext,  // drop the next `count` messages on one link direction
    kWakeDrop,  // drop the next `count` mplugin.wake notifications
    /// Kill the whole site process at `at_micros` (server, plugin, backend,
    /// wake plumbing; the unsynced WAL tail is lost) and revive it
    /// `duration_micros` later: a fresh stack is built over the surviving
    /// log and NtcpServer::AttachWal replays it (docs/RECOVERY.md). Crash
    /// downtime stays under the coordinator's re-proposal tolerance, so the
    /// completion oracle remains sound; the crash-consistency lint rule
    /// audits the dead window.
    kSiteCrashRestart,
  };

  Kind kind = Kind::kOutage;
  std::size_t site = 0;
  bool to_site = true;  // kOutage/kDropNext: coordinator->site direction?
  std::int64_t at_micros = 0;
  std::int64_t duration_micros = 0;  // kOutage: dead link; crash: downtime
  int count = 1;                     // kDropNext / kWakeDrop

  std::string ToString() const;
};

/// A complete generated test case. Everything downstream (topology, link
/// models, engine, cadences, faults) is a pure function of `seed`.
struct FuzzScenario {
  std::uint64_t seed = 0;
  std::size_t sites = 3;
  std::size_t steps = 12;
  /// kThreadPerSite is deliberately excluded: worker threads would race the
  /// single-threaded virtual event loop and break seed determinism.
  psd::StepEngine engine = psd::StepEngine::kAsync;
  std::vector<net::LinkModel> site_links;  // coordinator<->site, per site
  std::int64_t heartbeat_micros = 250'000;
  std::int64_t expiry_period_micros = 500'000;
  std::vector<FuzzFault> faults;

  /// Multi-line human-readable summary (faults listed with their mask bit).
  std::string Describe() const;
};

FuzzScenario GenerateScenario(std::uint64_t seed);

/// Everything a single run produced, plus the oracle verdicts.
struct FuzzOutcome {
  std::vector<std::string> failures;  // empty == all oracles held
  bool run_completed = false;
  std::size_t steps_completed = 0;
  std::uint64_t step_reattempts = 0;  // max over sites
  std::string trace_jsonl;            // byte-stable tracer export
  std::string metrics_table;          // byte-stable metrics report
  structural::TimeHistory history;
  net::LinkMetrics net_totals;
  std::uint64_t events_processed = 0;  // virtual loop deliveries + timers
  std::uint64_t wakes = 0;             // backend wake RPCs handled
  std::uint64_t heartbeats = 0;        // backend heartbeat firings
  // Crash/restart accounting (kSiteCrashRestart faults).
  std::uint64_t site_crashes = 0;      // kill events that found a live site
  std::uint64_t site_recoveries = 0;   // revivals (== crashes when all fire)
  std::uint64_t transactions_recovered = 0;  // rebuilt from WAL replay
  std::uint64_t inflight_failed = 0;   // crash-marked kExecuting -> kFailed

  bool ok() const { return failures.empty(); }
};

inline constexpr std::uint64_t kAllFaults = ~0ULL;

/// Runs one scenario on a fresh kVirtual network. Bit i of `fault_mask`
/// enables scenario.faults[i] (faults beyond bit 63 are always enabled;
/// generated schedules stay well under that). Checks oracles 1–3.
FuzzOutcome RunFuzzCase(const FuzzScenario& scenario,
                        std::uint64_t fault_mask = kAllFaults);

/// RunFuzzCase twice; adds oracle 4 (same-seed determinism) failures to the
/// first outcome.
FuzzOutcome RunFuzzCaseChecked(const FuzzScenario& scenario,
                               std::uint64_t fault_mask = kAllFaults);

/// Greedy delta-debugging: starting from a failing mask, repeatedly drop
/// single faults while the case still fails, until no single removal keeps
/// it failing. Returns the minimal mask (callers should confirm the input
/// mask actually fails first).
std::uint64_t ShrinkFaultMask(const FuzzScenario& scenario,
                              std::uint64_t failing_mask);

/// The exact command line that replays (seed, mask).
std::string ReplayCommand(std::uint64_t seed, std::uint64_t fault_mask);

std::string_view EngineName(psd::StepEngine engine);

}  // namespace nees::most
