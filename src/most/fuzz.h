// Deterministic simulation fuzzer for the MOST stack (nees_fuzz).
//
// DeliveryMode::kVirtual turns the whole distributed experiment — RPC
// delivery, retry backoff, long-poll heartbeats, proposal-expiry timers —
// into one single-threaded, totally ordered event schedule per seed. This
// harness exploits that: GenerateScenario(seed) derives a random topology,
// per-link latency/jitter/drop models, a step engine, and a fault schedule
// (outage windows, forced drops, lost mplugin.wake notifications, in-flight
// frame corruption, site clock skew, mid-run credential expiry, whole-site
// crash/restarts) from independent Rng lanes; RunFuzzCase wires up a full
// MOST-shaped experiment (coordinator + per-site NTCP server + MPlugin +
// event-driven polling backend) and runs it to completion on virtual time.
//
// Scenario templates (TemplateForSeed makes the choice a pure function of
// the seed, so `nees_fuzz --seed N` replays exactly what a sweep ran):
//   kMini       — small topologies and short runs; the bulk of a campaign,
//                 tuned so a 1-core host clears >500k seeds/hour;
//   kStandard   — the original 3–32 site / 8–24 step generator (pinned
//                 regression seeds 187/49/44/25 live here);
//   kFullMost   — paper-length runs: 1,500 steps (§3's earthquake record)
//                 over 2–4 sites with faults scattered across the full
//                 10-minute virtual horizon;
//   kCentrifuge — the E12 UC Davis campaign: one robot-arm/bender-element
//                 site teleoperated through NTCP, every action a
//                 propose/execute transaction, faults on the operator link.
//
// Oracle stack, checked per case:
//   1. completion    — the fault schedule is survivable by construction
//                      (outages shorter than the retry span, bounded drop
//                      probability), so the run must complete;
//   2. nees-lint     — check::LintSpans replays the trace against the
//                      Fig. 1 protocol rules (at-most-once, legal paths,
//                      step monotonicity, expiry, span nesting);
//   3. exactly-once  — run completion implies every (site, step) executed
//                      exactly once modulo legitimate re-proposals
//                      (check::CheckExactlyOncePerStep);
//   4. determinism   — RunFuzzCaseChecked runs the same seed twice and
//                      requires identical trace/metrics/history fingerprints
//                      (byte-identical artifacts when both runs export).
//
// A failing (seed, fault_mask) pair is shrunk greedily (ShrinkFaultMask)
// to a minimal fault subset that still fails, and ReplayCommand() prints
// the exact `nees_fuzz --seed N --fault-mask 0x.. --template T` line that
// reproduces it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.h"
#include "psd/coordinator.h"

namespace nees::most {

/// One schedulable fault. Times are virtual micros from the start of the
/// run; `site` indexes the scenario's site list.
struct FuzzFault {
  enum class Kind {
    kOutage,    // coordinator<->site link dead for [at, at+duration)
    kDropNext,  // drop the next `count` messages on one link direction
    kWakeDrop,  // drop the next `count` mplugin.wake notifications
    /// Kill the whole site process at `at_micros` (server, plugin, backend,
    /// wake plumbing; the unsynced WAL tail is lost) and revive it
    /// `duration_micros` later: a fresh stack is built over the surviving
    /// log and NtcpServer::AttachWal replays it (docs/RECOVERY.md). Crash
    /// downtime stays under the coordinator's re-proposal tolerance, so the
    /// completion oracle remains sound; the crash-consistency lint rule
    /// audits the dead window.
    kSiteCrashRestart,
    /// Mutate the next `count` frames in flight on one link direction
    /// (net::Network::CorruptNext): re-encoded through the canonical wire
    /// format, 1–3 bytes flipped or the frame truncated, re-decoded at
    /// arrival. The Decode-boundary CRC must turn every mutation into a
    /// detected loss the retry ladder absorbs — this fault class is what
    /// proved the frame needed a checksum in the first place.
    kFrameCorrupt,
    /// Jump the site's reported clock forward by `duration_micros` at
    /// `at_micros` (an NTP discipline slip). Forward-only, so the skewed
    /// clock stays monotonic; per-server timestamp logic (proposal expiry,
    /// token validation) must tolerate drifting relative to the grid.
    kClockSkew,
    /// The coordinator's session token for the site expires at `at_micros`
    /// (GSI proxy-credential rollover, the E10 path). The site runs a real
    /// AuthService; the NTCP client's auth-refresher hook must re-handshake
    /// and retry instead of failing the run — before that hook existed, a
    /// routine credential rollover killed the experiment.
    kCredentialExpiry,
  };

  Kind kind = Kind::kOutage;
  std::size_t site = 0;
  bool to_site = true;  // directed faults: coordinator->site direction?
  std::int64_t at_micros = 0;
  std::int64_t duration_micros = 0;  // outage/crash: window; skew: offset
  int count = 1;                     // kDropNext / kWakeDrop / kFrameCorrupt

  std::string ToString() const;
};

/// Scenario shape; see the header comment. The template is part of the
/// replay identity: (seed, template, mask) fully determines a run.
enum class FuzzTemplate {
  kMini,
  kStandard,
  kFullMost,
  kCentrifuge,
};

/// The campaign mix: which template `seed` runs under when none is forced.
/// A pure function of the seed (hash lane, no draws shared with scenario
/// generation), weighted so minis dominate the seeds/hour budget while
/// every sweep still exercises the long and centrifuge shapes.
FuzzTemplate TemplateForSeed(std::uint64_t seed);

std::string_view TemplateName(FuzzTemplate t);
/// Parses "mini" / "standard" / "full-most" / "centrifuge" / "auto".
/// "auto" is not a template — callers map it to TemplateForSeed — so it
/// returns false, as does any unknown name.
bool ParseTemplateName(std::string_view name, FuzzTemplate* out);

/// A complete generated test case. Everything downstream (topology, link
/// models, engine, cadences, faults) is a pure function of (seed, shape).
struct FuzzScenario {
  std::uint64_t seed = 0;
  FuzzTemplate shape = FuzzTemplate::kStandard;
  std::size_t sites = 3;
  std::size_t steps = 12;
  /// kThreadPerSite is deliberately excluded: worker threads would race the
  /// single-threaded virtual event loop and break seed determinism.
  psd::StepEngine engine = psd::StepEngine::kAsync;
  std::vector<net::LinkModel> site_links;  // coordinator<->site, per site
  std::int64_t heartbeat_micros = 250'000;
  std::int64_t expiry_period_micros = 500'000;
  /// kCentrifuge only: piles installed (each = 3 robot transactions, plus a
  /// 3-transaction soil characterization pass before and after every pile).
  std::size_t piles = 0;
  std::vector<FuzzFault> faults;

  /// Multi-line human-readable summary (faults listed with their mask bit).
  std::string Describe() const;
};

/// kStandard generation (the historical entry point; pinned seeds replay
/// through this).
FuzzScenario GenerateScenario(std::uint64_t seed);
/// Generation for an explicit template.
FuzzScenario GenerateScenario(std::uint64_t seed, FuzzTemplate shape);

/// Per-run knobs. The defaults reproduce the full-artifact behaviour the
/// unit tests rely on; sweeps turn exports off (the JSONL string is the
/// single most expensive part of a clean run) and compare fingerprints.
struct FuzzRunOptions {
  /// Fill FuzzOutcome::trace_jsonl (the byte-stable JSONL export). The
  /// structural fingerprints are computed either way.
  bool export_artifacts = true;
  /// Run oracles 2–3 (nees-lint + exactly-once). Oracles 1 (completion),
  /// 4 (determinism, via RunFuzzCaseChecked) and 5 (lockdep) are always on.
  bool run_oracles = true;
  /// Install the NtcpClient credential-refresh hook (the kCredentialExpiry
  /// fix). Turned off only to reproduce the original bug: with a real
  /// AuthService on the site and no refresher, a mid-run token expiry is a
  /// definitive auth error and the run dies.
  bool install_auth_refresher = true;
};

/// Everything a single run produced, plus the oracle verdicts.
struct FuzzOutcome {
  std::vector<std::string> failures;  // empty == all oracles held
  bool run_completed = false;
  std::size_t steps_completed = 0;
  std::uint64_t step_reattempts = 0;  // max over sites
  std::string trace_jsonl;            // byte-stable export (if exported)
  std::string metrics_table;          // byte-stable metrics report
  structural::TimeHistory history;
  /// Structural fingerprints (FNV-1a) of the span snapshot, the metrics
  /// table, and the response history — what RunFuzzCaseChecked compares, so
  /// the determinism replica never has to build the JSONL string.
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t metrics_fingerprint = 0;
  std::uint64_t history_fingerprint = 0;
  net::LinkMetrics net_totals;
  std::uint64_t events_processed = 0;  // virtual loop deliveries + timers
  std::uint64_t wakes = 0;             // backend wake RPCs handled
  std::uint64_t heartbeats = 0;        // backend heartbeat firings
  // Crash/restart accounting (kSiteCrashRestart faults).
  std::uint64_t site_crashes = 0;      // kill events that found a live site
  std::uint64_t site_recoveries = 0;   // revivals (== crashes when all fire)
  std::uint64_t transactions_recovered = 0;  // rebuilt from WAL replay
  std::uint64_t inflight_failed = 0;   // crash-marked kExecuting -> kFailed
  // New-fault-class accounting.
  std::uint64_t frames_corrupted = 0;  // CorruptNext mutations applied
  std::uint64_t auth_refreshes = 0;    // mid-op credential re-handshakes

  bool ok() const { return failures.empty(); }
};

inline constexpr std::uint64_t kAllFaults = ~0ULL;

/// Runs one scenario on a fresh kVirtual network. Bit i of `fault_mask`
/// enables scenario.faults[i] (faults beyond bit 63 are always enabled;
/// generated schedules stay well under that). Checks oracles 1–3.
FuzzOutcome RunFuzzCase(const FuzzScenario& scenario,
                        std::uint64_t fault_mask = kAllFaults,
                        const FuzzRunOptions& options = FuzzRunOptions());

/// RunFuzzCase twice; adds oracle 4 (same-seed determinism) failures to the
/// first outcome. The replica run skips exports and oracles 2–3 (its only
/// job is to produce fingerprints), so a checked clean run costs well under
/// 2x a plain one.
FuzzOutcome RunFuzzCaseChecked(const FuzzScenario& scenario,
                               std::uint64_t fault_mask = kAllFaults,
                               const FuzzRunOptions& options = FuzzRunOptions());

/// Greedy delta-debugging: starting from a failing mask, repeatedly drop
/// single faults while the case still fails, until no single removal keeps
/// it failing. Returns the minimal mask (callers should confirm the input
/// mask actually fails first).
std::uint64_t ShrinkFaultMask(const FuzzScenario& scenario,
                              std::uint64_t failing_mask);

/// Predicate form, for callers that define "fails" themselves (and for
/// testing the shrinker against a synthetic failure without paying for real
/// runs). `fails(mask)` must be deterministic.
std::uint64_t ShrinkFaultMask(std::size_t fault_count,
                              std::uint64_t failing_mask,
                              const std::function<bool(std::uint64_t)>& fails);

/// The exact command line that replays (seed, template, mask).
std::string ReplayCommand(std::uint64_t seed, FuzzTemplate shape,
                          std::uint64_t fault_mask);

std::string_view EngineName(psd::StepEngine engine);

}  // namespace nees::most
