#include "most/mini_most.h"

#include <cmath>

#include "plugins/labview_plugin.h"
#include "plugins/simulation_plugin.h"

namespace nees::most {

double MiniMostBeamStiffness(const MiniMostOptions& options) {
  const double inertia = options.beam_width_m *
                         std::pow(options.beam_thickness_m, 3) / 12.0;
  return 3.0 * options.youngs_modulus * inertia /
         std::pow(options.beam_length_m, 3);
}

MiniMostExperiment::MiniMostExperiment(net::Network* network,
                                       util::Clock* clock,
                                       MiniMostOptions options)
    : network_(network), clock_(clock), options_(options) {
  structural::SyntheticQuakeParams quake;
  quake.dt_seconds = options_.dt_seconds;
  quake.steps = options_.steps;
  quake.peak_accel = options_.peak_accel;
  quake.seed = options_.seed;
  motion_ = structural::SynthesizeQuake(quake);
}

MiniMostExperiment::~MiniMostExperiment() { Stop(); }

util::Status MiniMostExperiment::Start() {
  if (started_) return util::OkStatus();
  // A farm host installs one shared tracer on the network; only stomp it
  // when this experiment was handed its own.
  if (options_.tracer != nullptr) network_->set_tracer(options_.tracer);
  const double beam_stiffness = MiniMostBeamStiffness(options_);

  std::unique_ptr<ntcp::ControlPlugin> beam_plugin;
  if (options_.real_hardware) {
    testbed::PhysicalSpecimen::Config rig;
    rig.name = "mini-most-beam";
    rig.limits.max_displacement_m = 0.03;
    rig.limits.max_force_n = 500.0;
    rig.sensor_seed = options_.seed;
    rig.strain_per_newton = 1e-6;
    auto stepper = std::make_unique<testbed::StepperMotor>(
        testbed::StepperMotor::Params{});
    stepper_ = stepper.get();
    structural::BoucWenSubstructure::Params model;
    model.elastic_stiffness = beam_stiffness;
    model.yield_displacement = 0.05;  // the tabletop beam stays elastic
    model.alpha = 0.1;
    auto specimen = std::make_unique<testbed::PhysicalSpecimen>(
        rig, std::move(stepper),
        std::make_unique<structural::BoucWenSubstructure>(model));

    plugins::LabViewPlugin::Config config;
    config.control_point = "beam-tip";
    config.max_abs_displacement_m = 0.025;
    beam_plugin = std::make_unique<plugins::LabViewPlugin>(
        config, std::move(specimen));
  } else {
    // "first-order kinetic simulator ... applicable for testing when the
    // actual hardware is not available".
    structural::FirstOrderKineticSubstructure::Params kinetic;
    kinetic.stiffness = beam_stiffness;
    // Must settle well within one PSD step: a lagging restoring force acts
    // as negative damping in the central-difference loop.
    kinetic.time_constant = options_.dt_seconds / 4.0;
    kinetic.dt = options_.dt_seconds;
    auto simulation = std::make_unique<plugins::SimulationPlugin>();
    simulation->AddControlPoint(
        "beam-tip",
        std::make_unique<structural::FirstOrderKineticSubstructure>(kinetic));
    beam_plugin = std::move(simulation);
  }
  ntcp_ = std::make_unique<ntcp::NtcpServer>(network_, Qualified(kNtcp),
                                             std::move(beam_plugin), clock_);
  NEES_RETURN_IF_ERROR(ntcp_->Start());
  ntcp_->set_tracer(options_.tracer);

  // Numerical rest-of-frame substructure (the simulation coordinator and
  // this model share the single Mini-MOST PC).
  auto numeric = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = options_.numeric_stiffness_fraction * beam_stiffness;
  numeric->AddControlPoint(
      "frame", std::make_unique<structural::ElasticSubstructure>(k));
  auto sim_server = std::make_unique<ntcp::NtcpServer>(
      network_, Qualified(std::string(kNtcp) + ".sim"), std::move(numeric),
      clock_);
  NEES_RETURN_IF_ERROR(sim_server->Start());
  sim_server->set_tracer(options_.tracer);
  sim_server_ = std::move(sim_server);

  // Shared-fabric hosting: publish the transaction SDEs into the farm
  // container and advertise both endpoints under their namespaced names.
  if (options_.shared_container != nullptr) {
    NEES_RETURN_IF_ERROR(ntcp_->PublishTo(*options_.shared_container));
    NEES_RETURN_IF_ERROR(sim_server_->PublishTo(*options_.shared_container));
  }
  if (options_.shared_registry != nullptr) {
    options_.shared_registry->Register(
        {Qualified(kNtcp), ntcp_->endpoint(), "ntcp", "MiniMOST", 0},
        options_.registry_lease_micros);
    options_.shared_registry->Register(
        {Qualified(std::string(kNtcp) + ".sim"), sim_server_->endpoint(),
         "ntcp", "MiniMOST", 0},
        options_.registry_lease_micros);
  }

  coordinator_rpc_ = std::make_unique<net::RpcClient>(
      network_, Qualified("minimost.coordinator"));
  started_ = true;
  return util::OkStatus();
}

void MiniMostExperiment::Stop() {
  if (!started_) return;
  if (!options_.experiment_ns.empty()) {
    if (options_.shared_container != nullptr) {
      (void)options_.shared_container->DestroyTenant(options_.experiment_ns);
    }
    if (options_.shared_registry != nullptr) {
      (void)options_.shared_registry->UnregisterTenant(options_.experiment_ns);
    }
  }
  if (ntcp_) ntcp_->Stop();
  if (sim_server_) sim_server_->Stop();
  started_ = false;
}

psd::CoordinatorConfig MiniMostExperiment::MakeCoordinatorConfig(
    const std::string& run_id) const {
  const double k_total = MiniMostBeamStiffness(options_) *
                         (1.0 + options_.numeric_stiffness_fraction);
  psd::CoordinatorConfig config;
  config.run_id = run_id;
  config.mass =
      structural::Matrix::Identity(1) * options_.effective_mass_kg;
  const double omega = std::sqrt(k_total / options_.effective_mass_kg);
  config.damping = structural::Matrix::Identity(1) *
                   (2.0 * options_.damping_ratio * omega *
                    options_.effective_mass_kg);
  config.iota = {1.0};
  config.motion = motion_;
  config.sites = {
      {"beam", ResolveEndpoint(kNtcp), "beam-tip", {0}},
      {"frame", ResolveEndpoint(std::string(kNtcp) + ".sim"), "frame", {0}},
  };
  config.tracer = options_.tracer;
  return config;
}

std::string MiniMostExperiment::ResolveEndpoint(std::string_view base) const {
  const std::string qualified = Qualified(base);
  if (options_.shared_registry != nullptr) {
    if (auto entry = options_.shared_registry->LookupEntry(qualified)) {
      return entry->endpoint;
    }
  }
  return qualified;
}

util::Result<psd::RunReport> MiniMostExperiment::Run(
    const std::string& run_id) {
  NEES_RETURN_IF_ERROR(Start());
  psd::SimulationCoordinator coordinator(MakeCoordinatorConfig(run_id),
                                         coordinator_rpc_.get(), clock_);
  return coordinator.Run();
}

ntcp::NtcpServerStats MiniMostExperiment::ServerStats() const {
  return ntcp_ ? ntcp_->stats() : ntcp::NtcpServerStats{};
}

std::int64_t MiniMostExperiment::stepper_steps() const {
  return stepper_ ? stepper_->total_steps_taken() : 0;
}

}  // namespace nees::most
