// Motion systems that position a specimen: the servo-hydraulic actuator
// used at UIUC/CU in MOST, and the stepper motor used by Mini-MOST (§3.5).
// Both expose MoveTo(target) with realistic imperfections (settling
// dynamics, rate limits, quantization) so the NTCP plugins and coordinator
// exercise the same command/settle/measure cycle as the real rigs.
#pragma once

#include <cstdint>

#include "util/result.h"

namespace nees::testbed {

/// Positions a specimen boundary along one axis (meters).
class MotionSystem {
 public:
  virtual ~MotionSystem() = default;

  /// Drives toward `target_m`; simulates up to `max_seconds` of motion.
  /// Returns the achieved position. Fails with kOutOfRange if the target
  /// exceeds the stroke, kTimeout if the system cannot settle in time.
  virtual util::Result<double> MoveTo(double target_m, double max_seconds) = 0;

  virtual double position() const = 0;
  virtual void Reset() = 0;
};

/// PID-servo hydraulic actuator: the PID loop produces a velocity command;
/// the ram velocity lags it first-order and is rate-limited; position
/// integrates velocity. Settling is declared when the error stays inside
/// `settle_tolerance_m` for `settle_window_s`.
class ServoHydraulicActuator final : public MotionSystem {
 public:
  struct Params {
    double stroke_m = 0.25;            // +/- travel
    double max_velocity_ms = 0.05;     // m/s
    double kp = 40.0;                  // 1/s
    double ki = 4.0;
    double kd = 0.0;
    double velocity_time_constant_s = 0.02;
    double dt_s = 0.001;               // internal integration step
    double settle_tolerance_m = 2e-5;
    double settle_window_s = 0.02;
  };

  explicit ServoHydraulicActuator(Params params);

  util::Result<double> MoveTo(double target_m, double max_seconds) override;
  double position() const override { return position_; }
  void Reset() override;

  /// Total simulated motion time, for per-step timing breakdowns (E5).
  double elapsed_motion_seconds() const { return elapsed_s_; }

 private:
  Params params_;
  double position_ = 0.0;
  double velocity_ = 0.0;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  double elapsed_s_ = 0.0;
};

/// Open-loop stepper motor with a lead screw: position moves in whole
/// steps at a bounded step rate. Mini-MOST used a single 24 lb through-hole
/// stepper; resolution dominates its error budget.
class StepperMotor final : public MotionSystem {
 public:
  struct Params {
    double step_size_m = 5e-6;     // meters of travel per motor step
    double steps_per_second = 2000;
    double stroke_m = 0.05;        // +/- travel (1 m beam, small motion)
  };

  explicit StepperMotor(Params params);

  util::Result<double> MoveTo(double target_m, double max_seconds) override;
  double position() const override;
  void Reset() override;

  std::int64_t total_steps_taken() const { return total_steps_; }

 private:
  Params params_;
  std::int64_t step_count_ = 0;   // signed current position in steps
  std::int64_t total_steps_ = 0;  // odometer
};

}  // namespace nees::testbed
