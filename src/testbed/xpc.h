// Emulation of MATLAB xPC: a dedicated target machine running a real-time
// OS that executes the control law at a fixed tick rate (the CU path in
// Fig. 9: Matlab -> xPC target -> servo-hydraulics). The emulation runs the
// inner servo loop in fixed ticks and tracks deadline statistics, which the
// near-real-time work (§5) measures.
#pragma once

#include <cstdint>
#include <memory>

#include "testbed/specimen.h"

namespace nees::testbed {

class XpcTarget {
 public:
  struct Params {
    double tick_rate_hz = 1000.0;  // control loop rate
    /// Simulated compute cost per tick; a tick "misses" its deadline when
    /// cost exceeds the period (used by the deadline statistics).
    double tick_cost_s = 0.0002;
    /// Max ticks per command before declaring a timeout.
    std::int64_t max_ticks_per_command = 10'000;
  };

  XpcTarget(Params params, std::unique_ptr<PhysicalSpecimen> specimen);

  /// Runs the target displacement through the real-time loop; returns the
  /// rig measurement. Each command consumes whole ticks.
  util::Result<Measurement> Execute(double target_m);

  std::int64_t total_ticks() const { return total_ticks_; }
  std::int64_t missed_deadlines() const { return missed_deadlines_; }
  PhysicalSpecimen& specimen() { return *specimen_; }

 private:
  Params params_;
  std::unique_ptr<PhysicalSpecimen> specimen_;
  std::int64_t total_ticks_ = 0;
  std::int64_t missed_deadlines_ = 0;
};

}  // namespace nees::testbed
